//! The challenge-issuing TCP resource server.

use aipow_core::{FeatureSource, Framework, OnlineSettings, RateLimiter};
use aipow_online::OnlineLoop;
use aipow_pow::{Solution, SystemClock, TimeSource};
use aipow_wire::{read_message, write_message, Message, ReadMessageError, RejectCode};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. Defaults to the machine's
    /// available parallelism — with the per-client state sharded, workers
    /// scale instead of serializing on global locks.
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Optional per-IP rate limit: `(burst, refills_per_sec)` on
    /// resource requests. Solutions are never rate-limited — the client
    /// already paid for them in hashes.
    pub rate_limit: Option<(f64, f64)>,
    /// Maximum client IPs the rate limiter tracks; beyond this a full
    /// shard evicts its least-recently-refilled bucket to make room.
    pub rate_limit_max_clients: usize,
    /// Shard count for the rate limiter's bucket table; `None` picks a
    /// multiple of available parallelism. Adjusted on both sides
    /// (`aipow_shard::ShardLayout::bounded`): raised so no eviction scan
    /// exceeds [`rate_limit_max_scan`](Self::rate_limit_max_scan),
    /// capped at `rate_limit_max_clients`, floored to a power of two.
    pub rate_limit_shards: Option<usize>,
    /// Bound on the entries one rate-limiter eviction scan may visit —
    /// the worst-case per-request cost an address-cycling flood can
    /// inflict on the admission path, independent of
    /// `rate_limit_max_clients`.
    pub rate_limit_max_scan: usize,
    /// Backlog of accepted-but-unhandled connections.
    pub queue_depth: usize,
    /// Maximum pipelined frames one connection wakeup drains and
    /// dispatches through the framework's batch admission path
    /// (`handle_request_batch` / `handle_solution_batch`). A client that
    /// writes k requests back-to-back gets them admitted in one pipeline
    /// pass — one clock reading, one policy read-lock, one audit
    /// shard-lock acquisition per shard — instead of k. Replies are
    /// written in frame order either way; 1 disables batching (every
    /// frame dispatched alone). Clamped to a minimum of 1.
    pub max_batch: usize,
    /// Lane width for the verifier's multi-buffer SHA-256 kernel, applied
    /// to the framework at server start (`Verifier::set_verify_lanes`).
    /// `None` (the default) leaves the framework's setting — normally
    /// hardware auto-detection — untouched; explicit values are clamped
    /// to `[1, 8]`, with 1 forcing scalar verification. Purely a
    /// performance knob: every width computes identical outcomes.
    ///
    /// Formerly named `verify_lanes`; `lanes` is the one name for this
    /// knob across the API surface (`FrameworkConfig::lanes`,
    /// `FrameworkBuilder::lanes`, the `--lanes` CLI flag,
    /// `SolverOptions::lanes`).
    pub lanes: Option<usize>,
    /// Online behavioral-reputation loop. When set, the server attaches a
    /// behavior recorder to the framework's tap, serves model features
    /// from the live blending source (the `features` argument to
    /// [`PowServer::start`] becomes the cold-start prior), and runs the
    /// background decay/rescore worker for the server's lifetime.
    ///
    /// The framework's tap is write-once, so a given `Framework` supports
    /// **one** online attachment for its lifetime: restarting a server
    /// with `online` set against the same framework instance fails with
    /// `InvalidInput` (the first loop's recorder is still attached).
    /// Build a fresh framework per online-enabled server start — cheap
    /// via [`aipow_core::FrameworkConfig`] — or wire
    /// `aipow_online::OnlineLoop` yourself, keep it across restarts, and
    /// pass its source as `features` with `online: None`.
    pub online: Option<OnlineSettings>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            read_timeout: Duration::from_secs(30),
            rate_limit: None,
            rate_limit_max_clients: 65_536,
            rate_limit_shards: None,
            rate_limit_max_scan: aipow_core::sharded::DEFAULT_MAX_SCAN,
            queue_depth: 256,
            max_batch: aipow_core::framework::DEFAULT_MAX_BATCH,
            lanes: None,
            online: None,
        }
    }
}

/// A running server. Dropping it triggers the same orderly shutdown as
/// [`shutdown`](PowServer::shutdown): stop accepting, interrupt in-flight
/// reads, join every thread.
#[derive(Debug)]
pub struct PowServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Clones of live connection streams so shutdown can interrupt workers
    /// blocked in reads.
    connections: Arc<Mutex<Vec<TcpStream>>>,
    /// The online reputation loop, when configured; its decay worker is
    /// stopped on shutdown.
    online: Option<Arc<OnlineLoop>>,
}

impl PowServer {
    /// Binds `addr` and starts the acceptor and worker threads.
    ///
    /// `resources` maps paths to response bodies; every path is fronted by
    /// the framework's challenge flow.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener, or an
    /// [`io::ErrorKind::InvalidInput`] error when
    /// [`ServerConfig::online`] fails [`OnlineSettings::validate`]
    /// (version-controlled settings must reject bad values, not panic
    /// the server).
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        framework: Arc<Framework>,
        features: Arc<dyn FeatureSource>,
        resources: HashMap<String, Vec<u8>>,
        config: ServerConfig,
    ) -> io::Result<PowServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let resources = Arc::new(resources);

        if let Some(lanes) = config.lanes {
            framework.verifier().set_verify_lanes(lanes);
        }

        // Online loop: the caller's feature source becomes the cold-start
        // prior, and live features are served from the blending source.
        // Bad settings and a pre-existing behavior sink both reject the
        // explicit config loudly — silently serving static features
        // would defeat the operator's stated intent.
        let online = match &config.online {
            Some(settings) => Some(
                OnlineLoop::attach(
                    Arc::clone(&framework),
                    Arc::clone(&features),
                    settings.clone(),
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?,
            ),
            None => None,
        };
        let features: Arc<dyn FeatureSource> = match &online {
            Some(online_loop) => {
                online_loop.start();
                online_loop.source()
            }
            None => features,
        };
        let limiter = Arc::new(config.rate_limit.map(|(burst, refill)| {
            RateLimiter::with_layout(
                burst,
                refill,
                config.rate_limit_max_clients,
                config.rate_limit_shards,
                config.rate_limit_max_scan,
            )
        }));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(config.queue_depth);
        let connections: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let framework = Arc::clone(&framework);
                let features = Arc::clone(&features);
                let resources = Arc::clone(&resources);
                let limiter = Arc::clone(&limiter);
                let connections = Arc::clone(&connections);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = config.read_timeout;
                let max_batch = config.max_batch.max(1);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            let mut registry = connections.lock();
                            // Prune streams whose connections have ended so
                            // the registry does not grow unboundedly.
                            registry.retain(|s| s.peer_addr().is_ok());
                            registry.push(clone);
                        }
                        // A shutdown that drained the registry before this
                        // stream was registered would otherwise leave the
                        // coming read blocked for the full timeout; the
                        // registry mutex above orders this load after the
                        // shutdown flag store, so one of the two sides
                        // always closes the stream.
                        // Acquire: pairs with the Release in
                        // shutdown_in_place()
                        if shutdown.load(Ordering::Acquire) {
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                        handle_connection(
                            stream, &framework, &*features, &resources, &limiter, max_batch,
                        );
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let framework = Arc::clone(&framework);
            std::thread::spawn(move || {
                // Errors other than WouldBlock back off exponentially
                // (capped), so a persistent condition like EMFILE — which
                // `accept` reports on *every* call until descriptors free
                // up — parks the thread instead of spinning a retry loop
                // at poll frequency. Any successful accept resets the
                // backoff.
                let mut backoff = ACCEPT_BACKOFF_FLOOR;
                // Acquire: pairs with the Release in shutdown_in_place()
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff = ACCEPT_BACKOFF_FLOOR;
                            framework.metrics().accept_backoff_ms.set(0);
                            // A full queue sheds load by dropping the
                            // connection — the PoW layer is the defense,
                            // not an unbounded buffer.
                            let _ = tx.try_send(stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Idle poll: a short fixed nap keeps shutdown
                            // latency low; no escalation (nothing is
                            // wrong).
                            backoff = ACCEPT_BACKOFF_FLOOR;
                            framework.metrics().accept_backoff_ms.set(0);
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => {
                            // Surface acceptor distress (EMFILE and kin)
                            // in telemetry: the error count and the
                            // current backoff plateau say whether the
                            // listener is healthy, degraded, or parked.
                            framework.metrics().accept_errors.inc();
                            framework
                                .metrics()
                                .accept_backoff_ms
                                .set(backoff.as_millis() as i64);
                            std::thread::sleep(backoff);
                            backoff = next_accept_backoff(backoff);
                        }
                    }
                }
                // Dropping `tx` lets workers drain and exit.
            })
        };

        Ok(PowServer {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            connections,
            online,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The online reputation loop, when the server was configured with
    /// one (for diagnostics: recorder population, manual sweeps).
    pub fn online(&self) -> Option<&Arc<OnlineLoop>> {
        self.online.as_ref()
    }

    /// Stops accepting, interrupts in-flight connections, and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
        // Drop then runs on an already-shut-down server, where
        // `shutdown_in_place` is a no-op.
    }

    /// The idempotent shutdown body shared by [`shutdown`](Self::shutdown)
    /// and [`Drop`]: every step consumes the handle it joins, so a second
    /// call finds nothing to do.
    fn shutdown_in_place(&mut self) {
        // Release: publishes the shutdown request to acceptor and workers
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers may be blocked reading from live connections; closing
        // both directions makes those reads return immediately.
        for stream in self.connections.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(online) = self.online.take() {
            online.stop();
        }
    }
}

impl Drop for PowServer {
    fn drop(&mut self) {
        // Without this, dropping the server silently detached the
        // acceptor and worker threads and leaked live connections for the
        // rest of the process lifetime.
        self.shutdown_in_place();
    }
}

/// Initial nap after an `accept()` error.
const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(2);
/// Ceiling on the accept-error backoff: long enough that a persistent
/// EMFILE costs ~2 wakeups/second instead of 500, short enough that
/// recovery (descriptors freed) is noticed promptly and shutdown is
/// never blocked on a long sleep.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Doubles the accept-error backoff, capped at [`ACCEPT_BACKOFF_CAP`].
fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_CAP)
}

/// What draining one connection wakeup produced: the pipelined frames
/// read so far, and the event that ended the drain.
enum DrainEnd {
    /// No more buffered frames (or the batch ceiling was reached);
    /// process the batch and keep serving.
    MoreLater,
    /// The peer closed or the stream failed; process the batch, then
    /// hang up.
    Hangup,
    /// A frame failed to decode; process the batch, send the rejection,
    /// then hang up (the stream offset is unrecoverable). The code
    /// distinguishes a protocol-version mismatch
    /// ([`RejectCode::ProtocolMismatch`]) from plain garbage
    /// ([`RejectCode::Malformed`]) so old-version peers get a typed,
    /// actionable error.
    Malformed(RejectCode, String),
}

/// What a nonblocking peek found buffered on the stream.
enum Buffered {
    /// A complete frame (or an invalid header whose error `read_message`
    /// will surface without blocking) is fully buffered.
    CompleteFrame,
    /// Nothing, or only part of a frame: a read now could block, so the
    /// batch must be processed first.
    Incomplete,
    /// The peer closed.
    Eof,
    /// The stream failed.
    Broken,
}

/// Ceiling on the bytes one completeness peek inspects (and therefore
/// on the frame size eligible for batching). Client-to-server frames —
/// requests, solutions, pings — are ~100 bytes encoded, far under this;
/// a larger frame is simply not batched: the drain processes the
/// current batch and the next wakeup's ordinary blocking read takes the
/// big frame, exactly as the sequential path would have.
const PEEK_CAP: usize = 4096;

/// Checks — without blocking and without consuming — whether the next
/// frame is *entirely* buffered: one bounded peek covering the header
/// and (for frames up to [`PEEK_CAP`]) the declared payload. Only a
/// complete frame may join the current batch; a partial one would turn
/// the drain's next read into a blocking wait while fully-received
/// frames sit unanswered (the sequential path replied to each frame
/// before blocking again). The peek buffer is a small stack array — no
/// allocation, and never a copy proportional to `MAX_PAYLOAD_LEN`.
fn peek_complete_frame(stream: &mut TcpStream) -> Buffered {
    if stream.set_nonblocking(true).is_err() {
        return Buffered::Broken;
    }
    let mut buffered = [0u8; PEEK_CAP];
    let result = match stream.peek(&mut buffered) {
        Ok(0) => Buffered::Eof,
        Ok(n) if n < 8 => Buffered::Incomplete,
        Ok(n) => {
            let declared = u32::from_be_bytes(
                buffered[4..8]
                    .try_into()
                    .expect("slice-length invariant: [4..8] is 4 bytes"),
            ) as usize;
            if declared > aipow_wire::MAX_PAYLOAD_LEN {
                // read_message rejects the header before reading the
                // body, so surfacing the error cannot block.
                Buffered::CompleteFrame
            } else if declared + 8 <= n {
                Buffered::CompleteFrame
            } else {
                // Partially buffered, or complete but bigger than the
                // peek window — either way, not batched.
                Buffered::Incomplete
            }
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Buffered::Incomplete,
        Err(_) => Buffered::Broken,
    };
    if stream.set_nonblocking(false).is_err() {
        return Buffered::Broken;
    }
    result
}

/// Reads every already-buffered frame (up to `max_batch`) without
/// blocking beyond the first. The first read blocks as before — an idle
/// connection parks here — and each subsequent frame is read only when
/// a nonblocking peek confirms it is *completely* buffered, so a client
/// that pipelines k frames gets all k into one batch while a partial
/// trailing frame never delays replies to the complete ones before it.
fn drain_frames(stream: &mut TcpStream, max_batch: usize) -> (Vec<Message>, DrainEnd) {
    let mut frames = Vec::new();
    let end = loop {
        if frames.len() >= max_batch {
            break DrainEnd::MoreLater;
        }
        if !frames.is_empty() {
            match peek_complete_frame(stream) {
                Buffered::CompleteFrame => {}
                Buffered::Incomplete => break DrainEnd::MoreLater,
                Buffered::Eof | Buffered::Broken => break DrainEnd::Hangup,
            }
        }
        match read_message(&mut *stream) {
            Ok(msg) => frames.push(msg),
            Err(ReadMessageError::Closed) => break DrainEnd::Hangup,
            Err(ReadMessageError::Decode(e)) => {
                let code = match e {
                    aipow_wire::DecodeError::UnsupportedVersion { .. } => {
                        RejectCode::ProtocolMismatch
                    }
                    _ => RejectCode::Malformed,
                };
                break DrainEnd::Malformed(code, e.to_string());
            }
            Err(ReadMessageError::Io(_)) => break DrainEnd::Hangup,
        }
    };
    (frames, end)
}

/// Serves one connection until the peer closes or errors. Each wakeup
/// drains up to `max_batch` pipelined frames and dispatches consecutive
/// runs of same-kind frames through the framework's batch admission
/// path; replies are written in frame order.
fn handle_connection(
    mut stream: TcpStream,
    framework: &Framework,
    features: &dyn FeatureSource,
    resources: &HashMap<String, Vec<u8>>,
    limiter: &Option<RateLimiter>,
    max_batch: usize,
) {
    let peer_ip = match stream.peer_addr() {
        Ok(addr) => addr.ip(),
        Err(_) => return,
    };

    loop {
        let (frames, end) = drain_frames(&mut stream, max_batch);
        if !frames.is_empty() {
            let replies = process_frames(frames, peer_ip, framework, features, resources, limiter);
            for reply in replies {
                if write_message(&mut stream, &reply).is_err() {
                    return;
                }
            }
        }
        match end {
            DrainEnd::MoreLater => {}
            DrainEnd::Hangup => return,
            DrainEnd::Malformed(code, detail) => {
                let _ = write_message(&mut stream, &Message::Rejected { code, detail });
                return;
            }
        }
    }
}

/// One admissible request frame, held with its slot in the reply order
/// while a same-kind run accumulates.
struct PendingRequest {
    reply_slot: usize,
    path: String,
}

/// One solution frame, likewise.
struct PendingSolution {
    reply_slot: usize,
    solution: Solution,
    path: String,
}

/// Turns a drained frame batch into replies, one per frame, in order.
/// Consecutive `RequestResource` frames that pass the rate limiter and
/// path check are admitted through one `handle_request_batch` call;
/// consecutive `SubmitSolution` frames through one
/// `handle_solution_batch` call. Runs are flushed whenever the frame
/// kind changes, so the decision order any sequential interleaving would
/// produce is preserved exactly.
fn process_frames(
    frames: Vec<Message>,
    peer_ip: std::net::IpAddr,
    framework: &Framework,
    features: &dyn FeatureSource,
    resources: &HashMap<String, Vec<u8>>,
    limiter: &Option<RateLimiter>,
) -> Vec<Message> {
    let mut replies: Vec<Option<Message>> = (0..frames.len()).map(|_| None).collect();
    let mut pending_requests: Vec<PendingRequest> = Vec::new();
    let mut pending_solutions: Vec<PendingSolution> = Vec::new();

    let flush_requests = |pending: &mut Vec<PendingRequest>, replies: &mut Vec<Option<Message>>| {
        if pending.is_empty() {
            return;
        }
        // One feature lookup per run: every frame in it is from this
        // connection's peer, and the batch path samples features once
        // per group by design (the batching invariant).
        let fv = features.features_for(peer_ip);
        let requests: Vec<_> = pending.iter().map(|_| (peer_ip, &fv)).collect();
        let decisions = framework.handle_request_batch(&requests);
        for (req, decision) in pending.drain(..).zip(decisions) {
            let reply = match decision {
                aipow_core::AdmissionDecision::Admit { .. } => Message::ResourceGranted {
                    body: resources[&req.path].clone(),
                    path: req.path,
                },
                aipow_core::AdmissionDecision::Challenge(issued) => Message::ChallengeIssued {
                    challenge: issued.challenge,
                    path: req.path,
                },
            };
            replies[req.reply_slot] = Some(reply);
        }
    };
    let flush_solutions = |pending: &mut Vec<PendingSolution>,
                           replies: &mut Vec<Option<Message>>| {
        if pending.is_empty() {
            return;
        }
        let submissions: Vec<(&Solution, std::net::IpAddr)> =
            pending.iter().map(|p| (&p.solution, peer_ip)).collect();
        let outcomes = framework.handle_solution_batch(&submissions);
        for (sub, outcome) in pending.drain(..).zip(outcomes) {
            let reply = match outcome {
                Ok(_token) => match resources.get(&sub.path) {
                    Some(body) => Message::ResourceGranted {
                        body: body.clone(),
                        path: sub.path,
                    },
                    None => Message::Rejected {
                        code: RejectCode::NotFound,
                        detail: sub.path,
                    },
                },
                Err(e) => Message::Rejected {
                    code: RejectCode::InvalidSolution,
                    detail: e.to_string(),
                },
            };
            replies[sub.reply_slot] = Some(reply);
        }
    };

    for (slot, msg) in frames.into_iter().enumerate() {
        match msg {
            Message::RequestResource { path } => {
                flush_solutions(&mut pending_solutions, &mut replies);
                // The limiter debits per frame, in frame order — a
                // pipelined burst draws down the bucket exactly as a
                // sequential one.
                if let Some(limiter) = limiter {
                    if !limiter.allow(peer_ip, SystemClock.now_ms()) {
                        // The behavior tap still sees the arrival: a
                        // flooder mostly dying at the limiter must not
                        // look like a light client to the online loop.
                        // Stamped with the framework's clock — the same
                        // timeline every other tap event and the sketch
                        // decay math live on. Earlier same-batch
                        // requests flush first so the sink sees events
                        // in frame order — a denied arrival must land on
                        // the sketch those requests may have just
                        // created, exactly as it would sequentially.
                        flush_requests(&mut pending_requests, &mut replies);
                        framework.metrics().rate_limited.inc();
                        if let Some(sink) = framework.behavior_sink() {
                            sink.on_rate_limited(peer_ip, framework.now_ms());
                        }
                        replies[slot] = Some(Message::Rejected {
                            code: RejectCode::RateLimited,
                            detail: "request rate exceeded".into(),
                        });
                        continue;
                    }
                }
                if !resources.contains_key(&path) {
                    replies[slot] = Some(Message::Rejected {
                        code: RejectCode::NotFound,
                        detail: path,
                    });
                    continue;
                }
                pending_requests.push(PendingRequest {
                    reply_slot: slot,
                    path,
                });
            }
            Message::SubmitSolution {
                challenge,
                nonce,
                width,
                backend,
                path,
            } => {
                flush_requests(&mut pending_requests, &mut replies);
                pending_solutions.push(PendingSolution {
                    reply_slot: slot,
                    // The backend byte is carried through verbatim; the
                    // verifier rejects ids that disagree with the
                    // challenge or name no registered backend.
                    solution: Solution {
                        challenge,
                        nonce,
                        width,
                        backend,
                    },
                    path,
                });
            }
            Message::Ping { token } => {
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                replies[slot] = Some(Message::Pong { token });
            }
            Message::Hello { version } => {
                // Flushing first keeps replies aligned with any
                // sequential interleaving, though a well-behaved client
                // sends the hello before anything else.
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                replies[slot] = Some(if version == aipow_wire::PROTOCOL_VERSION {
                    Message::Hello {
                        version: aipow_wire::PROTOCOL_VERSION,
                    }
                } else {
                    Message::Rejected {
                        code: RejectCode::ProtocolMismatch,
                        detail: format!(
                            "server speaks protocol version {}, peer sent {version}",
                            aipow_wire::PROTOCOL_VERSION
                        ),
                    }
                });
            }
            Message::TelemetryRequest => {
                // Flush both pending runs first: a snapshot taken after a
                // pipelined burst must reflect that burst's admissions,
                // exactly as a sequential interleaving would.
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                let snap = framework.metrics_snapshot();
                replies[slot] = Some(Message::TelemetryReply {
                    json: aipow_core::export::snapshot_json(&snap),
                    prometheus: aipow_core::export::snapshot_prometheus(&snap),
                });
            }
            // Server-to-client message types arriving at the server.
            Message::ChallengeIssued { .. }
            | Message::ResourceGranted { .. }
            | Message::Rejected { .. }
            | Message::Pong { .. }
            | Message::TelemetryReply { .. } => {
                replies[slot] = Some(Message::Rejected {
                    code: RejectCode::Malformed,
                    detail: "unexpected message direction".into(),
                });
            }
            // Future message types (enum is non_exhaustive).
            _ => {
                replies[slot] = Some(Message::Rejected {
                    code: RejectCode::Malformed,
                    detail: "unsupported message".into(),
                });
            }
        }
    }
    flush_requests(&mut pending_requests, &mut replies);
    flush_solutions(&mut pending_solutions, &mut replies);

    replies
        .into_iter()
        .map(|reply| reply.expect("framing invariant: every parsed frame produced a reply"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_core::{FrameworkBuilder, StaticFeatureSource};
    use aipow_policy::LinearPolicy;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};

    fn test_server(score: f64, config: ServerConfig) -> PowServer {
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        PowServer::start("127.0.0.1:0", framework, features, resources, config).unwrap()
    }

    #[test]
    fn starts_and_shuts_down() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }

    #[test]
    fn lanes_config_is_applied_at_start() {
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let server = PowServer::start(
            "127.0.0.1:0",
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            HashMap::new(),
            ServerConfig {
                lanes: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(framework.verifier().verify_lanes(), 4);
        server.shutdown();
    }

    #[test]
    fn raw_tcp_garbage_is_rejected_cleanly() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // Server replies with a Rejected frame and closes; read until EOF
        // must terminate (no hang).
        let msg = read_message(&mut stream);
        match msg {
            Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn ping_pong() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(&mut stream, &Message::Ping { token: 99 }).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 99),
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_resource_is_not_found() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::RequestResource {
                path: "/missing".into(),
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected not-found, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_joins_threads_and_releases_port() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        // A client is mid-connection when the server is dropped.
        let stream = TcpStream::connect(addr).unwrap();
        drop(server);
        // Shutdown interrupted the live connection...
        drop(stream);
        // ...and the listener is gone, so the port can be rebound.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after drop: {rebound:?}");
    }

    #[test]
    fn invalid_online_settings_error_instead_of_panicking() {
        use aipow_core::OnlineSettings;
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let err = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            HashMap::new(),
            ServerConfig {
                online: Some(OnlineSettings {
                    capacity: 0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn online_loop_raises_difficulty_for_abusive_ip() {
        use crate::client::PowClient;
        use aipow_core::OnlineSettings;
        use aipow_pow::{Difficulty, Issuer};
        use aipow_reputation::baseline::BlocklistHeuristic;

        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(BlocklistHeuristic)
                .policy(LinearPolicy::policy2())
                .build()
                .unwrap(),
        );
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        let server = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            resources,
            ServerConfig {
                // Two live connections below (honest client + spammer);
                // on a single-core host the default worker count is 1.
                workers: 4,
                online: Some(OnlineSettings {
                    prior_strength: 4.0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let mut client = PowClient::connect(addr).unwrap();
        let before = client.fetch("/r").unwrap().difficulty.unwrap().bits();

        // Spam garbage solutions (foreign-key challenges fail the MAC).
        let foreign = Issuer::new(&[0xEE; 32]);
        let ip = "127.0.0.1".parse().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..40 {
            let fake = foreign.issue(ip, Difficulty::new(1).unwrap());
            write_message(
                &mut stream,
                &aipow_wire::Message::SubmitSolution {
                    backend: fake.backend(),
                    challenge: fake,
                    nonce: 0,
                    width: aipow_pow::NonceWidth::U64,
                    path: "/r".into(),
                },
            )
            .unwrap();
            match read_message(&mut stream).unwrap() {
                aipow_wire::Message::Rejected { code, .. } => {
                    assert_eq!(code, RejectCode::InvalidSolution)
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }

        // The recorder saw the abuse; the model now charges this IP more.
        let after = client.fetch("/r").unwrap().difficulty.unwrap().bits();
        assert!(
            after >= before + 2,
            "abuse must raise difficulty: before {before}, after {after}"
        );
        let online = server.online().expect("online loop configured");
        assert_eq!(online.recorder().len(), 1);
        server.shutdown();
    }

    #[test]
    fn accept_backoff_doubles_and_caps() {
        let mut backoff = ACCEPT_BACKOFF_FLOOR;
        let mut total = Duration::ZERO;
        for _ in 0..20 {
            total += backoff;
            backoff = next_accept_backoff(backoff);
        }
        assert_eq!(backoff, ACCEPT_BACKOFF_CAP);
        // 20 consecutive failures cost ~10 naps totalling seconds, not a
        // 500 Hz spin: the first few double (2,4,8,...) then park at the
        // cap.
        assert!(total >= Duration::from_secs(5));
        assert!(next_accept_backoff(ACCEPT_BACKOFF_CAP) == ACCEPT_BACKOFF_CAP);
    }

    #[test]
    fn pipelined_frames_are_batched_and_replied_in_order() {
        use std::io::Write;
        let server = test_server(
            0.0,
            ServerConfig {
                max_batch: 8,
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Write a pipelined burst in one TCP segment: 3 requests, a
        // ping, and a not-found, without reading between writes.
        let mut burst = Vec::new();
        for _ in 0..3 {
            burst.extend(aipow_wire::encode(&Message::RequestResource {
                path: "/r".into(),
            }));
        }
        burst.extend(aipow_wire::encode(&Message::Ping { token: 42 }));
        burst.extend(aipow_wire::encode(&Message::RequestResource {
            path: "/missing".into(),
        }));
        stream.write_all(&burst).unwrap();

        for i in 0..3 {
            match read_message(&mut stream).unwrap() {
                Message::ChallengeIssued { path, .. } => assert_eq!(path, "/r", "frame {i}"),
                other => panic!("frame {i}: expected challenge, got {other:?}"),
            }
        }
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 42),
            other => panic!("expected pong, got {other:?}"),
        }
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected not-found, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_solutions_verify_through_the_batch_path() {
        use aipow_pow::solver::{self, SolverOptions};
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        let client_ip = "127.0.0.1".parse().unwrap();

        // Fetch two challenges (pipelined), solve both, submit both
        // pipelined; both must grant.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut burst = Vec::new();
        for _ in 0..2 {
            burst.extend(aipow_wire::encode(&Message::RequestResource {
                path: "/r".into(),
            }));
        }
        stream.write_all(&burst).unwrap();
        let mut challenges = Vec::new();
        for _ in 0..2 {
            match read_message(&mut stream).unwrap() {
                Message::ChallengeIssued { challenge, .. } => challenges.push(challenge),
                other => panic!("expected challenge, got {other:?}"),
            }
        }
        let mut burst = Vec::new();
        for challenge in challenges {
            let report = solver::solve(&challenge, client_ip, &SolverOptions::default()).unwrap();
            burst.extend(aipow_wire::encode(&Message::SubmitSolution {
                backend: report.solution.backend,
                challenge: report.solution.challenge,
                nonce: report.solution.nonce,
                width: report.solution.width,
                path: "/r".into(),
            }));
        }
        stream.write_all(&burst).unwrap();
        for i in 0..2 {
            match read_message(&mut stream).unwrap() {
                Message::ResourceGranted { body, .. } => {
                    assert_eq!(body, b"payload", "solution {i}")
                }
                other => panic!("solution {i}: expected grant, got {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn hello_handshake_echoes_server_version() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::Hello {
                version: aipow_wire::PROTOCOL_VERSION,
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Hello { version } => assert_eq!(version, aipow_wire::PROTOCOL_VERSION),
            other => panic!("expected hello echo, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn hello_version_mismatch_gets_typed_protocol_rejection() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::Hello {
                version: aipow_wire::PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, detail } => {
                assert_eq!(code, RejectCode::ProtocolMismatch);
                assert!(detail.contains("version"), "detail: {detail}");
            }
            other => panic!("expected protocol-mismatch rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stale_frame_version_byte_gets_typed_protocol_rejection() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Corrupt the frame-header version byte (magic(2) ‖ version(1) ‖ …)
        // to emulate an old-protocol peer: the reject must be the typed
        // ProtocolMismatch, not generic Malformed.
        let mut frame = aipow_wire::encode(&Message::Ping { token: 5 });
        frame[2] = aipow_wire::PROTOCOL_VERSION.wrapping_add(1);
        stream.write_all(&frame).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::ProtocolMismatch),
            other => panic!("expected protocol-mismatch rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_backend_id_in_solution_frame_is_rejected() {
        use aipow_pow::solver::{self, SolverOptions};
        let server = test_server(0.0, ServerConfig::default());
        let client_ip = "127.0.0.1".parse().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
        let challenge = match read_message(&mut stream).unwrap() {
            Message::ChallengeIssued { challenge, .. } => challenge,
            other => panic!("expected challenge, got {other:?}"),
        };
        // Solve honestly, then claim an unregistered backend id in the
        // submission frame: the verifier must refuse it as a typed
        // invalid solution rather than granting or crashing.
        let report = solver::solve(&challenge, client_ip, &SolverOptions::default()).unwrap();
        write_message(
            &mut stream,
            &Message::SubmitSolution {
                backend: aipow_pow::BackendId(99),
                challenge: report.solution.challenge,
                nonce: report.solution.nonce,
                width: report.solution.width,
                path: "/r".into(),
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, detail } => {
                assert_eq!(code, RejectCode::InvalidSolution);
                assert!(detail.contains("backend"), "detail: {detail}");
            }
            other => panic!("expected invalid-solution rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn partial_trailing_frame_does_not_delay_earlier_replies() {
        use std::io::Write;
        use std::time::Instant;
        // A complete ping plus the first bytes of a second frame: the
        // drain must answer the ping immediately instead of blocking in
        // a read for the partial successor until the read timeout.
        let server = test_server(
            0.0,
            ServerConfig {
                read_timeout: Duration::from_secs(20),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut burst = aipow_wire::encode(&Message::Ping { token: 11 });
        let second = aipow_wire::encode(&Message::Ping { token: 12 });
        burst.extend_from_slice(&second[..5]); // header fragment only
        stream.write_all(&burst).unwrap();
        let start = Instant::now();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 11),
            other => panic!("expected pong, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "first reply was held behind the partial frame for {:?}",
            start.elapsed()
        );
        // Completing the fragment gets the second reply.
        stream.write_all(&second[5..]).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 12),
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_frame_mid_batch_still_answers_earlier_frames() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut burst = aipow_wire::encode(&Message::Ping { token: 7 });
        burst.extend_from_slice(b"\xFF\xFFgarbage");
        stream.write_all(&burst).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 7),
            other => panic!("expected pong, got {other:?}"),
        }
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected malformed rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn rate_limit_rejects_excess_requests() {
        let server = test_server(
            0.0,
            ServerConfig {
                rate_limit: Some((2.0, 0.001)),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut rejected = 0;
        for _ in 0..4 {
            write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
            if let Message::Rejected { code, .. } = read_message(&mut stream).unwrap() {
                assert_eq!(code, RejectCode::RateLimited);
                rejected += 1;
            }
        }
        assert_eq!(rejected, 2, "burst of 2 then rejections");
        server.shutdown();
    }
}
