//! The challenge-issuing TCP resource server.

use aipow_core::{FeatureSource, Framework, OnlineSettings, RateLimiter};
use aipow_online::OnlineLoop;
use aipow_pow::{Solution, SystemClock, TimeSource};
use aipow_wire::{read_message, write_message, Message, ReadMessageError, RejectCode};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. Defaults to the machine's
    /// available parallelism — with the per-client state sharded, workers
    /// scale instead of serializing on global locks.
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Optional per-IP rate limit: `(burst, refills_per_sec)` on
    /// resource requests. Solutions are never rate-limited — the client
    /// already paid for them in hashes.
    pub rate_limit: Option<(f64, f64)>,
    /// Maximum client IPs the rate limiter tracks; beyond this a full
    /// shard evicts its least-recently-refilled bucket to make room.
    pub rate_limit_max_clients: usize,
    /// Shard count for the rate limiter's bucket table; `None` picks a
    /// multiple of available parallelism. Adjusted on both sides
    /// (`aipow_shard::ShardLayout::bounded`): raised so no eviction scan
    /// exceeds [`rate_limit_max_scan`](Self::rate_limit_max_scan),
    /// capped at `rate_limit_max_clients`, floored to a power of two.
    pub rate_limit_shards: Option<usize>,
    /// Bound on the entries one rate-limiter eviction scan may visit —
    /// the worst-case per-request cost an address-cycling flood can
    /// inflict on the admission path, independent of
    /// `rate_limit_max_clients`.
    pub rate_limit_max_scan: usize,
    /// Backlog of accepted-but-unhandled connections.
    pub queue_depth: usize,
    /// Online behavioral-reputation loop. When set, the server attaches a
    /// behavior recorder to the framework's tap, serves model features
    /// from the live blending source (the `features` argument to
    /// [`PowServer::start`] becomes the cold-start prior), and runs the
    /// background decay/rescore worker for the server's lifetime.
    ///
    /// The framework's tap is write-once, so a given `Framework` supports
    /// **one** online attachment for its lifetime: restarting a server
    /// with `online` set against the same framework instance fails with
    /// `InvalidInput` (the first loop's recorder is still attached).
    /// Build a fresh framework per online-enabled server start — cheap
    /// via [`aipow_core::FrameworkConfig`] — or wire
    /// `aipow_online::OnlineLoop` yourself, keep it across restarts, and
    /// pass its source as `features` with `online: None`.
    pub online: Option<OnlineSettings>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            read_timeout: Duration::from_secs(30),
            rate_limit: None,
            rate_limit_max_clients: 65_536,
            rate_limit_shards: None,
            rate_limit_max_scan: aipow_core::sharded::DEFAULT_MAX_SCAN,
            queue_depth: 256,
            online: None,
        }
    }
}

/// A running server. Dropping it triggers the same orderly shutdown as
/// [`shutdown`](PowServer::shutdown): stop accepting, interrupt in-flight
/// reads, join every thread.
#[derive(Debug)]
pub struct PowServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Clones of live connection streams so shutdown can interrupt workers
    /// blocked in reads.
    connections: Arc<Mutex<Vec<TcpStream>>>,
    /// The online reputation loop, when configured; its decay worker is
    /// stopped on shutdown.
    online: Option<Arc<OnlineLoop>>,
}

impl PowServer {
    /// Binds `addr` and starts the acceptor and worker threads.
    ///
    /// `resources` maps paths to response bodies; every path is fronted by
    /// the framework's challenge flow.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener, or an
    /// [`io::ErrorKind::InvalidInput`] error when
    /// [`ServerConfig::online`] fails [`OnlineSettings::validate`]
    /// (version-controlled settings must reject bad values, not panic
    /// the server).
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        framework: Arc<Framework>,
        features: Arc<dyn FeatureSource>,
        resources: HashMap<String, Vec<u8>>,
        config: ServerConfig,
    ) -> io::Result<PowServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let resources = Arc::new(resources);

        // Online loop: the caller's feature source becomes the cold-start
        // prior, and live features are served from the blending source.
        // Bad settings and a pre-existing behavior sink both reject the
        // explicit config loudly — silently serving static features
        // would defeat the operator's stated intent.
        let online = match &config.online {
            Some(settings) => Some(
                OnlineLoop::attach(
                    Arc::clone(&framework),
                    Arc::clone(&features),
                    settings.clone(),
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?,
            ),
            None => None,
        };
        let features: Arc<dyn FeatureSource> = match &online {
            Some(online_loop) => {
                online_loop.start();
                online_loop.source()
            }
            None => features,
        };
        let limiter = Arc::new(config.rate_limit.map(|(burst, refill)| {
            RateLimiter::with_layout(
                burst,
                refill,
                config.rate_limit_max_clients,
                config.rate_limit_shards,
                config.rate_limit_max_scan,
            )
        }));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(config.queue_depth);
        let connections: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let framework = Arc::clone(&framework);
                let features = Arc::clone(&features);
                let resources = Arc::clone(&resources);
                let limiter = Arc::clone(&limiter);
                let connections = Arc::clone(&connections);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = config.read_timeout;
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            let mut registry = connections.lock();
                            // Prune streams whose connections have ended so
                            // the registry does not grow unboundedly.
                            registry.retain(|s| s.peer_addr().is_ok());
                            registry.push(clone);
                        }
                        // A shutdown that drained the registry before this
                        // stream was registered would otherwise leave the
                        // coming read blocked for the full timeout; the
                        // registry mutex above orders this load after the
                        // shutdown flag store, so one of the two sides
                        // always closes the stream.
                        if shutdown.load(Ordering::Relaxed) {
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                        handle_connection(stream, &framework, &*features, &resources, &limiter);
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // A full queue sheds load by dropping the
                            // connection — the PoW layer is the defense,
                            // not an unbounded buffer.
                            let _ = tx.try_send(stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                // Dropping `tx` lets workers drain and exit.
            })
        };

        Ok(PowServer {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            connections,
            online,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The online reputation loop, when the server was configured with
    /// one (for diagnostics: recorder population, manual sweeps).
    pub fn online(&self) -> Option<&Arc<OnlineLoop>> {
        self.online.as_ref()
    }

    /// Stops accepting, interrupts in-flight connections, and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
        // Drop then runs on an already-shut-down server, where
        // `shutdown_in_place` is a no-op.
    }

    /// The idempotent shutdown body shared by [`shutdown`](Self::shutdown)
    /// and [`Drop`]: every step consumes the handle it joins, so a second
    /// call finds nothing to do.
    fn shutdown_in_place(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers may be blocked reading from live connections; closing
        // both directions makes those reads return immediately.
        for stream in self.connections.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(online) = self.online.take() {
            online.stop();
        }
    }
}

impl Drop for PowServer {
    fn drop(&mut self) {
        // Without this, dropping the server silently detached the
        // acceptor and worker threads and leaked live connections for the
        // rest of the process lifetime.
        self.shutdown_in_place();
    }
}

/// Serves one connection until the peer closes or errors.
fn handle_connection(
    mut stream: TcpStream,
    framework: &Framework,
    features: &dyn FeatureSource,
    resources: &HashMap<String, Vec<u8>>,
    limiter: &Option<RateLimiter>,
) {
    let peer_ip = match stream.peer_addr() {
        Ok(addr) => addr.ip(),
        Err(_) => return,
    };

    loop {
        let msg = match read_message(&mut stream) {
            Ok(msg) => msg,
            Err(ReadMessageError::Closed) => return,
            Err(ReadMessageError::Decode(e)) => {
                let _ = write_message(
                    &mut stream,
                    &Message::Rejected {
                        code: RejectCode::Malformed,
                        detail: e.to_string(),
                    },
                );
                return;
            }
            Err(ReadMessageError::Io(_)) => return,
        };

        let reply = match msg {
            Message::Ping { token } => Message::Pong { token },
            Message::RequestResource { path } => {
                if let Some(limiter) = limiter {
                    if !limiter.allow(peer_ip, SystemClock.now_ms()) {
                        // The behavior tap still sees the arrival: a
                        // flooder mostly dying at the limiter must not
                        // look like a light client to the online loop.
                        // Stamped with the framework's clock — the same
                        // timeline every other tap event and the sketch
                        // decay math live on.
                        if let Some(sink) = framework.behavior_sink() {
                            sink.on_rate_limited(peer_ip, framework.now_ms());
                        }
                        let _ = write_message(
                            &mut stream,
                            &Message::Rejected {
                                code: RejectCode::RateLimited,
                                detail: "request rate exceeded".into(),
                            },
                        );
                        continue;
                    }
                }
                if !resources.contains_key(&path) {
                    let _ = write_message(
                        &mut stream,
                        &Message::Rejected {
                            code: RejectCode::NotFound,
                            detail: path,
                        },
                    );
                    continue;
                }
                let fv = features.features_for(peer_ip);
                match framework.handle_request(peer_ip, &fv) {
                    aipow_core::AdmissionDecision::Admit { .. } => Message::ResourceGranted {
                        body: resources[&path].clone(),
                        path,
                    },
                    aipow_core::AdmissionDecision::Challenge(issued) => Message::ChallengeIssued {
                        challenge: issued.challenge,
                        path,
                    },
                }
            }
            Message::SubmitSolution {
                challenge,
                nonce,
                width,
                path,
            } => {
                let solution = Solution {
                    challenge,
                    nonce,
                    width,
                };
                match framework.handle_solution(&solution, peer_ip) {
                    Ok(_token) => match resources.get(&path) {
                        Some(body) => Message::ResourceGranted {
                            body: body.clone(),
                            path,
                        },
                        None => Message::Rejected {
                            code: RejectCode::NotFound,
                            detail: path,
                        },
                    },
                    Err(e) => Message::Rejected {
                        code: RejectCode::InvalidSolution,
                        detail: e.to_string(),
                    },
                }
            }
            // Server-to-client message types arriving at the server.
            Message::ChallengeIssued { .. }
            | Message::ResourceGranted { .. }
            | Message::Rejected { .. }
            | Message::Pong { .. } => Message::Rejected {
                code: RejectCode::Malformed,
                detail: "unexpected message direction".into(),
            },
            // Future message types (enum is non_exhaustive).
            _ => Message::Rejected {
                code: RejectCode::Malformed,
                detail: "unsupported message".into(),
            },
        };

        if write_message(&mut stream, &reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_core::{FrameworkBuilder, StaticFeatureSource};
    use aipow_policy::LinearPolicy;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};

    fn test_server(score: f64, config: ServerConfig) -> PowServer {
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        PowServer::start("127.0.0.1:0", framework, features, resources, config).unwrap()
    }

    #[test]
    fn starts_and_shuts_down() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }

    #[test]
    fn raw_tcp_garbage_is_rejected_cleanly() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // Server replies with a Rejected frame and closes; read until EOF
        // must terminate (no hang).
        let msg = read_message(&mut stream);
        match msg {
            Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn ping_pong() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(&mut stream, &Message::Ping { token: 99 }).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 99),
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_resource_is_not_found() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::RequestResource {
                path: "/missing".into(),
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected not-found, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_joins_threads_and_releases_port() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        // A client is mid-connection when the server is dropped.
        let stream = TcpStream::connect(addr).unwrap();
        drop(server);
        // Shutdown interrupted the live connection...
        drop(stream);
        // ...and the listener is gone, so the port can be rebound.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after drop: {rebound:?}");
    }

    #[test]
    fn invalid_online_settings_error_instead_of_panicking() {
        use aipow_core::OnlineSettings;
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let err = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            HashMap::new(),
            ServerConfig {
                online: Some(OnlineSettings {
                    capacity: 0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn online_loop_raises_difficulty_for_abusive_ip() {
        use crate::client::PowClient;
        use aipow_core::OnlineSettings;
        use aipow_pow::{Difficulty, Issuer};
        use aipow_reputation::baseline::BlocklistHeuristic;

        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(BlocklistHeuristic)
                .policy(LinearPolicy::policy2())
                .build()
                .unwrap(),
        );
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        let server = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            resources,
            ServerConfig {
                // Two live connections below (honest client + spammer);
                // on a single-core host the default worker count is 1.
                workers: 4,
                online: Some(OnlineSettings {
                    prior_strength: 4.0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let mut client = PowClient::connect(addr).unwrap();
        let before = client.fetch("/r").unwrap().difficulty.unwrap().bits();

        // Spam garbage solutions (foreign-key challenges fail the MAC).
        let foreign = Issuer::new(&[0xEE; 32]);
        let ip = "127.0.0.1".parse().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..40 {
            let fake = foreign.issue(ip, Difficulty::new(1).unwrap());
            write_message(
                &mut stream,
                &aipow_wire::Message::SubmitSolution {
                    challenge: fake,
                    nonce: 0,
                    width: aipow_pow::NonceWidth::U64,
                    path: "/r".into(),
                },
            )
            .unwrap();
            match read_message(&mut stream).unwrap() {
                aipow_wire::Message::Rejected { code, .. } => {
                    assert_eq!(code, RejectCode::InvalidSolution)
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }

        // The recorder saw the abuse; the model now charges this IP more.
        let after = client.fetch("/r").unwrap().difficulty.unwrap().bits();
        assert!(
            after >= before + 2,
            "abuse must raise difficulty: before {before}, after {after}"
        );
        let online = server.online().expect("online loop configured");
        assert_eq!(online.recorder().len(), 1);
        server.shutdown();
    }

    #[test]
    fn rate_limit_rejects_excess_requests() {
        let server = test_server(
            0.0,
            ServerConfig {
                rate_limit: Some((2.0, 0.001)),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut rejected = 0;
        for _ in 0..4 {
            write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
            if let Message::Rejected { code, .. } = read_message(&mut stream).unwrap() {
                assert_eq!(code, RejectCode::RateLimited);
                rejected += 1;
            }
        }
        assert_eq!(rejected, 2, "burst of 2 then rejections");
        server.shutdown();
    }
}
