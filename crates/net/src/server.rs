//! The challenge-issuing TCP resource server.
//!
//! Built on the event-driven reactor in [`crate::reactor`]: a small,
//! fixed set of shard threads each run one readiness loop serving every
//! connection the shard owns. Concurrency is bounded by configuration
//! ([`ServerConfig::max_connections`]), not by how many OS threads the
//! host can schedule, and an idle connection costs a table slot and an
//! empty buffer pair rather than a parked thread.

use crate::reactor::{spawn_reactor, AcceptGate, ReactorHandle, ReactorShared};
use aipow_core::{FeatureSource, Framework, OnlineSettings, RateLimiter};
use aipow_online::OnlineLoop;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Ceiling on concurrently open connections across all reactor
    /// shards. Connection number `max_connections + 1` is refused at
    /// accept with a typed `Rejected{ServerBusy}` frame — it never costs
    /// a read buffer, a table slot, or a timer entry.
    pub max_connections: usize,
    /// Ceiling on concurrent connections from one source IP; `0`
    /// disables the per-IP cap. A single-source connection flood
    /// saturates its own cap and nothing else — other peers' slots and
    /// latency are unaffected.
    pub per_ip_connection_cap: usize,
    /// Connections with no inbound traffic for this long are reaped.
    /// `Duration::ZERO` disables idle reaping. Replaces the old
    /// per-connection blocking `read_timeout`: the reactor never blocks
    /// in a read, so idleness is a deadline-wheel sweep, not a stuck
    /// thread.
    pub idle_timeout: Duration,
    /// Reactor shard (thread) count; `None` picks the machine's
    /// available parallelism, capped at 8. Shard 0 owns the listener and
    /// deals admitted connections round-robin, so request work spreads
    /// across shards while accept stays single-owner (no thundering
    /// herd on the listener).
    pub reactor_shards: Option<usize>,
    /// Bound in bytes on one connection's queued-but-unsent replies.
    /// A peer that stops reading while requesting more work overflows
    /// this and is closed — the alternative is the server holding
    /// unbounded reply memory for a slow reader, multiplied by 100k
    /// connections. Must fit at least one maximum frame
    /// (`MAX_PAYLOAD_LEN` + header) or large resource grants can never
    /// be sent; values below that are raised to it at start.
    pub outbound_queue_bytes: usize,
    /// Optional per-IP rate limit: `(burst, refills_per_sec)` on
    /// resource requests. Solutions are never rate-limited — the client
    /// already paid for them in hashes.
    pub rate_limit: Option<(f64, f64)>,
    /// Maximum client IPs the rate limiter tracks; beyond this a full
    /// shard evicts its least-recently-refilled bucket to make room.
    pub rate_limit_max_clients: usize,
    /// Shard count for the rate limiter's bucket table; `None` picks a
    /// multiple of available parallelism. Adjusted on both sides
    /// (`aipow_shard::ShardLayout::bounded`): raised so no eviction scan
    /// exceeds [`rate_limit_max_scan`](Self::rate_limit_max_scan),
    /// capped at `rate_limit_max_clients`, floored to a power of two.
    pub rate_limit_shards: Option<usize>,
    /// Bound on the entries one rate-limiter eviction scan may visit —
    /// the worst-case per-request cost an address-cycling flood can
    /// inflict on the admission path, independent of
    /// `rate_limit_max_clients`.
    pub rate_limit_max_scan: usize,
    /// Maximum pipelined frames dispatched through the framework's batch
    /// admission path (`handle_request_batch` / `handle_solution_batch`)
    /// per group. A client that writes k requests back-to-back gets them
    /// admitted in one pipeline pass — one clock reading, one policy
    /// read-lock, one audit shard-lock acquisition per shard — instead
    /// of k. Replies are written in frame order either way; 1 disables
    /// batching (every frame dispatched alone). Clamped to a minimum
    /// of 1.
    pub max_batch: usize,
    /// Lane width for the verifier's multi-buffer SHA-256 kernel, applied
    /// to the framework at server start (`Verifier::set_verify_lanes`).
    /// `None` (the default) leaves the framework's setting — normally
    /// hardware auto-detection — untouched; explicit values are clamped
    /// to `[1, 8]`, with 1 forcing scalar verification. Purely a
    /// performance knob: every width computes identical outcomes.
    ///
    /// Formerly named `verify_lanes`; `lanes` is the one name for this
    /// knob across the API surface (`FrameworkConfig::lanes`,
    /// `FrameworkBuilder::lanes`, the `--lanes` CLI flag,
    /// `SolverOptions::lanes`).
    pub lanes: Option<usize>,
    /// Online behavioral-reputation loop. When set, the server attaches a
    /// behavior recorder to the framework's tap, serves model features
    /// from the live blending source (the `features` argument to
    /// [`PowServer::start`] becomes the cold-start prior), and runs the
    /// background decay/rescore worker for the server's lifetime.
    ///
    /// The framework's tap is write-once, so a given `Framework` supports
    /// **one** online attachment for its lifetime: restarting a server
    /// with `online` set against the same framework instance fails with
    /// `InvalidInput` (the first loop's recorder is still attached).
    /// Build a fresh framework per online-enabled server start — cheap
    /// via [`aipow_core::FrameworkConfig`] — or wire
    /// `aipow_online::OnlineLoop` yourself, keep it across restarts, and
    /// pass its source as `features` with `online: None`.
    pub online: Option<OnlineSettings>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 65_536,
            per_ip_connection_cap: 4_096,
            idle_timeout: Duration::from_secs(30),
            reactor_shards: None,
            outbound_queue_bytes: 2 * 1024 * 1024,
            rate_limit: None,
            rate_limit_max_clients: 65_536,
            rate_limit_shards: None,
            rate_limit_max_scan: aipow_core::sharded::DEFAULT_MAX_SCAN,
            max_batch: aipow_core::framework::DEFAULT_MAX_BATCH,
            lanes: None,
            online: None,
        }
    }
}

/// Floor for [`ServerConfig::outbound_queue_bytes`]: one maximum wire
/// frame (header + payload). Anything smaller could never carry a
/// full-size resource grant.
const OUTBOUND_QUEUE_FLOOR: usize = aipow_wire::MAX_PAYLOAD_LEN + 8;

/// A running server. Dropping it triggers the same orderly shutdown as
/// [`shutdown`](PowServer::shutdown): stop accepting, wake every reactor
/// shard, close all connections, join every thread.
pub struct PowServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<ReactorHandle>,
    gate: Arc<AcceptGate>,
    /// The online reputation loop, when configured; its decay worker is
    /// stopped on shutdown.
    online: Option<Arc<OnlineLoop>>,
}

impl std::fmt::Debug for PowServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowServer")
            .field("local_addr", &self.local_addr)
            .field("open_connections", &self.gate.open_connections())
            .finish_non_exhaustive()
    }
}

impl PowServer {
    /// Binds `addr` and starts the reactor shards.
    ///
    /// `resources` maps paths to response bodies; every path is fronted by
    /// the framework's challenge flow.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener or creating the
    /// shard pollers, or an [`io::ErrorKind::InvalidInput`] error when
    /// [`ServerConfig::online`] fails [`OnlineSettings::validate`]
    /// (version-controlled settings must reject bad values, not panic
    /// the server).
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        framework: Arc<Framework>,
        features: Arc<dyn FeatureSource>,
        resources: HashMap<String, Vec<u8>>,
        config: ServerConfig,
    ) -> io::Result<PowServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let resources = Arc::new(resources);

        if let Some(lanes) = config.lanes {
            framework.verifier().set_verify_lanes(lanes);
        }

        // Online loop: the caller's feature source becomes the cold-start
        // prior, and live features are served from the blending source.
        // Bad settings and a pre-existing behavior sink both reject the
        // explicit config loudly — silently serving static features
        // would defeat the operator's stated intent.
        let online = match &config.online {
            Some(settings) => Some(
                OnlineLoop::attach(
                    Arc::clone(&framework),
                    Arc::clone(&features),
                    settings.clone(),
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?,
            ),
            None => None,
        };
        let features: Arc<dyn FeatureSource> = match &online {
            Some(online_loop) => {
                online_loop.start();
                online_loop.source()
            }
            None => features,
        };
        let limiter = Arc::new(config.rate_limit.map(|(burst, refill)| {
            RateLimiter::with_layout(
                burst,
                refill,
                config.rate_limit_max_clients,
                config.rate_limit_shards,
                config.rate_limit_max_scan,
            )
        }));

        let gate = Arc::new(AcceptGate::new(
            config.max_connections.max(1),
            config.per_ip_connection_cap,
        ));
        let shards = config
            .reactor_shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(8)
            })
            .max(1);
        let shared = Arc::new(ReactorShared {
            framework,
            features,
            resources,
            limiter,
            gate: Arc::clone(&gate),
            shutdown: Arc::clone(&shutdown),
            max_batch: config.max_batch.max(1),
            idle_timeout: config.idle_timeout,
            outbound_limit: config.outbound_queue_bytes.max(OUTBOUND_QUEUE_FLOOR),
            epoch: std::time::Instant::now(),
        });
        let reactor = spawn_reactor(listener, shared, shards)?;

        Ok(PowServer {
            local_addr,
            shutdown,
            reactor: Some(reactor),
            gate,
            online,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open across all shards (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.gate.open_connections()
    }

    /// The online reputation loop, when the server was configured with
    /// one (for diagnostics: recorder population, manual sweeps).
    pub fn online(&self) -> Option<&Arc<OnlineLoop>> {
        self.online.as_ref()
    }

    /// Stops accepting, closes every connection, and joins all shard
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
        // Drop then runs on an already-shut-down server, where
        // `shutdown_in_place` is a no-op.
    }

    /// The idempotent shutdown body shared by [`shutdown`](Self::shutdown)
    /// and [`Drop`]: the reactor handle is consumed on the first call, so
    /// a second call finds nothing to do.
    fn shutdown_in_place(&mut self) {
        // Release: publishes the shutdown request to every shard; their
        // post-wait Acquire load pairs with it.
        self.shutdown.store(true, Ordering::Release);
        if let Some(reactor) = self.reactor.take() {
            // Wake each shard out of its poll wait; each closes its
            // connections (the listener drops with shard 0's locals,
            // releasing the port) and exits.
            for poller in &reactor.pollers {
                let _ = poller.notify();
            }
            for thread in reactor.threads {
                let _ = thread.join();
            }
        }
        if let Some(online) = self.online.take() {
            online.stop();
        }
    }
}

impl Drop for PowServer {
    fn drop(&mut self) {
        // Without this, dropping the server silently detached the
        // reactor threads and leaked live connections for the rest of
        // the process lifetime.
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_core::{FrameworkBuilder, StaticFeatureSource};
    use aipow_policy::LinearPolicy;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};
    use aipow_wire::{read_message, write_message, Message, RejectCode};
    use std::net::TcpStream;

    fn test_server(score: f64, config: ServerConfig) -> PowServer {
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        PowServer::start("127.0.0.1:0", framework, features, resources, config).unwrap()
    }

    #[test]
    fn starts_and_shuts_down() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }

    #[test]
    fn lanes_config_is_applied_at_start() {
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let server = PowServer::start(
            "127.0.0.1:0",
            Arc::clone(&framework),
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            HashMap::new(),
            ServerConfig {
                lanes: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(framework.verifier().verify_lanes(), 4);
        server.shutdown();
    }

    #[test]
    fn raw_tcp_garbage_is_rejected_cleanly() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // Server replies with a Rejected frame and closes; read until EOF
        // must terminate (no hang).
        let msg = read_message(&mut stream);
        match msg {
            Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn condemned_connection_is_reaped_despite_inbound_garbage() {
        use std::io::Write;
        use std::time::Instant;
        let server = test_server(
            0.0,
            ServerConfig {
                idle_timeout: Duration::from_millis(300),
                outbound_queue_bytes: 64 << 20,
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        // Queue ~8 MiB of pong replies without reading any of them: the
        // flush stalls on the full socket, so the rejection below cannot
        // complete and the condemned connection stays resident.
        let ping = aipow_wire::encode(&Message::Ping { token: 7 });
        let mut burst = Vec::with_capacity(ping.len() * 500_000 + 16);
        for _ in 0..500_000 {
            burst.extend_from_slice(&ping);
        }
        // A malformed frame condemns the connection (closing = true).
        burst.extend_from_slice(b"GET / HTTP/1.1\r\n");
        stream.write_all(&burst).unwrap();

        // Stream garbage continuously. Bytes arriving on a condemned
        // connection must neither be buffered nor count as activity, so
        // the idle reaper closes it even though it is never quiet; the
        // pre-fix behavior (ingest + activity refresh) kept it alive and
        // growing for as long as the peer cared to stream.
        stream
            .set_write_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let garbage = [0x5Au8; 8192];
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut closed = false;
        while Instant::now() < deadline {
            match stream.write(&garbage) {
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        assert!(
            closed,
            "server must reap a condemned connection that keeps streaming garbage"
        );
        server.shutdown();
    }

    #[test]
    fn ping_pong() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(&mut stream, &Message::Ping { token: 99 }).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 99),
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_resource_is_not_found() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::RequestResource {
                path: "/missing".into(),
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected not-found, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_joins_threads_and_releases_port() {
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        // A client is mid-connection when the server is dropped.
        let stream = TcpStream::connect(addr).unwrap();
        drop(server);
        // Shutdown interrupted the live connection...
        drop(stream);
        // ...and the listener is gone, so the port can be rebound.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after drop: {rebound:?}");
    }

    #[test]
    fn invalid_online_settings_error_instead_of_panicking() {
        use aipow_core::OnlineSettings;
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap(),
        );
        let err = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            HashMap::new(),
            ServerConfig {
                online: Some(OnlineSettings {
                    capacity: 0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn online_loop_raises_difficulty_for_abusive_ip() {
        use crate::client::PowClient;
        use aipow_core::OnlineSettings;
        use aipow_pow::{Difficulty, Issuer};
        use aipow_reputation::baseline::BlocklistHeuristic;

        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([3u8; 32])
                .model(BlocklistHeuristic)
                .policy(LinearPolicy::policy2())
                .build()
                .unwrap(),
        );
        let mut resources = HashMap::new();
        resources.insert("/r".to_string(), b"payload".to_vec());
        let server = PowServer::start(
            "127.0.0.1:0",
            framework,
            Arc::new(StaticFeatureSource::new(FeatureVector::zeros())),
            resources,
            ServerConfig {
                online: Some(OnlineSettings {
                    prior_strength: 4.0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let mut client = PowClient::connect(addr).unwrap();
        let before = client.fetch("/r").unwrap().difficulty.unwrap().bits();

        // Spam garbage solutions (foreign-key challenges fail the MAC).
        let foreign = Issuer::new(&[0xEE; 32]);
        let ip = "127.0.0.1".parse().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..40 {
            let fake = foreign.issue(ip, Difficulty::new(1).unwrap());
            write_message(
                &mut stream,
                &aipow_wire::Message::SubmitSolution {
                    backend: fake.backend(),
                    challenge: fake,
                    nonce: 0,
                    width: aipow_pow::NonceWidth::U64,
                    path: "/r".into(),
                },
            )
            .unwrap();
            match read_message(&mut stream).unwrap() {
                aipow_wire::Message::Rejected { code, .. } => {
                    assert_eq!(code, RejectCode::InvalidSolution)
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }

        // The recorder saw the abuse; the model now charges this IP more.
        let after = client.fetch("/r").unwrap().difficulty.unwrap().bits();
        assert!(
            after >= before + 2,
            "abuse must raise difficulty: before {before}, after {after}"
        );
        let online = server.online().expect("online loop configured");
        assert_eq!(online.recorder().len(), 1);
        server.shutdown();
    }

    #[test]
    fn pipelined_frames_are_batched_and_replied_in_order() {
        use std::io::Write;
        let server = test_server(
            0.0,
            ServerConfig {
                max_batch: 8,
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Write a pipelined burst in one TCP segment: 3 requests, a
        // ping, and a not-found, without reading between writes.
        let mut burst = Vec::new();
        for _ in 0..3 {
            burst.extend(aipow_wire::encode(&Message::RequestResource {
                path: "/r".into(),
            }));
        }
        burst.extend(aipow_wire::encode(&Message::Ping { token: 42 }));
        burst.extend(aipow_wire::encode(&Message::RequestResource {
            path: "/missing".into(),
        }));
        stream.write_all(&burst).unwrap();

        for i in 0..3 {
            match read_message(&mut stream).unwrap() {
                Message::ChallengeIssued { path, .. } => assert_eq!(path, "/r", "frame {i}"),
                other => panic!("frame {i}: expected challenge, got {other:?}"),
            }
        }
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 42),
            other => panic!("expected pong, got {other:?}"),
        }
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected not-found, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_solutions_verify_through_the_batch_path() {
        use aipow_pow::solver::{self, SolverOptions};
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let addr = server.local_addr();
        let client_ip = "127.0.0.1".parse().unwrap();

        // Fetch two challenges (pipelined), solve both, submit both
        // pipelined; both must grant.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut burst = Vec::new();
        for _ in 0..2 {
            burst.extend(aipow_wire::encode(&Message::RequestResource {
                path: "/r".into(),
            }));
        }
        stream.write_all(&burst).unwrap();
        let mut challenges = Vec::new();
        for _ in 0..2 {
            match read_message(&mut stream).unwrap() {
                Message::ChallengeIssued { challenge, .. } => challenges.push(challenge),
                other => panic!("expected challenge, got {other:?}"),
            }
        }
        let mut burst = Vec::new();
        for challenge in challenges {
            let report = solver::solve(&challenge, client_ip, &SolverOptions::default()).unwrap();
            burst.extend(aipow_wire::encode(&Message::SubmitSolution {
                backend: report.solution.backend,
                challenge: report.solution.challenge,
                nonce: report.solution.nonce,
                width: report.solution.width,
                path: "/r".into(),
            }));
        }
        stream.write_all(&burst).unwrap();
        for i in 0..2 {
            match read_message(&mut stream).unwrap() {
                Message::ResourceGranted { body, .. } => {
                    assert_eq!(body, b"payload", "solution {i}")
                }
                other => panic!("solution {i}: expected grant, got {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn hello_handshake_echoes_server_version() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::Hello {
                version: aipow_wire::PROTOCOL_VERSION,
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Hello { version } => assert_eq!(version, aipow_wire::PROTOCOL_VERSION),
            other => panic!("expected hello echo, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn hello_version_mismatch_gets_typed_protocol_rejection() {
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(
            &mut stream,
            &Message::Hello {
                version: aipow_wire::PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, detail } => {
                assert_eq!(code, RejectCode::ProtocolMismatch);
                assert!(detail.contains("version"), "detail: {detail}");
            }
            other => panic!("expected protocol-mismatch rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stale_frame_version_byte_gets_typed_protocol_rejection() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Corrupt the frame-header version byte (magic(2) ‖ version(1) ‖ …)
        // to emulate an old-protocol peer: the reject must be the typed
        // ProtocolMismatch, not generic Malformed.
        let mut frame = aipow_wire::encode(&Message::Ping { token: 5 });
        frame[2] = aipow_wire::PROTOCOL_VERSION.wrapping_add(1);
        stream.write_all(&frame).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::ProtocolMismatch),
            other => panic!("expected protocol-mismatch rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_backend_id_in_solution_frame_is_rejected() {
        use aipow_pow::solver::{self, SolverOptions};
        let server = test_server(0.0, ServerConfig::default());
        let client_ip = "127.0.0.1".parse().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
        let challenge = match read_message(&mut stream).unwrap() {
            Message::ChallengeIssued { challenge, .. } => challenge,
            other => panic!("expected challenge, got {other:?}"),
        };
        // Solve honestly, then claim an unregistered backend id in the
        // submission frame: the verifier must refuse it as a typed
        // invalid solution rather than granting or crashing.
        let report = solver::solve(&challenge, client_ip, &SolverOptions::default()).unwrap();
        write_message(
            &mut stream,
            &Message::SubmitSolution {
                backend: aipow_pow::BackendId(99),
                challenge: report.solution.challenge,
                nonce: report.solution.nonce,
                width: report.solution.width,
                path: "/r".into(),
            },
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, detail } => {
                assert_eq!(code, RejectCode::InvalidSolution);
                assert!(detail.contains("backend"), "detail: {detail}");
            }
            other => panic!("expected invalid-solution rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn partial_trailing_frame_does_not_delay_earlier_replies() {
        use std::io::Write;
        use std::time::Instant;
        // A complete ping plus the first bytes of a second frame: the
        // reactor must answer the ping immediately — a partial successor
        // frame just stays in the assembler until its bytes arrive.
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut burst = aipow_wire::encode(&Message::Ping { token: 11 });
        let second = aipow_wire::encode(&Message::Ping { token: 12 });
        burst.extend_from_slice(&second[..5]); // header fragment only
        stream.write_all(&burst).unwrap();
        let start = Instant::now();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 11),
            other => panic!("expected pong, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "first reply was held behind the partial frame for {:?}",
            start.elapsed()
        );
        // Completing the fragment gets the second reply.
        stream.write_all(&second[5..]).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 12),
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_frame_mid_batch_still_answers_earlier_frames() {
        use std::io::Write;
        let server = test_server(0.0, ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut burst = aipow_wire::encode(&Message::Ping { token: 7 });
        burst.extend_from_slice(b"\xFF\xFFgarbage");
        stream.write_all(&burst).unwrap();
        match read_message(&mut stream).unwrap() {
            Message::Pong { token } => assert_eq!(token, 7),
            other => panic!("expected pong, got {other:?}"),
        }
        match read_message(&mut stream).unwrap() {
            Message::Rejected { code, .. } => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected malformed rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn rate_limit_rejects_excess_requests() {
        let server = test_server(
            0.0,
            ServerConfig {
                rate_limit: Some((2.0, 0.001)),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut rejected = 0;
        for _ in 0..4 {
            write_message(&mut stream, &Message::RequestResource { path: "/r".into() }).unwrap();
            if let Message::Rejected { code, .. } = read_message(&mut stream).unwrap() {
                assert_eq!(code, RejectCode::RateLimited);
                rejected += 1;
            }
        }
        assert_eq!(rejected, 2, "burst of 2 then rejections");
        server.shutdown();
    }

    #[test]
    fn per_ip_cap_rejects_with_typed_server_busy() {
        let server = test_server(
            0.0,
            ServerConfig {
                per_ip_connection_cap: 2,
                ..Default::default()
            },
        );
        let addr = server.local_addr();
        // Two connections fill this IP's budget; both still serve.
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        write_message(&mut a, &Message::Ping { token: 1 }).unwrap();
        assert!(matches!(
            read_message(&mut a).unwrap(),
            Message::Pong { token: 1 }
        ));
        // The third is refused at accept with the typed frame, then EOF.
        let mut c = TcpStream::connect(addr).unwrap();
        match read_message(&mut c) {
            Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::ServerBusy),
            other => panic!("expected server-busy rejection, got {other:?}"),
        }
        // Closing one admitted connection frees the slot. The close must
        // propagate through the reactor before the gate slot frees, so
        // probe with ping until a new connection is admitted.
        drop(a);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let mut d = TcpStream::connect(addr).unwrap();
            d.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = write_message(&mut d, &Message::Ping { token: 9 });
            match read_message(&mut d) {
                Ok(Message::Pong { token }) => {
                    assert_eq!(token, 9);
                    break;
                }
                // Still capped (typed reject) or racing the close (EOF /
                // reset / timeout): retry until the deadline.
                Ok(Message::Rejected { code, .. }) => {
                    assert_eq!(code, RejectCode::ServerBusy);
                }
                Ok(other) => panic!("unsolicited frame {other:?}"),
                Err(_) => {}
            }
            assert!(
                std::time::Instant::now() < deadline,
                "freed per-IP slot never became admittable"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        write_message(&mut b, &Message::Ping { token: 2 }).unwrap();
        assert!(matches!(
            read_message(&mut b).unwrap(),
            Message::Pong { token: 2 }
        ));
        server.shutdown();
    }

    #[test]
    fn max_connections_cap_rejects_with_typed_server_busy() {
        let server = test_server(
            0.0,
            ServerConfig {
                max_connections: 1,
                per_ip_connection_cap: 0,
                ..Default::default()
            },
        );
        let addr = server.local_addr();
        let mut a = TcpStream::connect(addr).unwrap();
        write_message(&mut a, &Message::Ping { token: 1 }).unwrap();
        assert!(matches!(
            read_message(&mut a).unwrap(),
            Message::Pong { .. }
        ));
        let mut b = TcpStream::connect(addr).unwrap();
        match read_message(&mut b) {
            Ok(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::ServerBusy),
            other => panic!("expected server-busy rejection, got {other:?}"),
        }
        assert_eq!(server.open_connections(), 1);
        server.shutdown();
    }

    #[test]
    fn client_sees_typed_server_busy_at_connect() {
        use crate::client::{ClientError, PowClient};
        let server = test_server(
            0.0,
            ServerConfig {
                max_connections: 1,
                per_ip_connection_cap: 0,
                ..Default::default()
            },
        );
        let addr = server.local_addr();
        let first = PowClient::connect(addr).unwrap();
        match PowClient::connect(addr) {
            Err(ClientError::ServerBusy { detail }) => {
                assert!(detail.contains("capacity"), "detail: {detail}")
            }
            other => panic!("expected typed server-busy, got {other:?}"),
        }
        drop(first);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_on_deadline() {
        let server = test_server(
            0.0,
            ServerConfig {
                idle_timeout: Duration::from_millis(200),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Activity works while fresh.
        write_message(&mut stream, &Message::Ping { token: 1 }).unwrap();
        assert!(matches!(
            read_message(&mut stream).unwrap(),
            Message::Pong { .. }
        ));
        // Then silence: the reaper closes the connection — the next read
        // sees EOF (or a reset) rather than hanging forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let start = std::time::Instant::now();
        if let Ok(other) = read_message(&mut stream) {
            panic!("unsolicited frame {other:?}");
        }
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "reap took {:?}, idle timeout was 200ms",
            start.elapsed()
        );
        assert_eq!(server.open_connections(), 0);
        server.shutdown();
    }

    #[test]
    fn active_connection_survives_the_idle_deadline() {
        let server = test_server(
            0.0,
            ServerConfig {
                idle_timeout: Duration::from_millis(300),
                ..Default::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Keep pinging across several idle windows: activity must push
        // the deadline forward, not merely delay the first reap.
        for token in 0..10 {
            write_message(&mut stream, &Message::Ping { token }).unwrap();
            match read_message(&mut stream).unwrap() {
                Message::Pong { token: t } => assert_eq!(t, token),
                other => panic!("expected pong, got {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        server.shutdown();
    }

    #[test]
    fn many_concurrent_connections_serve_on_few_threads() {
        // Far more live connections than reactor threads: the old
        // design needed a worker per connection; the reactor serves all
        // of them from one shard.
        let server = test_server(
            0.0,
            ServerConfig {
                reactor_shards: Some(1),
                per_ip_connection_cap: 0,
                ..Default::default()
            },
        );
        let addr = server.local_addr();
        let mut streams: Vec<TcpStream> =
            (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // All 64 held open simultaneously, all answering.
        for (i, stream) in streams.iter_mut().enumerate() {
            write_message(stream, &Message::Ping { token: i as u64 }).unwrap();
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            match read_message(stream).unwrap() {
                Message::Pong { token } => assert_eq!(token, i as u64),
                other => panic!("conn {i}: expected pong, got {other:?}"),
            }
        }
        server.shutdown();
    }
}
