//! The puzzle-solving client (the framework's solver role).

use aipow_pow::solver::{self, SolveError, SolverOptions};
use aipow_pow::{Difficulty, Solution};
use aipow_wire::{read_message, write_message, Message, ReadMessageError, RejectCode};
use core::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a fetch failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// A frame failed to decode, or the peer closed mid-exchange.
    Protocol(ReadMessageError),
    /// The server rejected the request or solution.
    Rejected {
        /// The server's reason code.
        code: RejectCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server speaks an incompatible protocol version. Surfaced
    /// apart from [`ClientError::Rejected`] so callers can distinguish
    /// "upgrade the client" from per-request refusals.
    ProtocolMismatch {
        /// The server's explanation (usually names its version).
        detail: String,
    },
    /// The server refused the connection at its capacity gate (global
    /// or per-IP cap). Distinct from a connection-refused
    /// [`ClientError::Io`] — the server is up and chose to shed this
    /// connection, so backing off and retrying is sensible where a
    /// refused connect usually is not.
    ServerBusy {
        /// The server's explanation.
        detail: String,
    },
    /// The local solver gave up (budget or nonce space exhausted).
    Solve(SolveError),
    /// The server sent a message that does not fit the protocol state.
    UnexpectedMessage {
        /// A description of what arrived.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { code, detail } => {
                write!(f, "server rejected request: {code}: {detail}")
            }
            ClientError::ProtocolMismatch { detail } => {
                write!(
                    f,
                    "incompatible protocol version (client speaks {}): {detail}",
                    aipow_wire::PROTOCOL_VERSION
                )
            }
            ClientError::ServerBusy { detail } => {
                write!(f, "server at connection capacity: {detail}")
            }
            ClientError::Solve(e) => write!(f, "solver failed: {e}"),
            ClientError::UnexpectedMessage { got } => {
                write!(f, "unexpected message from server: {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadMessageError> for ClientError {
    fn from(e: ReadMessageError) -> Self {
        // A version-byte mismatch in a received frame is the same
        // condition as a ProtocolMismatch rejection: the peers disagree
        // on the protocol revision.
        if let ReadMessageError::Decode(aipow_wire::DecodeError::UnsupportedVersion { got }) = &e {
            return ClientError::ProtocolMismatch {
                detail: format!("server frame carries protocol version {got}"),
            };
        }
        ClientError::Protocol(e)
    }
}

/// Maps a server `Rejected` frame to the client error, peeling the
/// protocol-mismatch and server-busy codes out into their dedicated
/// variants.
fn rejected(code: RejectCode, detail: String) -> ClientError {
    match code {
        RejectCode::ProtocolMismatch => ClientError::ProtocolMismatch { detail },
        RejectCode::ServerBusy => ClientError::ServerBusy { detail },
        _ => ClientError::Rejected { code, detail },
    }
}

/// What a successful fetch cost.
#[derive(Debug, Clone)]
pub struct FetchReport {
    /// The resource bytes.
    pub body: Vec<u8>,
    /// The difficulty that was paid (None when the server bypassed the
    /// puzzle).
    pub difficulty: Option<Difficulty>,
    /// Hash evaluations spent solving.
    pub attempts: u64,
    /// Time spent solving the puzzle.
    pub solve_time: Duration,
    /// End-to-end request latency, the paper's Figure 2 metric.
    pub total_time: Duration,
}

/// A live telemetry snapshot fetched from a server, pre-rendered by the
/// server in both expositions (see
/// [`PowClient::telemetry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The snapshot as one JSON object
    /// (`aipow_core::export::snapshot_json` shape).
    pub json: String,
    /// The snapshot in Prometheus text exposition format.
    pub prometheus: String,
}

/// A blocking client for [`PowServer`](crate::PowServer).
///
/// One TCP connection, reusable across any number of fetches.
#[derive(Debug)]
pub struct PowClient {
    stream: TcpStream,
    solver_options: SolverOptions,
    solver_threads: usize,
}

impl PowClient {
    /// Default bound on waiting for a server reply. Every read is
    /// time-limited so a dead or wedged peer surfaces as an error instead
    /// of hanging the caller (and CI) forever.
    pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

    /// Connects to a server with [`Self::DEFAULT_READ_TIMEOUT`] and
    /// performs the version handshake: a [`Message::Hello`] carrying
    /// [`aipow_wire::PROTOCOL_VERSION`] opens every connection, so a
    /// version skew surfaces here as [`ClientError::ProtocolMismatch`]
    /// instead of as a confusing mid-exchange failure.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; returns
    /// [`ClientError::ProtocolMismatch`] when the server speaks a
    /// different protocol revision.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Self::DEFAULT_READ_TIMEOUT))?;
        let mut client = PowClient {
            stream,
            solver_options: SolverOptions::default(),
            solver_threads: 1,
        };
        write_message(
            &mut client.stream,
            &Message::Hello {
                version: aipow_wire::PROTOCOL_VERSION,
            },
        )?;
        match read_message(&mut client.stream)? {
            Message::Hello { version } if version == aipow_wire::PROTOCOL_VERSION => Ok(client),
            Message::Hello { version } => Err(ClientError::ProtocolMismatch {
                detail: format!("server answered hello with protocol version {version}"),
            }),
            Message::Rejected { code, detail } => Err(rejected(code, detail)),
            other => Err(ClientError::UnexpectedMessage {
                got: format!("{other:?}"),
            }),
        }
    }

    /// Bounds how long each read waits for the server (`None` disables
    /// the bound).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn with_read_timeout(self, timeout: Option<Duration>) -> io::Result<Self> {
        self.stream.set_read_timeout(timeout)?;
        Ok(self)
    }

    /// Uses custom solver options (e.g. strict 32-bit nonces).
    pub fn with_solver_options(mut self, options: SolverOptions) -> Self {
        self.solver_options = options;
        self
    }

    /// Solves with `threads` worker threads (powerful clients).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one solver thread required");
        self.solver_threads = threads;
        self
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Fetches `path`: request → solve the returned puzzle → submit →
    /// receive the resource. This is the client half of Figure 1.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, protocol, solver, or server
    /// rejection.
    pub fn fetch(&mut self, path: &str) -> Result<FetchReport, ClientError> {
        let start = Instant::now();
        write_message(
            &mut self.stream,
            &Message::RequestResource { path: path.into() },
        )?;

        let (challenge, echoed_path) = match read_message(&mut self.stream)? {
            Message::ChallengeIssued { challenge, path } => (challenge, path),
            Message::ResourceGranted { body, .. } => {
                // Bypass: the server served us without a puzzle.
                return Ok(FetchReport {
                    body,
                    difficulty: None,
                    attempts: 0,
                    solve_time: Duration::ZERO,
                    total_time: start.elapsed(),
                });
            }
            Message::Rejected { code, detail } => return Err(rejected(code, detail)),
            other => {
                return Err(ClientError::UnexpectedMessage {
                    got: format!("{other:?}"),
                })
            }
        };

        // Solve against the IP the server bound the challenge to (our
        // address as the server sees it).
        let solve_ip = challenge.client_ip();
        let report = if self.solver_threads > 1 {
            solver::solve_parallel(
                &challenge,
                solve_ip,
                self.solver_threads,
                &self.solver_options,
            )
        } else {
            solver::solve(&challenge, solve_ip, &self.solver_options)
        }
        .map_err(ClientError::Solve)?;

        let paid_difficulty = report.solution.challenge.difficulty();
        let Solution {
            challenge,
            nonce,
            width,
            backend,
        } = report.solution;
        write_message(
            &mut self.stream,
            &Message::SubmitSolution {
                challenge,
                nonce,
                width,
                backend,
                path: echoed_path,
            },
        )?;

        match read_message(&mut self.stream)? {
            Message::ResourceGranted { body, .. } => Ok(FetchReport {
                body,
                difficulty: Some(paid_difficulty),
                attempts: report.attempts,
                solve_time: report.elapsed,
                total_time: start.elapsed(),
            }),
            Message::Rejected { code, detail } => Err(rejected(code, detail)),
            other => Err(ClientError::UnexpectedMessage {
                got: format!("{other:?}"),
            }),
        }
    }

    /// Fetches the server's live telemetry snapshot — the same metrics an
    /// operator sees locally via `Framework::metrics_snapshot`, rendered
    /// server-side as JSON and Prometheus text. Polling this endpoint is
    /// also the server's trigger heartbeat: each snapshot feeds the
    /// tracer's flight-recorder thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure, server rejection, or
    /// an out-of-protocol reply.
    pub fn telemetry(&mut self) -> Result<TelemetrySnapshot, ClientError> {
        write_message(&mut self.stream, &Message::TelemetryRequest)?;
        match read_message(&mut self.stream)? {
            Message::TelemetryReply { json, prometheus } => {
                Ok(TelemetrySnapshot { json, prometheus })
            }
            Message::Rejected { code, detail } => Err(rejected(code, detail)),
            other => Err(ClientError::UnexpectedMessage {
                got: format!("{other:?}"),
            }),
        }
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or a mismatched token.
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let start = Instant::now();
        write_message(&mut self.stream, &Message::Ping { token: 0xA1F0 })?;
        match read_message(&mut self.stream)? {
            Message::Pong { token: 0xA1F0 } => Ok(start.elapsed()),
            other => Err(ClientError::UnexpectedMessage {
                got: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PowServer, ServerConfig};
    use aipow_core::{FrameworkBuilder, StaticFeatureSource};
    use aipow_policy::LinearPolicy;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn spawn_server(score: f64, bypass: Option<f64>) -> (PowServer, Arc<aipow_core::Framework>) {
        let mut builder = FrameworkBuilder::new()
            .master_key([4u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
            .policy(LinearPolicy::policy1());
        if let Some(t) = bypass {
            builder = builder.bypass_threshold(t);
        }
        let framework = Arc::new(builder.build().unwrap());
        let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
        let mut resources = HashMap::new();
        resources.insert("/data".to_string(), vec![42u8; 128]);
        let server = PowServer::start(
            "127.0.0.1:0",
            Arc::clone(&framework),
            features,
            resources,
            ServerConfig::default(),
        )
        .unwrap();
        (server, framework)
    }

    #[test]
    fn fetch_solves_and_receives() {
        let (server, framework) = spawn_server(2.0, None);
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        let report = client.fetch("/data").unwrap();
        assert_eq!(report.body, vec![42u8; 128]);
        assert_eq!(report.difficulty.unwrap().bits(), 3); // score 2 → policy1 → 3
        assert!(report.attempts >= 1);
        let snap = framework.metrics().snapshot();
        assert_eq!(snap.challenges_issued, 1);
        assert_eq!(snap.solutions_accepted, 1);
        server.shutdown();
    }

    #[test]
    fn repeated_fetches_reuse_connection() {
        let (server, framework) = spawn_server(0.0, None);
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        for _ in 0..5 {
            let report = client.fetch("/data").unwrap();
            assert_eq!(report.body.len(), 128);
        }
        assert_eq!(framework.metrics().snapshot().solutions_accepted, 5);
        server.shutdown();
    }

    #[test]
    fn bypass_served_without_puzzle() {
        let (server, framework) = spawn_server(1.0, Some(5.0));
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        let report = client.fetch("/data").unwrap();
        assert_eq!(report.difficulty, None);
        assert_eq!(report.attempts, 0);
        assert_eq!(framework.metrics().snapshot().bypassed, 1);
        server.shutdown();
    }

    #[test]
    fn missing_resource_rejected() {
        let (server, _) = spawn_server(0.0, None);
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        match client.fetch("/nope") {
            Err(ClientError::Rejected { code, .. }) => assert_eq!(code, RejectCode::NotFound),
            other => panic!("expected rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn parallel_solver_client_works() {
        let (server, _) = spawn_server(8.0, None); // policy1 → 9 bits
        let mut client = PowClient::connect(server.local_addr())
            .unwrap()
            .with_solver_threads(4);
        let report = client.fetch("/data").unwrap();
        assert_eq!(report.difficulty.unwrap().bits(), 9);
        server.shutdown();
    }

    #[test]
    fn ping_roundtrip() {
        let (server, _) = spawn_server(0.0, None);
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        let rtt = client.ping().unwrap();
        assert!(rtt < Duration::from_secs(5));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_succeed() {
        let (server, framework) = spawn_server(3.0, None);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = PowClient::connect(addr).unwrap();
                    client.fetch("/data").unwrap().body.len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 128);
        }
        assert_eq!(framework.metrics().snapshot().solutions_accepted, 8);
        server.shutdown();
    }

    #[test]
    fn telemetry_endpoint_serves_parsable_snapshots() {
        let (server, framework) = spawn_server(2.0, None);
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        client.fetch("/data").unwrap();
        let snap = client.telemetry().unwrap();

        // The JSON body reflects the fetch we just made.
        assert!(snap.json.starts_with('{') && snap.json.ends_with('}'));
        assert!(
            snap.json.contains("\"challenges_issued\":1"),
            "{}",
            snap.json
        );
        assert!(snap.json.contains("\"solutions_accepted\":1"));
        assert!(snap.json.contains("\"stage_timings\":["));

        // The Prometheus exposition parses line by line: every line is a
        // `# TYPE` comment or `name[{labels}] value` with a numeric value.
        let mut samples = 0;
        for line in snap.prometheus.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE aipow_"), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            assert!(series.starts_with("aipow_"), "bad series in {line}");
            samples += 1;
        }
        assert!(samples >= 20, "thin exposition: {samples} samples");
        assert!(snap.prometheus.contains("aipow_solutions_accepted 1"));
        assert!(snap
            .prometheus
            .contains("aipow_stage_p99_ns{stage=\"score\"}"));
        let _ = framework;
        server.shutdown();
    }

    #[test]
    fn connect_performs_version_handshake() {
        let (server, _) = spawn_server(0.0, None);
        // connect() already exchanged hellos; the connection is still
        // usable for a normal fetch afterwards.
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.fetch("/data").unwrap().body.len(), 128);
        server.shutdown();
    }

    #[test]
    fn version_skew_surfaces_as_protocol_mismatch() {
        use std::io::{Read, Write};
        // A fake "old server": accepts one connection, swallows the
        // client hello, answers with a hello naming a different version.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
            let reply = aipow_wire::encode(&Message::Hello { version: 1 });
            stream.write_all(&reply).unwrap();
        });
        match PowClient::connect(addr) {
            Err(ClientError::ProtocolMismatch { detail }) => {
                assert!(detail.contains('1'), "detail: {detail}");
            }
            other => panic!("expected protocol mismatch, got {other:?}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn memory_hard_challenge_fetches_end_to_end() {
        // A suspicious score plus a low routing threshold sends this
        // client a memory-hard puzzle; the whole Figure 1 exchange must
        // still complete through the backend seam.
        let framework = Arc::new(
            FrameworkBuilder::new()
                .master_key([4u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(9.0).unwrap()))
                .policy(LinearPolicy::policy1())
                .route_memory_hard_above(5.0)
                .memory_hard_arena_mib(1)
                .build()
                .unwrap(),
        );
        let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
        let mut resources = HashMap::new();
        resources.insert("/data".to_string(), vec![7u8; 32]);
        let server = PowServer::start(
            "127.0.0.1:0",
            Arc::clone(&framework),
            features,
            resources,
            ServerConfig::default(),
        )
        .unwrap();
        let mut client = PowClient::connect(server.local_addr()).unwrap();
        let report = client.fetch("/data").unwrap();
        assert_eq!(report.body, vec![7u8; 32]);
        assert!(report.attempts >= 1);
        assert_eq!(framework.metrics().snapshot().solutions_accepted, 1);
        server.shutdown();
    }

    #[test]
    fn error_display_nonempty() {
        let e = ClientError::Rejected {
            code: RejectCode::RateLimited,
            detail: "x".into(),
        };
        assert!(e.to_string().contains("rate limited"));
    }
}
