//! A real networked deployment of the framework (paper §I: “a simple
//! networked client-server environment \[where\] the server contains the
//! issuer/generator and the verifier components, and the client is the
//! solver”).
//!
//! - [`PowServer`] — an event-driven TCP resource server (a small set of
//!   [`reactor`] shards, each a readiness loop serving thousands of
//!   connections) that fronts every resource with the admission pipeline
//!   of [`aipow_core::Framework`];
//! - [`PowClient`] — a blocking client that requests a resource, solves
//!   the returned puzzle, submits the solution, and receives the resource.
//!
//! # Example
//!
//! ```
//! use aipow_core::{FrameworkBuilder, StaticFeatureSource};
//! use aipow_net::{PowClient, PowServer, ServerConfig};
//! use aipow_policy::LinearPolicy;
//! use aipow_reputation::model::FixedScoreModel;
//! use aipow_reputation::{FeatureVector, ReputationScore};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let framework = Arc::new(
//!     FrameworkBuilder::new()
//!         .master_key([7u8; 32])
//!         .model(FixedScoreModel::new(ReputationScore::new(1.0)?))
//!         .policy(LinearPolicy::policy1())
//!         .build()?,
//! );
//! let features = Arc::new(StaticFeatureSource::new(FeatureVector::zeros()));
//! let mut resources = std::collections::HashMap::new();
//! resources.insert("/hello".to_string(), b"world".to_vec());
//!
//! let server = PowServer::start("127.0.0.1:0", framework, features, resources,
//!                               ServerConfig::default())?;
//! let mut client = PowClient::connect(server.local_addr())?;
//! let report = client.fetch("/hello")?;
//! assert_eq!(report.body, b"world");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod reactor;
pub mod server;

pub use client::{ClientError, FetchReport, PowClient, TelemetrySnapshot};
pub use server::{PowServer, ServerConfig};
