//! Per-connection byte plumbing: the incremental frame assembler and the
//! bounded outbound write queue.
//!
//! Both structures are fd-agnostic — they see only byte slices — so the
//! same code runs under the real epoll loop, the netsim connection-flood
//! scenario (100k virtual connections, no sockets), and the wire-path
//! fragmentation proptests.

use aipow_wire::codec::{self, DecodeError};
use aipow_wire::{Message, MAX_PAYLOAD_LEN};

/// Frame header length: `magic(2) ‖ version(1) ‖ type(1) ‖ len(4)`.
const HEADER_LEN: usize = 8;

/// Capacity above which an emptied buffer is released outright. An idle
/// connection that once carried a large frame must not pin that frame's
/// allocation forever — 100k idle connections times a 4 KiB remnant is
/// 400 MiB of dead heap. Client-to-server frames are ~100 bytes, so
/// steady-state capacity stays far below this and is kept (no realloc
/// churn); only outliers are trimmed.
const IDLE_SHRINK_BYTES: usize = 4096;

/// Accumulates raw stream bytes and yields complete wire frames.
///
/// The assembler validates the fixed header (magic, version, declared
/// length) as soon as 8 bytes are buffered, so garbage or an oversized
/// declaration is rejected *before* the peer is owed `len` more bytes —
/// a flood of bogus headers dies without buffering a payload. Complete
/// frames decode through [`aipow_wire::codec::decode`], the same
/// function the blocking path used, so the reactor cannot drift from the
/// protocol.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it grows past the live
    /// suffix.
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler (no allocation until bytes arrive).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the stream.
    pub fn ingest(&mut self, bytes: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight the
        // allocator would otherwise copy on reallocation anyway.
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= MAX_PAYLOAD_LEN) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered and not yet consumed by a produced frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Heap bytes pinned by this assembler (the idle-memory metric the
    /// connflood scenario budgets).
    pub fn memory(&self) -> usize {
        self.buf.capacity()
    }

    /// Extracts the next complete frame, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] for a malformed header or frame; the
    /// stream offset is unrecoverable after that, so the caller must
    /// reject-and-close, exactly as the blocking drain did.
    pub fn next_frame(&mut self) -> Result<Option<Message>, DecodeError> {
        let avail = self.buffered();
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let header = &self.buf[self.start..self.start + HEADER_LEN];
        // Fail fast on the fixed header so a bogus peer is cut off
        // before it is owed a payload's worth of buffering. The checks
        // mirror `codec::decode`'s, in the same order.
        let magic = u16::from_be_bytes([header[0], header[1]]);
        if magic != codec::MAGIC {
            return Err(DecodeError::BadMagic { got: magic });
        }
        if header[2] != codec::PROTOCOL_VERSION {
            return Err(DecodeError::UnsupportedVersion { got: header[2] });
        }
        let declared = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if declared > MAX_PAYLOAD_LEN {
            return Err(DecodeError::PayloadTooLarge { declared });
        }
        let total = HEADER_LEN + declared;
        if avail < total {
            return Ok(None);
        }
        let frame = &self.buf[self.start..self.start + total];
        let msg = codec::decode(frame)?;
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            if self.buf.capacity() > IDLE_SHRINK_BYTES {
                self.buf = Vec::new();
            }
        }
        Ok(Some(msg))
    }
}

/// What pushing onto a [`WriteQueue`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePush {
    /// The bytes were queued (or partially written by the caller first).
    Queued,
    /// The queue's byte bound would be exceeded: the peer is not reading
    /// its replies. The caller must close the connection — an unread
    /// backlog growing without bound is exactly the memory a slow-reader
    /// flood would otherwise cost.
    Overflow,
}

/// Bytes awaiting a writable socket, bounded.
///
/// Replies are appended encoded; the event loop drains from the front on
/// writable readiness. The bound is bytes (not frames) because the
/// resource bodies dominate and that is what memory pressure is made of.
#[derive(Debug)]
pub struct WriteQueue {
    buf: Vec<u8>,
    start: usize,
    limit: usize,
}

impl WriteQueue {
    /// A queue holding at most `limit` pending bytes.
    pub fn new(limit: usize) -> Self {
        WriteQueue {
            buf: Vec::new(),
            start: 0,
            limit,
        }
    }

    /// Appends an encoded frame.
    #[must_use = "an Overflow must close the connection"]
    pub fn push(&mut self, frame: &[u8]) -> QueuePush {
        if self.pending_len() + frame.len() > self.limit {
            return QueuePush::Overflow;
        }
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(frame);
        QueuePush::Queued
    }

    /// The unwritten bytes, front first.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Number of unwritten bytes.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether everything queued has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pending_len() == 0
    }

    /// Marks `n` front bytes as written.
    pub fn consume(&mut self, n: usize) {
        self.start += n.min(self.pending_len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            if self.buf.capacity() > IDLE_SHRINK_BYTES {
                self.buf = Vec::new();
            }
        }
    }

    /// Heap bytes pinned by this queue.
    pub fn memory(&self) -> usize {
        self.buf.capacity()
    }
}

/// The fd-agnostic core of one connection: everything the reactor tracks
/// per peer except the socket itself. The netsim connection-flood
/// scenario holds 100k of these directly; the real event loop embeds one
/// per [`TcpStream`](std::net::TcpStream).
#[derive(Debug)]
pub struct ConnCore {
    /// The peer's address, the key for per-IP accounting and admission.
    pub peer_ip: std::net::IpAddr,
    /// Partial-frame accumulation.
    pub assembler: FrameAssembler,
    /// Replies awaiting socket writability.
    pub outbound: WriteQueue,
    /// Last inbound activity, server-clock milliseconds; the idle reaper
    /// compares this against its deadline.
    pub last_activity_ms: u64,
    /// Set once the connection is condemned (malformed frame, overflow):
    /// pending replies flush, nothing more is read, then it closes.
    pub closing: bool,
}

impl ConnCore {
    /// A fresh connection core.
    pub fn new(peer_ip: std::net::IpAddr, now_ms: u64, outbound_limit: usize) -> Self {
        ConnCore {
            peer_ip,
            assembler: FrameAssembler::new(),
            outbound: WriteQueue::new(outbound_limit),
            last_activity_ms: now_ms,
            closing: false,
        }
    }

    /// Heap bytes pinned by this connection beyond its own struct — the
    /// quantity the connflood scenario holds under a per-idle-connection
    /// budget.
    pub fn heap_memory(&self) -> usize {
        self.assembler.memory() + self.outbound.memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_wire::encode;

    #[test]
    fn whole_frame_roundtrip() {
        let mut asm = FrameAssembler::new();
        let msg = Message::Ping { token: 42 };
        asm.ingest(&encode(&msg));
        assert_eq!(asm.next_frame().unwrap(), Some(msg));
        assert_eq!(asm.next_frame().unwrap(), None);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut asm = FrameAssembler::new();
        let msg = Message::RequestResource { path: "/r".into() };
        let bytes = encode(&msg);
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(asm.next_frame().unwrap(), None, "byte {i}");
            asm.ingest(std::slice::from_ref(b));
        }
        assert_eq!(asm.next_frame().unwrap(), Some(msg));
    }

    #[test]
    fn coalesced_frames_come_out_in_order() {
        let mut asm = FrameAssembler::new();
        let msgs = vec![
            Message::Ping { token: 1 },
            Message::RequestResource { path: "/a".into() },
            Message::Ping { token: 2 },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode(m));
        }
        asm.ingest(&stream);
        for m in &msgs {
            assert_eq!(asm.next_frame().unwrap().as_ref(), Some(m));
        }
        assert_eq!(asm.next_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected_from_header_alone() {
        let mut asm = FrameAssembler::new();
        asm.ingest(b"GET / HT"); // 8 bytes of HTTP, a classic misdial
        assert!(matches!(
            asm.next_frame(),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn stale_version_rejected_from_header_alone() {
        let mut asm = FrameAssembler::new();
        let mut bytes = encode(&Message::Ping { token: 3 });
        bytes[2] = codec::PROTOCOL_VERSION.wrapping_add(1);
        asm.ingest(&bytes[..HEADER_LEN]); // header only — no payload yet
        assert!(matches!(
            asm.next_frame(),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn oversized_declaration_rejected_before_payload() {
        let mut asm = FrameAssembler::new();
        let mut header = Vec::new();
        header.extend_from_slice(&codec::MAGIC.to_be_bytes());
        header.push(codec::PROTOCOL_VERSION);
        header.push(6); // ping
        header.extend_from_slice(&(u32::MAX).to_be_bytes());
        asm.ingest(&header);
        assert!(matches!(
            asm.next_frame(),
            Err(DecodeError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn idle_assembler_releases_large_buffers() {
        let mut asm = FrameAssembler::new();
        let big = Message::RequestResource {
            path: "x".repeat(16 * 1024),
        };
        asm.ingest(&encode(&big));
        assert!(asm.memory() > IDLE_SHRINK_BYTES);
        assert!(asm.next_frame().unwrap().is_some());
        assert_eq!(asm.memory(), 0, "large buffer must be released when idle");
        // Small traffic keeps its capacity (no realloc churn).
        asm.ingest(&encode(&Message::Ping { token: 1 }));
        assert!(asm.next_frame().unwrap().is_some());
        assert!(asm.memory() <= IDLE_SHRINK_BYTES);
    }

    #[test]
    fn write_queue_bounds_and_drains() {
        let mut q = WriteQueue::new(10);
        assert_eq!(q.push(b"hello"), QueuePush::Queued);
        assert_eq!(q.push(b"world!"), QueuePush::Overflow, "11 bytes > 10");
        assert_eq!(q.push(b"world"), QueuePush::Queued);
        assert_eq!(q.pending(), b"helloworld");
        q.consume(3);
        assert_eq!(q.pending(), b"loworld");
        // Freed room admits new bytes.
        assert_eq!(q.push(b"abc"), QueuePush::Queued);
        q.consume(q.pending_len());
        assert!(q.is_empty());
    }

    #[test]
    fn write_queue_releases_large_buffers_when_drained() {
        let mut q = WriteQueue::new(1 << 20);
        let big = vec![7u8; 64 * 1024];
        assert_eq!(q.push(&big), QueuePush::Queued);
        q.consume(big.len());
        assert_eq!(q.memory(), 0);
    }

    #[test]
    fn conn_core_idle_memory_is_zero() {
        let core = ConnCore::new("10.0.0.1".parse().unwrap(), 0, 1 << 20);
        assert_eq!(core.heap_memory(), 0, "an idle connection pins no heap");
    }
}
