//! Slab connection table with generation-tagged keys.
//!
//! The poller identifies connections by a `u64` key. Slot indices get
//! reused the moment a connection closes, so a bare index would let a
//! stale readiness event (queued by the kernel before the close) land on
//! an unrelated new connection. Keys here carry a per-slot generation in
//! the high half — `index | gen << 32` — and lookups check it, so events
//! for a dead connection miss cleanly instead of misrouting.

/// Bit offset of the generation tag inside a key.
const GEN_SHIFT: u32 = 32;

/// A slab of connections addressed by generation-tagged keys.
#[derive(Debug)]
pub struct ConnTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

impl<T> Default for ConnTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ConnTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        ConnTable {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live connections.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no connections.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a connection, returning its key.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            return key_of(index, slot.gen);
        }
        let index = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            value: Some(value),
        });
        key_of(index, 0)
    }

    /// Looks up a live connection; a stale or foreign key misses.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (index, gen) = split(key);
        let slot = self.slots.get_mut(index)?;
        if slot.gen != gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes a connection, returning it. The slot's generation bumps,
    /// invalidating any event still in flight under the old key.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (index, gen) = split(key);
        let slot = self.slots.get_mut(index)?;
        if slot.gen != gen {
            return None;
        }
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(index as u32);
        self.len -= 1;
        Some(value)
    }

    /// Visits every live connection as `(key, &mut value)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, slot)| {
            let gen = slot.gen;
            slot.value.as_mut().map(move |v| (key_of(i as u32, gen), v))
        })
    }

    /// Keys of every live connection (allocates; for shutdown sweeps).
    pub fn keys(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.value.is_some())
            .map(|(i, s)| key_of(i as u32, s.gen))
            .collect()
    }
}

fn key_of(index: u32, gen: u32) -> u64 {
    index as u64 | (gen as u64) << GEN_SHIFT
}

fn split(key: u64) -> (usize, u32) {
    ((key & u32::MAX as u64) as usize, (key >> GEN_SHIFT) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = ConnTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_mut(a), Some(&mut "a"));
        assert_eq!(t.get_mut(b), Some(&mut "b"));
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_mut(a), None);
    }

    #[test]
    fn stale_key_misses_after_slot_reuse() {
        let mut t = ConnTable::new();
        let old = t.insert("old");
        t.remove(old);
        let new = t.insert("new");
        // Same slot, different generation: the stale key must not reach
        // the new occupant.
        assert_ne!(old, new);
        assert_eq!(t.get_mut(old), None);
        assert_eq!(t.remove(old), None);
        assert_eq!(t.get_mut(new), Some(&mut "new"));
    }

    #[test]
    fn double_remove_is_none() {
        let mut t = ConnTable::new();
        let k = t.insert(1);
        assert_eq!(t.remove(k), Some(1));
        assert_eq!(t.remove(k), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iter_and_keys_see_only_live() {
        let mut t = ConnTable::new();
        let a = t.insert(10);
        let b = t.insert(20);
        let c = t.insert(30);
        t.remove(b);
        let mut seen: Vec<(u64, i32)> = t.iter_mut().map(|(k, v)| (k, *v)).collect();
        seen.sort();
        assert_eq!(seen, vec![(a, 10), (c, 30)]);
        let mut keys = t.keys();
        keys.sort();
        let mut expect = vec![a, c];
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = ConnTable::new();
        let keys: Vec<u64> = (0..100).map(|i| t.insert(i)).collect();
        for k in &keys {
            t.remove(*k);
        }
        for i in 0..100 {
            t.insert(i);
        }
        // All hundred inserts landed in recycled slots.
        assert_eq!(t.slots.len(), 100);
    }
}
