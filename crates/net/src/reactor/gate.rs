//! Accept-time admission: global and per-IP concurrent-connection caps.
//!
//! The gate is consulted once per accepted socket, before any read. A
//! rejected connection costs the server one accept, one best-effort
//! `Rejected{ServerBusy}` write, and one close — no buffers, no table
//! slot, no timer entry. That is the whole point: a connection flood
//! from one source is priced out at the door while other peers' slots
//! stay free.
//!
//! Per-IP counts live in a [`Mutex`]`<HashMap>` touched only at accept
//! and close — never per frame — so the lock is far off the request hot
//! path. The map's size is bounded by the number of *live* connections
//! (entries are removed when their count hits zero), so it cannot be
//! grown unboundedly by a connect/disconnect churn attack.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;

/// The gate's verdict on one incoming connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted; the caller owns a slot and must [`AcceptGate::release`]
    /// it on close.
    Admit,
    /// The global `max_connections` cap is full.
    MaxConnections,
    /// This source IP is at its `per_ip_connection_cap`.
    PerIpCap,
}

/// Connection-admission bookkeeping shared by acceptor and reactors.
#[derive(Debug)]
pub struct AcceptGate {
    max_connections: usize,
    /// 0 means unlimited.
    per_ip_cap: usize,
    open: Mutex<GateState>,
}

#[derive(Debug, Default)]
struct GateState {
    total: usize,
    per_ip: HashMap<IpAddr, u32>,
}

impl AcceptGate {
    /// A gate admitting at most `max_connections` total and
    /// `per_ip_cap` per source IP (`0` = no per-IP limit).
    pub fn new(max_connections: usize, per_ip_cap: usize) -> Self {
        AcceptGate {
            max_connections,
            per_ip_cap,
            open: Mutex::new(GateState::default()),
        }
    }

    /// Decides one incoming connection from `ip`. On
    /// [`AdmitDecision::Admit`] the slot is charged immediately; the
    /// caller must pair it with exactly one [`Self::release`].
    pub fn try_admit(&self, ip: IpAddr) -> AdmitDecision {
        let mut state = self.open.lock();
        if state.total >= self.max_connections {
            return AdmitDecision::MaxConnections;
        }
        if self.per_ip_cap > 0 {
            let count = state.per_ip.entry(ip).or_insert(0);
            if *count as usize >= self.per_ip_cap {
                // The entry may have been freshly inserted at zero; only
                // a zero count is garbage worth collecting.
                if *count == 0 {
                    state.per_ip.remove(&ip);
                }
                return AdmitDecision::PerIpCap;
            }
            *count += 1;
        }
        state.total += 1;
        AdmitDecision::Admit
    }

    /// Returns an admitted connection's slot. Must be called exactly
    /// once per successful [`Self::try_admit`], when the socket closes.
    pub fn release(&self, ip: IpAddr) {
        let mut state = self.open.lock();
        state.total = state.total.saturating_sub(1);
        if self.per_ip_cap > 0 {
            if let Some(count) = state.per_ip.get_mut(&ip) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    state.per_ip.remove(&ip);
                }
            }
        }
    }

    /// Currently admitted connections.
    pub fn open_connections(&self) -> usize {
        self.open.lock().total
    }

    /// Number of distinct IPs with live connections (bounds the map).
    pub fn tracked_ips(&self) -> usize {
        self.open.lock().per_ip.len()
    }

    /// The configured global cap.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// The configured per-IP cap (`0` = unlimited).
    pub fn per_ip_cap(&self) -> usize {
        self.per_ip_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        format!("10.0.0.{last}").parse().unwrap()
    }

    #[test]
    fn global_cap_enforced() {
        let gate = AcceptGate::new(2, 0);
        assert_eq!(gate.try_admit(ip(1)), AdmitDecision::Admit);
        assert_eq!(gate.try_admit(ip(2)), AdmitDecision::Admit);
        assert_eq!(gate.try_admit(ip(3)), AdmitDecision::MaxConnections);
        gate.release(ip(1));
        assert_eq!(gate.try_admit(ip(3)), AdmitDecision::Admit);
        assert_eq!(gate.open_connections(), 2);
    }

    #[test]
    fn per_ip_cap_isolates_the_flooder() {
        let gate = AcceptGate::new(100, 3);
        let flooder = ip(66);
        for _ in 0..3 {
            assert_eq!(gate.try_admit(flooder), AdmitDecision::Admit);
        }
        assert_eq!(gate.try_admit(flooder), AdmitDecision::PerIpCap);
        // A benign peer is unaffected by the flooder's saturation.
        assert_eq!(gate.try_admit(ip(1)), AdmitDecision::Admit);
        gate.release(flooder);
        assert_eq!(gate.try_admit(flooder), AdmitDecision::Admit);
    }

    #[test]
    fn per_ip_map_is_bounded_by_live_connections() {
        let gate = AcceptGate::new(10_000, 4);
        for i in 0..=255u8 {
            assert_eq!(gate.try_admit(ip(i)), AdmitDecision::Admit);
        }
        assert_eq!(gate.tracked_ips(), 256);
        for i in 0..=255u8 {
            gate.release(ip(i));
        }
        // Churn leaves nothing behind: closed IPs are evicted.
        assert_eq!(gate.tracked_ips(), 0);
        assert_eq!(gate.open_connections(), 0);
    }

    #[test]
    fn rejected_admit_charges_nothing() {
        let gate = AcceptGate::new(100, 1);
        assert_eq!(gate.try_admit(ip(9)), AdmitDecision::Admit);
        assert_eq!(gate.try_admit(ip(9)), AdmitDecision::PerIpCap);
        assert_eq!(gate.open_connections(), 1, "rejection must not count");
        // A brand-new IP probing a full gate leaves no map entry.
        let gate2 = AcceptGate::new(0, 1);
        assert_eq!(gate2.try_admit(ip(8)), AdmitDecision::MaxConnections);
        assert_eq!(gate2.tracked_ips(), 0);
    }

    #[test]
    fn zero_per_ip_cap_means_unlimited() {
        let gate = AcceptGate::new(1000, 0);
        for _ in 0..500 {
            assert_eq!(gate.try_admit(ip(1)), AdmitDecision::Admit);
        }
        assert_eq!(gate.tracked_ips(), 0, "no per-IP tracking when uncapped");
    }
}
