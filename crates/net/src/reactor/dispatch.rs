//! Frame-batch dispatch: the protocol brain, detached from any socket.
//!
//! [`dispatch_frames`] turns a batch of decoded frames from one peer
//! into replies — one per frame, in frame order — admitting consecutive
//! same-kind runs through the framework's batch paths
//! (`handle_request_batch` / `handle_solution_batch`). It is pure with
//! respect to I/O: the threaded server called it between socket reads
//! and writes, the reactor calls it from the event loop, and the netsim
//! connection-flood scenario calls it on virtual connections with no
//! sockets at all. Keeping one implementation is what makes the
//! batch-equivalence guarantees transfer verbatim to the event-driven
//! path.

use aipow_core::{FeatureSource, Framework, RateLimiter};
use aipow_pow::{Solution, SystemClock, TimeSource};
use aipow_wire::{Message, RejectCode};
use std::collections::HashMap;

/// One admissible request frame, held with its slot in the reply order
/// while a same-kind run accumulates.
struct PendingRequest {
    reply_slot: usize,
    path: String,
}

/// One solution frame, likewise.
struct PendingSolution {
    reply_slot: usize,
    solution: Solution,
    path: String,
}

/// Turns a frame batch into replies, one per frame, in order.
///
/// Consecutive `RequestResource` frames that pass the rate limiter and
/// path check are admitted through one `handle_request_batch` call;
/// consecutive `SubmitSolution` frames through one
/// `handle_solution_batch` call. Runs are flushed whenever the frame
/// kind changes, so the decision order any sequential interleaving would
/// produce is preserved exactly.
pub fn dispatch_frames(
    frames: Vec<Message>,
    peer_ip: std::net::IpAddr,
    framework: &Framework,
    features: &dyn FeatureSource,
    resources: &HashMap<String, Vec<u8>>,
    limiter: &Option<RateLimiter>,
) -> Vec<Message> {
    let mut replies: Vec<Option<Message>> = (0..frames.len()).map(|_| None).collect();
    let mut pending_requests: Vec<PendingRequest> = Vec::new();
    let mut pending_solutions: Vec<PendingSolution> = Vec::new();

    let flush_requests = |pending: &mut Vec<PendingRequest>, replies: &mut Vec<Option<Message>>| {
        if pending.is_empty() {
            return;
        }
        // One feature lookup per run: every frame in it is from this
        // connection's peer, and the batch path samples features once
        // per group by design (the batching invariant).
        let fv = features.features_for(peer_ip);
        let requests: Vec<_> = pending.iter().map(|_| (peer_ip, &fv)).collect();
        let decisions = framework.handle_request_batch(&requests);
        for (req, decision) in pending.drain(..).zip(decisions) {
            let reply = match decision {
                aipow_core::AdmissionDecision::Admit { .. } => Message::ResourceGranted {
                    body: resources[&req.path].clone(),
                    path: req.path,
                },
                aipow_core::AdmissionDecision::Challenge(issued) => Message::ChallengeIssued {
                    challenge: issued.challenge,
                    path: req.path,
                },
            };
            replies[req.reply_slot] = Some(reply);
        }
    };
    let flush_solutions = |pending: &mut Vec<PendingSolution>,
                           replies: &mut Vec<Option<Message>>| {
        if pending.is_empty() {
            return;
        }
        let submissions: Vec<(&Solution, std::net::IpAddr)> =
            pending.iter().map(|p| (&p.solution, peer_ip)).collect();
        let outcomes = framework.handle_solution_batch(&submissions);
        for (sub, outcome) in pending.drain(..).zip(outcomes) {
            let reply = match outcome {
                Ok(_token) => match resources.get(&sub.path) {
                    Some(body) => Message::ResourceGranted {
                        body: body.clone(),
                        path: sub.path,
                    },
                    None => Message::Rejected {
                        code: RejectCode::NotFound,
                        detail: sub.path,
                    },
                },
                Err(e) => Message::Rejected {
                    code: RejectCode::InvalidSolution,
                    detail: e.to_string(),
                },
            };
            replies[sub.reply_slot] = Some(reply);
        }
    };

    for (slot, msg) in frames.into_iter().enumerate() {
        match msg {
            Message::RequestResource { path } => {
                flush_solutions(&mut pending_solutions, &mut replies);
                // The limiter debits per frame, in frame order — a
                // pipelined burst draws down the bucket exactly as a
                // sequential one.
                if let Some(limiter) = limiter {
                    if !limiter.allow(peer_ip, SystemClock.now_ms()) {
                        // The behavior tap still sees the arrival: a
                        // flooder mostly dying at the limiter must not
                        // look like a light client to the online loop.
                        // Stamped with the framework's clock — the same
                        // timeline every other tap event and the sketch
                        // decay math live on. Earlier same-batch
                        // requests flush first so the sink sees events
                        // in frame order — a denied arrival must land on
                        // the sketch those requests may have just
                        // created, exactly as it would sequentially.
                        flush_requests(&mut pending_requests, &mut replies);
                        framework.metrics().rate_limited.inc();
                        if let Some(sink) = framework.behavior_sink() {
                            sink.on_rate_limited(peer_ip, framework.now_ms());
                        }
                        replies[slot] = Some(Message::Rejected {
                            code: RejectCode::RateLimited,
                            detail: "request rate exceeded".into(),
                        });
                        continue;
                    }
                }
                if !resources.contains_key(&path) {
                    replies[slot] = Some(Message::Rejected {
                        code: RejectCode::NotFound,
                        detail: path,
                    });
                    continue;
                }
                pending_requests.push(PendingRequest {
                    reply_slot: slot,
                    path,
                });
            }
            Message::SubmitSolution {
                challenge,
                nonce,
                width,
                backend,
                path,
            } => {
                flush_requests(&mut pending_requests, &mut replies);
                pending_solutions.push(PendingSolution {
                    reply_slot: slot,
                    // The backend byte is carried through verbatim; the
                    // verifier rejects ids that disagree with the
                    // challenge or name no registered backend.
                    solution: Solution {
                        challenge,
                        nonce,
                        width,
                        backend,
                    },
                    path,
                });
            }
            Message::Ping { token } => {
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                replies[slot] = Some(Message::Pong { token });
            }
            Message::Hello { version } => {
                // Flushing first keeps replies aligned with any
                // sequential interleaving, though a well-behaved client
                // sends the hello before anything else.
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                replies[slot] = Some(if version == aipow_wire::PROTOCOL_VERSION {
                    Message::Hello {
                        version: aipow_wire::PROTOCOL_VERSION,
                    }
                } else {
                    Message::Rejected {
                        code: RejectCode::ProtocolMismatch,
                        detail: format!(
                            "server speaks protocol version {}, peer sent {version}",
                            aipow_wire::PROTOCOL_VERSION
                        ),
                    }
                });
            }
            Message::TelemetryRequest => {
                // Flush both pending runs first: a snapshot taken after a
                // pipelined burst must reflect that burst's admissions,
                // exactly as a sequential interleaving would.
                flush_requests(&mut pending_requests, &mut replies);
                flush_solutions(&mut pending_solutions, &mut replies);
                let snap = framework.metrics_snapshot();
                replies[slot] = Some(Message::TelemetryReply {
                    json: aipow_core::export::snapshot_json(&snap),
                    prometheus: aipow_core::export::snapshot_prometheus(&snap),
                });
            }
            // Server-to-client message types arriving at the server.
            Message::ChallengeIssued { .. }
            | Message::ResourceGranted { .. }
            | Message::Rejected { .. }
            | Message::Pong { .. }
            | Message::TelemetryReply { .. } => {
                replies[slot] = Some(Message::Rejected {
                    code: RejectCode::Malformed,
                    detail: "unexpected message direction".into(),
                });
            }
            // Future message types (enum is non_exhaustive).
            _ => {
                replies[slot] = Some(Message::Rejected {
                    code: RejectCode::Malformed,
                    detail: "unsupported message".into(),
                });
            }
        }
    }
    flush_requests(&mut pending_requests, &mut replies);
    flush_solutions(&mut pending_solutions, &mut replies);

    replies
        .into_iter()
        .map(|reply| reply.expect("framing invariant: every parsed frame produced a reply"))
        .collect()
}
