//! Lazy deadline wheel for idle-connection reaping.
//!
//! Each connection is filed under the wheel slot of its idle deadline.
//! Activity does **not** move the entry — with 100k connections each
//! touching the wheel per request, eager reschedule would dominate. The
//! entry is instead revalidated when its slot expires: the reaper asks
//! the owner for the connection's *current* deadline, and if activity
//! pushed it forward the entry is refiled, not reaped. An entry is thus
//! visited at most once per idle-timeout window, amortised O(1).

/// A coarse-grained timer wheel keyed by `u64` connection keys.
#[derive(Debug)]
pub struct DeadlineWheel {
    slots: Vec<Vec<u64>>,
    /// Milliseconds per slot.
    granularity_ms: u64,
    /// Slot index holding deadlines at `floor(now / granularity)`.
    cursor: usize,
    /// The absolute slot number (ms / granularity) the cursor is at.
    cursor_tick: u64,
    entries: usize,
}

impl DeadlineWheel {
    /// A wheel spanning `span_ms` with `slots` buckets. Deadlines past
    /// the span fold into the furthest slot and simply revalidate once
    /// more when it comes around.
    pub fn new(span_ms: u64, slots: usize) -> Self {
        let slots = slots.max(2);
        DeadlineWheel {
            granularity_ms: (span_ms / slots as u64).max(1),
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_tick: 0,
            entries: 0,
        }
    }

    /// Number of filed entries (live plus not-yet-revalidated stale).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Files `key` under `deadline_ms`. Call once at accept and again
    /// whenever [`Self::expire`]'s callback reports a pushed-forward
    /// deadline; plain activity between expirations needs no call.
    pub fn schedule(&mut self, key: u64, deadline_ms: u64) {
        let tick = deadline_ms / self.granularity_ms;
        // A deadline at or behind the cursor would never be visited by
        // advancing; file it one slot ahead so it expires promptly.
        let tick = tick.max(self.cursor_tick + 1);
        let ahead = ((tick - self.cursor_tick) as usize).min(self.slots.len() - 1);
        let slot = (self.cursor + ahead) % self.slots.len();
        self.slots[slot].push(key);
        self.entries += 1;
    }

    /// Advances the wheel to `now_ms`, expiring every slot passed.
    ///
    /// For each filed key, `revalidate(key)` returns the connection's
    /// current deadline: `None` drops the entry (connection is gone or
    /// should be reaped — the owner decides which as a side effect), and
    /// `Some(later)` refiles it for `later`.
    pub fn expire<F: FnMut(u64) -> Option<u64>>(&mut self, now_ms: u64, mut revalidate: F) {
        let target_tick = now_ms / self.granularity_ms;
        while self.cursor_tick < target_tick {
            self.cursor_tick += 1;
            self.cursor = (self.cursor + 1) % self.slots.len();
            if self.slots[self.cursor].is_empty() {
                continue;
            }
            let due = std::mem::take(&mut self.slots[self.cursor]);
            self.entries -= due.len();
            for key in due {
                if let Some(later) = revalidate(key) {
                    self.schedule(key, later);
                }
            }
        }
    }

    /// The wheel's slot width in milliseconds (reap timing granularity).
    pub fn granularity_ms(&self) -> u64 {
        self.granularity_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn expires_at_deadline_not_before() {
        let mut w = DeadlineWheel::new(1000, 10); // 100ms slots
        w.schedule(1, 500);
        let mut reaped = Vec::new();
        w.expire(400, |k| {
            reaped.push(k);
            None
        });
        assert!(reaped.is_empty(), "deadline not reached");
        w.expire(700, |k| {
            reaped.push(k);
            None
        });
        assert_eq!(reaped, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn activity_refiles_instead_of_reaping() {
        let mut w = DeadlineWheel::new(1000, 10);
        w.schedule(7, 300);
        // The connection was active at t=250; its real deadline moved to
        // 250 + idle_timeout. Revalidation reports that, no reap.
        let mut deadlines: HashMap<u64, u64> = [(7u64, 1250u64)].into();
        let mut reaped = Vec::new();
        w.expire(400, |k| deadlines.get(&k).copied());
        assert!(reaped.is_empty());
        assert_eq!(w.len(), 1, "refiled, not dropped");
        // Now let the pushed deadline lapse.
        deadlines.clear();
        w.expire(1400, |k| {
            reaped.push(k);
            deadlines.get(&k).copied()
        });
        assert_eq!(reaped, vec![7]);
    }

    #[test]
    fn past_deadline_expires_on_next_advance() {
        let mut w = DeadlineWheel::new(1000, 10);
        w.expire(5000, |_| None); // move cursor well forward
        w.schedule(3, 100); // already in the past
        let mut reaped = Vec::new();
        w.expire(5200, |k| {
            reaped.push(k);
            None
        });
        assert_eq!(reaped, vec![3]);
    }

    #[test]
    fn far_future_deadline_folds_and_survives_revalidation() {
        let mut w = DeadlineWheel::new(1000, 4);
        w.schedule(9, 60_000); // far beyond the wheel span
        let mut reaped = Vec::new();
        // Sweeping the whole span revisits the folded entry, whose true
        // deadline is still ahead — it must refile, not reap.
        w.expire(2000, |k| if k == 9 { Some(60_000) } else { None });
        w.expire(4000, |k| if k == 9 { Some(60_000) } else { None });
        assert_eq!(w.len(), 1);
        w.expire(61_000, |k| {
            reaped.push(k);
            None
        });
        assert_eq!(reaped, vec![9]);
    }

    #[test]
    fn many_entries_single_sweep() {
        let mut w = DeadlineWheel::new(30_000, 64);
        for k in 0..10_000u64 {
            w.schedule(k, 10_000 + (k % 100));
        }
        let mut reaped = 0usize;
        w.expire(31_000, |_| {
            reaped += 1;
            None
        });
        assert_eq!(reaped, 10_000);
        assert!(w.is_empty());
    }
}
