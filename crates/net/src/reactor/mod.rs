//! The event-driven connection engine behind [`PowServer`](crate::PowServer).
//!
//! One readiness loop per shard serves every connection the shard owns:
//! nonblocking accept feeds a generation-keyed [`ConnTable`]; per-
//! connection [`FrameAssembler`]s accumulate bytes into frames that the
//! batch [`dispatch_frames`] path answers; replies drain through bounded
//! [`WriteQueue`]s with writable-interest re-registration for
//! backpressure; a lazy [`DeadlineWheel`] reaps idle peers; and an
//! [`AcceptGate`] prices connection floods out at the accept call, before
//! they cost a buffer or a table slot. The previous thread-per-connection
//! design pinned one OS thread (~8 MiB of stack address space and a
//! scheduler entry) per concurrent peer; here a peer at rest costs a
//! table slot and an empty buffer pair — the difference between serving
//! hundreds and serving 100k+ concurrent connections.
//!
//! Every component except the event loop itself is fd-agnostic, and the
//! loop is a thin shell over them. That split is load-bearing: the
//! `connflood` netsim scenario drives the same table/assembler/
//! queue/gate/wheel machinery with 100k *virtual* connections (no
//! sockets), proving the per-connection costs at a scale the test host's
//! descriptor limit cannot reach, while the TCP tests pin the shell to
//! real kernel readiness semantics at smaller scale.
//!
//! **No blocking syscalls in the event loop.** Every socket is
//! nonblocking; the only place a reactor thread parks is
//! [`Poller::wait`]. A blocking read, write, accept, or sleep here would
//! stall every connection the shard owns — `aipow-analyze` lints this
//! module's files for exactly that.

pub mod conn;
pub mod dispatch;
pub mod gate;
pub mod table;
pub mod wheel;

pub use conn::{ConnCore, FrameAssembler, QueuePush, WriteQueue};
pub use dispatch::dispatch_frames;
pub use gate::{AcceptGate, AdmitDecision};
pub use table::ConnTable;
pub use wheel::DeadlineWheel;

use aipow_core::{FeatureSource, Framework, RateLimiter};
use aipow_wire::{DecodeError, Message, RejectCode};
use polling::{Event, Interest, Poller};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller key of the listening socket (shard 0 only). Connection keys
/// carry their slab index in the low half, so they stay far below this.
const LISTENER_KEY: u64 = u64::MAX - 1;

/// Bytes read per `read` call on a ready connection.
const READ_CHUNK: usize = 16 * 1024;

/// Ceiling on bytes drained from one connection per readiness event.
/// Level-triggered polling re-reports the remainder on the next wakeup,
/// so the cap costs nothing in throughput; without it one firehose peer
/// could monopolize a wakeup while 10k ready peers wait.
const READ_BUDGET: usize = 256 * 1024;

/// Hard ceiling on bytes a connection's assembler may hold after frame
/// draining. A legitimate leftover is at most one partial frame — the
/// 8-byte header plus a payload the header already bounded at
/// [`aipow_wire::MAX_PAYLOAD_LEN`] — so exceeding this means per-peer
/// memory is being evaded and the connection is cut.
const ASSEMBLER_BACKLOG_CAP: usize = aipow_wire::MAX_PAYLOAD_LEN + 64;

/// Initial nap after an `accept()` error.
pub(crate) const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(2);
/// Ceiling on the accept-error backoff: long enough that a persistent
/// EMFILE costs ~2 listener re-arms per second instead of a hot loop,
/// short enough that recovery (descriptors freed) is noticed promptly.
pub(crate) const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Doubles the accept-error backoff, capped at [`ACCEPT_BACKOFF_CAP`].
pub(crate) fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_CAP)
}

/// Everything the shards share: the protocol context and the admission
/// gate. One instance per server, behind an [`Arc`].
pub(crate) struct ReactorShared {
    pub framework: Arc<Framework>,
    pub features: Arc<dyn FeatureSource>,
    pub resources: Arc<HashMap<String, Vec<u8>>>,
    pub limiter: Arc<Option<RateLimiter>>,
    pub gate: Arc<AcceptGate>,
    pub shutdown: Arc<AtomicBool>,
    pub max_batch: usize,
    /// Idle reap deadline; `Duration::ZERO` disables reaping.
    pub idle_timeout: Duration,
    /// Per-connection outbound queue bound in bytes.
    pub outbound_limit: usize,
    /// One clock epoch for all shards; wheel and idle math use
    /// milliseconds since this instant.
    pub epoch: Instant,
}

/// A running reactor: the shard threads and their wakeup handles.
pub(crate) struct ReactorHandle {
    pub pollers: Vec<Arc<Poller>>,
    pub threads: Vec<JoinHandle<()>>,
}

/// A shard's inbox for connections accepted on shard 0.
struct Mailbox {
    tx: Sender<(TcpStream, IpAddr)>,
    poller: Arc<Poller>,
}

/// Spawns `shard_count` reactor threads; shard 0 owns `listener` and
/// round-robins admitted connections across all shards.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    shared: Arc<ReactorShared>,
    shard_count: usize,
) -> io::Result<ReactorHandle> {
    let shard_count = shard_count.max(1);
    let mut pollers = Vec::with_capacity(shard_count);
    let mut mailboxes = Vec::with_capacity(shard_count);
    let mut receivers = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let poller = Arc::new(Poller::new()?);
        let (tx, rx) = channel();
        mailboxes.push(Mailbox {
            tx,
            poller: Arc::clone(&poller),
        });
        pollers.push(poller);
        receivers.push(rx);
    }
    listener.set_nonblocking(true)?;
    let mut threads = Vec::with_capacity(shard_count);
    let mut listener = Some(listener);
    let mut mailboxes = Some(mailboxes);
    for (index, rx) in receivers.into_iter().enumerate() {
        let shard = Shard {
            index,
            poller: Arc::clone(&pollers[index]),
            rx,
            listener: if index == 0 { listener.take() } else { None },
            peers: if index == 0 {
                mailboxes.take().unwrap_or_default()
            } else {
                Vec::new()
            },
            shared: Arc::clone(&shared),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("aipow-reactor-{index}"))
                .spawn(move || shard.run())?,
        );
    }
    Ok(ReactorHandle { pollers, threads })
}

/// One connection as the event loop sees it: the socket plus the
/// fd-agnostic core, and the interest currently registered for it.
struct Connection {
    stream: TcpStream,
    core: ConnCore,
    interest: Interest,
}

/// What servicing a connection decided.
#[derive(PartialEq)]
enum Fate {
    /// Still live.
    Keep,
    /// Remove, deregister, release its gate slot.
    Close,
}

/// One reactor shard: poller, connection table, deadline wheel, and (on
/// shard 0) the listener plus the handoff mailboxes of every shard.
struct Shard {
    index: usize,
    poller: Arc<Poller>,
    rx: Receiver<(TcpStream, IpAddr)>,
    listener: Option<TcpListener>,
    peers: Vec<Mailbox>,
    shared: Arc<ReactorShared>,
}

impl Shard {
    fn now_ms(&self) -> u64 {
        self.shared.epoch.elapsed().as_millis() as u64
    }

    fn idle_ms(&self) -> u64 {
        self.shared.idle_timeout.as_millis() as u64
    }

    fn run(self) {
        let shared = Arc::clone(&self.shared);
        let metrics = shared.framework.metrics();
        let mut table: ConnTable<Connection> = ConnTable::new();
        // Wheel span ~ the idle timeout over 64 buckets: one revisit per
        // entry per timeout window, reap timing accurate to span/64.
        let mut wheel = DeadlineWheel::new(self.idle_ms().max(1_000), 64);
        let mut events: Vec<Event> = Vec::new();
        let mut rr = 0usize; // round-robin cursor over shards (shard 0)
        let mut accept_backoff = ACCEPT_BACKOFF_FLOOR;
        // While parked (after accept errors), the listener is out of the
        // poller; re-armed once this deadline passes.
        let mut parked_until: Option<u64> = None;

        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)
                .is_err()
            {
                // Without a listener registration shard 0 can never
                // accept; there is nothing useful to do but exit (start
                // already validated the fds, so this is unreachable in
                // practice).
                return;
            }
        }

        loop {
            // Cap the sleep at the wheel granularity so reaping stays on
            // schedule (a flat 250ms when reaping is disabled — no point
            // ticking an idle wheel), and shorter while a parked listener
            // waits to re-arm. notify() cuts all of this short for
            // shutdown and handoffs.
            let mut timeout = if self.idle_ms() > 0 {
                wheel.granularity_ms().min(250)
            } else {
                250
            };
            if let Some(until) = parked_until {
                timeout = timeout.min(until.saturating_sub(self.now_ms()).max(1));
            }
            // wait() appends; without the clear, every past event would
            // be re-serviced on every wakeup and the Vec would grow for
            // the life of the shard.
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(timeout)));
            metrics.reactor_wakeups.inc();
            metrics.reactor_ready_events.add(events.len() as u64);

            // Acquire: pairs with the Release store in shutdown.
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }

            let now = self.now_ms();

            // Re-arm a parked listener once its backoff lapses. Un-park
            // only after the registration lands: a failed add with
            // parked_until cleared would never be retried, and the
            // server would silently stop accepting forever.
            if let Some(until) = parked_until {
                if now >= until {
                    let rearmed = match &self.listener {
                        Some(listener) => self
                            .poller
                            .add(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)
                            .is_ok(),
                        None => true,
                    };
                    if rearmed {
                        parked_until = None;
                        metrics.accept_backoff_ms.set(0);
                    } else {
                        metrics.accept_errors.inc();
                        metrics
                            .accept_backoff_ms
                            .set(accept_backoff.as_millis() as i64);
                        parked_until = Some(now + accept_backoff.as_millis() as u64);
                        accept_backoff = next_accept_backoff(accept_backoff);
                    }
                }
            }

            // Connections handed off by shard 0.
            while let Ok((stream, ip)) = self.rx.try_recv() {
                self.register(&mut table, &mut wheel, stream, ip, now);
            }

            for &ev in &events {
                if ev.key == LISTENER_KEY {
                    if parked_until.is_none() {
                        self.accept_ready(
                            &mut table,
                            &mut wheel,
                            &mut rr,
                            &mut accept_backoff,
                            &mut parked_until,
                            now,
                        );
                    }
                } else {
                    self.service(&mut table, ev, now);
                }
            }

            // Reap idle connections: entries revalidate lazily, so an
            // active connection just refiles for its pushed-forward
            // deadline.
            if self.idle_ms() > 0 {
                let idle_ms = self.idle_ms();
                let poller = &self.poller;
                let gate = &shared.gate;
                wheel.expire(now, |key| {
                    let conn = table.get_mut(key)?;
                    let deadline = conn.core.last_activity_ms + idle_ms;
                    if now < deadline {
                        return Some(deadline);
                    }
                    if let Some(conn) = table.remove(key) {
                        let _ = poller.delete(conn.stream.as_raw_fd());
                        gate.release(conn.core.peer_ip);
                        metrics.reaped_idle.inc();
                        metrics.open_connections.set(gate.open_connections() as i64);
                    }
                    None
                });
            }
        }

        // Shutdown: every live connection closes and returns its slot.
        for key in table.keys() {
            self.close(&mut table, key);
        }
    }

    /// Accepts until `WouldBlock`, pricing floods out at the gate.
    fn accept_ready(
        &self,
        table: &mut ConnTable<Connection>,
        wheel: &mut DeadlineWheel,
        rr: &mut usize,
        backoff: &mut Duration,
        parked_until: &mut Option<u64>,
        now: u64,
    ) {
        let metrics = self.shared.framework.metrics();
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, addr)) => {
                    *backoff = ACCEPT_BACKOFF_FLOOR;
                    let ip = addr.ip();
                    match self.shared.gate.try_admit(ip) {
                        AdmitDecision::Admit => {
                            metrics.accepted_total.inc();
                            metrics
                                .open_connections
                                .set(self.shared.gate.open_connections() as i64);
                            self.place(table, wheel, rr, stream, ip, now);
                        }
                        AdmitDecision::MaxConnections => {
                            metrics.max_conn_rejections.inc();
                            reject_busy(stream);
                        }
                        AdmitDecision::PerIpCap => {
                            metrics.per_ip_cap_rejections.inc();
                            reject_busy(stream);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // EMFILE and kin report on *every* accept; with a
                    // level-triggered poller that is a hot spin. Park:
                    // pull the listener out of the poller and re-arm
                    // after an exponential backoff, surfacing the
                    // condition in telemetry either way.
                    metrics.accept_errors.inc();
                    metrics.accept_backoff_ms.set(backoff.as_millis() as i64);
                    let _ = self.poller.delete(listener.as_raw_fd());
                    *parked_until = Some(now + backoff.as_millis() as u64);
                    *backoff = next_accept_backoff(*backoff);
                    return;
                }
            }
        }
    }

    /// Routes one admitted connection: round-robin to a peer shard, or
    /// into this shard's own table.
    fn place(
        &self,
        table: &mut ConnTable<Connection>,
        wheel: &mut DeadlineWheel,
        rr: &mut usize,
        stream: TcpStream,
        ip: IpAddr,
        now: u64,
    ) {
        let shards = self.peers.len().max(1);
        let target = *rr % shards;
        *rr = (*rr + 1) % shards;
        if target == self.index {
            self.register(table, wheel, stream, ip, now);
            return;
        }
        let mailbox = &self.peers[target];
        if mailbox.tx.send((stream, ip)).is_ok() {
            let _ = mailbox.poller.notify();
        } else {
            // The shard is gone (only happens mid-shutdown); the stream
            // drops here and the slot frees.
            self.shared.gate.release(ip);
        }
    }

    /// Installs an admitted connection into this shard.
    fn register(
        &self,
        table: &mut ConnTable<Connection>,
        wheel: &mut DeadlineWheel,
        stream: TcpStream,
        ip: IpAddr,
        now: u64,
    ) {
        let metrics = self.shared.framework.metrics();
        if stream.set_nonblocking(true).is_err() {
            self.shared.gate.release(ip);
            metrics
                .open_connections
                .set(self.shared.gate.open_connections() as i64);
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let key = table.insert(Connection {
            stream,
            core: ConnCore::new(ip, now, self.shared.outbound_limit),
            interest: Interest::READABLE,
        });
        if self.poller.add(fd, key, Interest::READABLE).is_err() {
            table.remove(key);
            self.shared.gate.release(ip);
            metrics
                .open_connections
                .set(self.shared.gate.open_connections() as i64);
            return;
        }
        if self.idle_ms() > 0 {
            wheel.schedule(key, now + self.idle_ms());
        }
    }

    /// Services one connection readiness event.
    fn service(&self, table: &mut ConnTable<Connection>, ev: Event, now: u64) {
        let Some(conn) = table.get_mut(ev.key) else {
            // Stale: the connection closed while this event was in
            // flight, and the generation tag kept it from misrouting.
            return;
        };
        let mut fate = Fate::Keep;
        if ev.readable || ev.hangup {
            // A hangup is serviced through the same read path: read()
            // returns 0 (or an error), which marks the connection
            // closing after any buffered frames are answered.
            fate = self.service_readable(conn, now);
        }
        if fate == Fate::Keep {
            fate = self.service_writable(conn, ev.key);
        }
        if fate == Fate::Close {
            self.close(table, ev.key);
        }
    }

    /// Drains readable bytes (bounded), assembles frames, dispatches
    /// them in `max_batch` groups, and queues the replies.
    fn service_readable(&self, conn: &mut Connection, now: u64) -> Fate {
        if conn.core.closing {
            // Condemned (malformed frame, overflow): the peer is owed
            // nothing but the pending rejection flush. Buffering its
            // bytes — or letting them count as activity that defers the
            // idle reaper — would hand a garbage-streaming peer
            // line-rate memory growth. Discard instead.
            return self.drain_condemned(conn);
        }
        let metrics = self.shared.framework.metrics();
        let mut budget = READ_BUDGET;
        let mut saw_eof = false;
        let mut buf = [0u8; READ_CHUNK];
        while budget > 0 {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.core.assembler.ingest(&buf[..n]);
                    conn.core.last_activity_ms = now;
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }

        loop {
            let mut frames = Vec::new();
            let mut decode_err: Option<DecodeError> = None;
            while frames.len() < self.shared.max_batch {
                match conn.core.assembler.next_frame() {
                    Ok(Some(msg)) => frames.push(msg),
                    Ok(None) => break,
                    Err(e) => {
                        decode_err = Some(e);
                        break;
                    }
                }
            }
            let batch_full = frames.len() >= self.shared.max_batch;
            if !frames.is_empty() {
                let replies = dispatch_frames(
                    frames,
                    conn.core.peer_ip,
                    &self.shared.framework,
                    &*self.shared.features,
                    &self.shared.resources,
                    &self.shared.limiter,
                );
                for reply in replies {
                    if conn.core.outbound.push(&aipow_wire::encode(&reply)) == QueuePush::Overflow {
                        // The peer is not reading its replies; holding
                        // more memory for it is exactly what a
                        // slow-reader flood wants.
                        metrics.outbound_overflow_closes.inc();
                        return Fate::Close;
                    }
                }
            }
            if let Some(e) = decode_err {
                // The stream offset is unrecoverable past a malformed
                // frame: answer what parsed, send the typed rejection,
                // flush, close. An old-version peer gets the actionable
                // ProtocolMismatch, garbage gets Malformed.
                let code = match e {
                    DecodeError::UnsupportedVersion { .. } => RejectCode::ProtocolMismatch,
                    _ => RejectCode::Malformed,
                };
                let _ = conn
                    .core
                    .outbound
                    .push(&aipow_wire::encode(&Message::Rejected {
                        code,
                        detail: e.to_string(),
                    }));
                conn.core.closing = true;
                break;
            }
            if !batch_full {
                break;
            }
        }

        if saw_eof {
            conn.core.closing = true;
        }
        // Invariant backstop: after draining, at most one partial frame
        // (header + a payload the header already bounded) may remain
        // buffered. Anything larger means the bound was evaded; cut the
        // connection rather than let it hold memory.
        if conn.core.assembler.buffered() > ASSEMBLER_BACKLOG_CAP {
            return Fate::Close;
        }
        Fate::Keep
    }

    /// Services readable readiness on a condemned connection: bytes are
    /// read and dropped (never buffered, never counted as activity), so
    /// the pending rejection can still flush while a hostile peer's
    /// stream costs the server nothing but the recv itself.
    fn drain_condemned(&self, conn: &mut Connection) -> Fate {
        let mut budget = READ_BUDGET;
        let mut buf = [0u8; READ_CHUNK];
        while budget > 0 {
            match conn.stream.read(&mut buf) {
                // EOF or a hard error: nobody is left to read the
                // rejection; close now instead of waiting on the flush.
                Ok(0) => return Fate::Close,
                Ok(n) => budget = budget.saturating_sub(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        Fate::Keep
    }

    /// Flushes the outbound queue; arms or disarms writable interest so
    /// backpressure is carried by the poller, not by blocking.
    fn service_writable(&self, conn: &mut Connection, key: u64) -> Fate {
        while !conn.core.outbound.is_empty() {
            match conn.stream.write(conn.core.outbound.pending()) {
                Ok(0) => return Fate::Close,
                Ok(n) => conn.core.outbound.consume(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.interest.writable {
                        if self
                            .poller
                            .modify(conn.stream.as_raw_fd(), key, Interest::BOTH)
                            .is_err()
                        {
                            return Fate::Close;
                        }
                        conn.interest = Interest::BOTH;
                    }
                    return Fate::Keep;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if conn.core.closing {
            return Fate::Close;
        }
        if conn.interest.writable {
            // Drained: drop writable interest or a level-triggered
            // poller would report this connection on every wakeup.
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), key, Interest::READABLE)
                .is_err()
            {
                return Fate::Close;
            }
            conn.interest = Interest::READABLE;
        }
        Fate::Keep
    }

    /// Removes a connection: table slot, poller registration, gate slot.
    fn close(&self, table: &mut ConnTable<Connection>, key: u64) {
        let metrics = self.shared.framework.metrics();
        if let Some(conn) = table.remove(key) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.shared.gate.release(conn.core.peer_ip);
            metrics
                .open_connections
                .set(self.shared.gate.open_connections() as i64);
        }
    }
}

/// Best-effort typed refusal for a connection the gate rejected: one
/// nonblocking write of `Rejected{ServerBusy}`, then the socket drops.
/// A fresh socket's send buffer is empty, so the write virtually always
/// lands; if it cannot, the peer simply sees the close — the accept path
/// must never block on a peer the server is refusing to serve.
fn reject_busy(stream: TcpStream) {
    let mut stream = stream;
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let frame = aipow_wire::encode(&Message::Rejected {
        code: RejectCode::ServerBusy,
        detail: "server at connection capacity".into(),
    });
    let _ = stream.write(&frame);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_and_caps() {
        let mut backoff = ACCEPT_BACKOFF_FLOOR;
        let mut total = Duration::ZERO;
        for _ in 0..20 {
            total += backoff;
            backoff = next_accept_backoff(backoff);
        }
        assert_eq!(backoff, ACCEPT_BACKOFF_CAP);
        // 20 consecutive failures park the listener for seconds, not a
        // poll-frequency spin: the first few double (2,4,8,...) then
        // plateau at the cap.
        assert!(total >= Duration::from_secs(5));
        assert!(next_accept_backoff(ACCEPT_BACKOFF_CAP) == ACCEPT_BACKOFF_CAP);
    }

    #[test]
    fn listener_key_clears_reserved_and_conn_space() {
        const { assert!(LISTENER_KEY < polling::RESERVED_KEY) }
        // Connection keys are `index | gen << 32`. With any reachable
        // slab (the table grows one slot per concurrent connection, so
        // index stays below max_connections) the generation would need
        // to wrap the full u32 on the topmost slot to graze the
        // listener key — out of range for any real process lifetime.
        let reachable = 1_000_000u64 | ((u32::MAX as u64) << 32);
        assert!(reachable < LISTENER_KEY);
    }
}
