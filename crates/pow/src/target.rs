//! Fractional difficulty via threshold targets (extension).
//!
//! Integer leading-zero-bit difficulties quantize work in powers of two:
//! the gap between `d` and `d+1` is a full 2× in expected latency. Policies
//! that want finer control (e.g. a continuous variant of the paper's
//! Policy 3 error-range mapping) can express work as a *target*: a solution
//! qualifies if the first 64 bits of its digest, read as a big-endian
//! integer, are `<=` the target. This generalizes zero-bit prefixes —
//! difficulty `d` corresponds to target `2^(64-d) - 1` — and supports any
//! real-valued difficulty in `[0, 64)`.

use crate::difficulty::Difficulty;
use aipow_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};

/// A 64-bit qualification threshold for digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Target(u64);

impl Target {
    /// The easiest target: every digest qualifies.
    pub const EASIEST: Target = Target(u64::MAX);

    /// Creates a target from a raw threshold.
    pub fn from_raw(threshold: u64) -> Self {
        Target(threshold)
    }

    /// The raw threshold value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Target equivalent to an integer bit difficulty: `2^(64-d) - 1`.
    ///
    /// ```
    /// use aipow_pow::{Difficulty, Target};
    /// let t = Target::from_difficulty(Difficulty::new(1).unwrap());
    /// assert_eq!(t.raw(), u64::MAX / 2);
    /// ```
    pub fn from_difficulty(d: Difficulty) -> Self {
        let bits = d.bits() as u32;
        if bits == 0 {
            Target::EASIEST
        } else if bits >= 64 {
            Target(0)
        } else {
            Target((1u64 << (64 - bits)) - 1)
        }
    }

    /// Target for a real-valued difficulty `d ∈ [0, 64)`: expected attempts
    /// `2^d`, i.e. threshold `2^64 / 2^d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative, NaN, or ≥ 64.
    pub fn from_difficulty_f64(d: f64) -> Self {
        assert!(
            d.is_finite() && (0.0..64.0).contains(&d),
            "fractional difficulty {d} outside [0, 64)"
        );
        // 2^64 / 2^d = 2^(64-d); compute in f64 then clamp into u64.
        let threshold = (64.0 - d).exp2();
        if threshold >= u64::MAX as f64 {
            Target::EASIEST
        } else {
            Target(threshold as u64)
        }
    }

    /// Whether `digest` satisfies this target.
    pub fn is_met_by(&self, digest: &Digest) -> bool {
        digest.prefix_u64() <= self.0
    }

    /// Expected number of uniformly random digests needed to qualify:
    /// `2^64 / (target + 1)`.
    pub fn expected_attempts(&self) -> f64 {
        (u64::MAX as f64 + 1.0) / (self.0 as f64 + 1.0)
    }

    /// The real-valued difficulty this target encodes:
    /// `log2(expected_attempts)`.
    pub fn difficulty_f64(&self) -> f64 {
        self.expected_attempts().log2()
    }
}

impl From<Difficulty> for Target {
    fn from(d: Difficulty) -> Self {
        Target::from_difficulty(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_crypto::sha256::Sha256;

    #[test]
    fn zero_difficulty_accepts_everything() {
        let t = Target::from_difficulty(Difficulty::ZERO);
        for input in [&b"a"[..], b"b", b"c"] {
            assert!(t.is_met_by(&Sha256::digest(input)));
        }
    }

    #[test]
    fn integer_difficulty_equivalence() {
        // A digest meets bit-difficulty d iff it meets the derived target.
        for d in 0u8..=16 {
            let t = Target::from_difficulty(Difficulty::new(d).unwrap());
            for i in 0u32..200 {
                let digest = Sha256::digest(&i.to_be_bytes());
                let by_bits = digest.leading_zero_bits() >= d as u32;
                assert_eq!(t.is_met_by(&digest), by_bits, "d={d} i={i} digest={digest}");
            }
        }
    }

    #[test]
    fn expected_attempts_matches_difficulty() {
        let t = Target::from_difficulty(Difficulty::new(10).unwrap());
        assert!((t.expected_attempts() - 1024.0).abs() / 1024.0 < 1e-9);
        assert!((t.difficulty_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_difficulties_interpolate() {
        let t_low = Target::from_difficulty_f64(5.0);
        let t_mid = Target::from_difficulty_f64(5.5);
        let t_high = Target::from_difficulty_f64(6.0);
        assert!(t_low.raw() > t_mid.raw());
        assert!(t_mid.raw() > t_high.raw());
        let e = t_mid.expected_attempts();
        assert!((e - 32.0 * 2f64.sqrt()).abs() / e < 1e-6, "e={e}");
    }

    #[test]
    fn fractional_zero_is_easiest() {
        assert_eq!(Target::from_difficulty_f64(0.0), Target::EASIEST);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fractional_out_of_range_panics() {
        Target::from_difficulty_f64(64.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fractional_negative_panics() {
        Target::from_difficulty_f64(-1.0);
    }

    #[test]
    fn max_bits_target_is_zero() {
        let t = Target::from_difficulty(Difficulty::new(64).unwrap());
        assert_eq!(t.raw(), 0);
    }

    #[test]
    fn roundtrip_difficulty_f64() {
        for d in [0.5f64, 1.0, 7.3, 15.9, 31.0] {
            let t = Target::from_difficulty_f64(d);
            assert!((t.difficulty_f64() - d).abs() < 0.01, "d={d}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Monotonicity: higher fractional difficulty ⇒ lower target ⇒
            /// never accepts a digest the lower difficulty rejects.
            #[test]
            fn monotone(d1 in 0.0f64..60.0, d2 in 0.0f64..60.0, input in any::<u64>()) {
                let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
                let t_lo = Target::from_difficulty_f64(lo);
                let t_hi = Target::from_difficulty_f64(hi);
                prop_assert!(t_lo.raw() >= t_hi.raw());
                let digest = Sha256::digest(&input.to_be_bytes());
                if t_hi.is_met_by(&digest) {
                    prop_assert!(t_lo.is_met_by(&digest));
                }
            }
        }
    }
}
