//! Hashcash-style proof-of-work puzzles (paper §II.3–§II.5).
//!
//! This crate implements the three PoW roles of the framework:
//!
//! - the **issuer** ([`Issuer`]) generates a *d-difficult* puzzle from
//!   request data — a fresh 128-bit seed (mitigating pre-computation
//!   attacks), a timestamp, and the difficulty chosen by the policy module —
//!   and authenticates the bundle with HMAC so verification stays stateless;
//! - the **solver** ([`solver`]) concatenates the challenge data with the
//!   client's IP address, appends a nonce, and evaluates the puzzle's work
//!   function until the digest carries at least `d` leading zero **bits**;
//! - the **verifier** ([`Verifier`]) is the lightweight block: one HMAC, one
//!   work-function evaluation, an expiry window, and a replay guard.
//!
//! The work function itself is pluggable behind the [`backend`] seam: every
//! challenge names a [`PuzzleBackend`] by id ([`BackendId`]), and two ship —
//! the paper's SHA-256 preimage puzzle (default) and a memory-hard
//! fill/mix puzzle whose per-attempt cost serializes on memory latency.
//!
//! # Example
//!
//! ```
//! use aipow_pow::{Difficulty, Issuer, Verifier, solver};
//! use std::net::{IpAddr, Ipv4Addr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let key = [7u8; 32];
//! let issuer = Issuer::new(&key);
//! let verifier = Verifier::new(&key);
//! let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 7));
//!
//! let challenge = issuer.issue(ip, Difficulty::new(8)?);
//! let report = solver::solve(&challenge, ip, &solver::SolverOptions::default())?;
//! let token = verifier.verify(&report.solution, ip)?;
//! assert_eq!(token.difficulty, challenge.difficulty());
//! # Ok(())
//! # }
//! ```
//!
//! # Difficulty semantics
//!
//! “A *d-difficult* puzzle” requires a digest with `d` leading zero bits,
//! i.e. an expected `2^d` hash evaluations. The paper's evaluation reaches
//! difficulty 15 (Policy 2 at reputation 10) with sub-second latency, which
//! is only consistent with zero *bits*, not zero hex digits — see DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod challenge;
pub mod difficulty;
pub mod issuer;
pub mod replay;
pub mod solver;
pub mod stamp;
pub mod target;
pub mod time;
pub mod verifier;

pub use backend::{
    BackendId, BackendRegistry, MemoryHardBackend, PuzzleBackend, Sha256Backend, SolveCursor,
};
pub use challenge::{Challenge, NonceWidth, Solution};
pub use difficulty::Difficulty;
pub use issuer::Issuer;
pub use replay::ReplayGuard;
pub use solver::{SolveReport, SolverOptions};
pub use target::Target;
pub use time::{ManualClock, SystemClock, TimeSource};
pub use verifier::{PreparedVerify, VerifiedToken, Verifier, VerifyError};
