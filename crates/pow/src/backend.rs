//! The pluggable puzzle-backend seam.
//!
//! The paper treats the puzzle as a fixed primitive (a SHA-256 preimage
//! search); this module lifts it into a trait so the policy layer gains a
//! second, qualitatively different lever beyond difficulty: *which* puzzle a
//! client must solve. A [`PuzzleBackend`] owns the work function end to end —
//! challenge binding (its [`BackendId`] and size parameter are minted into
//! the challenge and covered by the issuer's MAC, so a client cannot
//! downgrade to a cheaper puzzle), the solve step (via [`SolveCursor`], which
//! lets each backend amortize per-challenge state the way the SHA-256 path
//! amortizes its midstate), and the batched verify hook (so the SHA-256
//! backend keeps the lane-interleaved fast path from DESIGN.md §12).
//!
//! Two backends ship:
//!
//! - [`Sha256Backend`] — the paper's puzzle, byte-for-byte the work function
//!   the framework has always used (id 0, the default everywhere);
//! - [`MemoryHardBackend`] — an Argon2-style fill/mix walk over a
//!   configurable-MiB arena ([`aipow_crypto::memmix`]): per-attempt cost is
//!   an order of magnitude above one SHA-256 compression and serializes on
//!   memory latency, while a verifier pays one walk per solution *and*
//!   lane-interleaves a batch of independent walks through the wide kernel.
//!
//! Backends resolve through a [`BackendRegistry`]; the process-wide
//! [`BackendRegistry::global`] carries both standard backends, and unknown
//! ids fail closed at verification
//! ([`VerifyError::UnknownBackend`](crate::VerifyError)).

use aipow_crypto::memmix::{self, Arena};
use aipow_crypto::sha256::{Digest, Sha256};
use aipow_crypto::sha256_wide;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Identifies a puzzle backend on challenges, solutions, stamps, and wire
/// frames.
///
/// The id space is open — any byte decodes — so an unknown id is rejected by
/// the verifier (a typed error), never by the codec (a parse failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BackendId(pub u8);

impl BackendId {
    /// The SHA-256 preimage puzzle (the paper's work function; default).
    pub const SHA256: BackendId = BackendId(0);
    /// The memory-hard fill/mix puzzle.
    pub const MEMORY_HARD: BackendId = BackendId(1);

    /// The raw id byte.
    pub fn as_u8(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BackendId::SHA256 => write!(f, "sha256"),
            BackendId::MEMORY_HARD => write!(f, "memory-hard"),
            BackendId(other) => write!(f, "backend#{other}"),
        }
    }
}

/// Per-challenge solve state: produced once per challenge by
/// [`PuzzleBackend::solve_cursor`], then asked for one digest per nonce.
///
/// This is the seam through which each backend amortizes fixed per-challenge
/// work across the ~2^d attempts of a solve run — the SHA-256 cursor holds
/// the absorbed-prefix midstate, the memory-hard cursor holds its arena
/// handle and prefix.
pub trait SolveCursor {
    /// Digest of `prefix ‖ nonce_bytes` for the prepared challenge — exactly
    /// what the verifier recomputes for a submitted solution.
    fn attempt(&mut self, nonce_bytes: &[u8]) -> Digest;
}

/// A puzzle work function, pluggable behind the issuer, solver, and verifier.
///
/// Implementations must be pure in `(param, preimage)`: prover and verifier
/// run the same code on the same bytes, so any hidden state would fork them.
pub trait PuzzleBackend: Send + Sync + fmt::Debug {
    /// The id minted into challenges solved with this backend.
    fn id(&self) -> BackendId;

    /// Human-readable backend name (CLI flags, logs, bench labels).
    fn name(&self) -> &'static str;

    /// The challenge parameter an issuer stamps when none is configured
    /// (the memory-hard backend's arena size in MiB; 0 for parameterless
    /// backends).
    fn default_param(&self) -> u8;

    /// Whether `param` is a challenge parameter this backend will evaluate.
    fn validate_param(&self, param: u8) -> bool;

    /// The work function: the digest of one full preimage
    /// (challenge prefix ‖ encoded nonce), judged by leading zero bits.
    fn work_digest(&self, param: u8, preimage: &[u8]) -> Digest;

    /// Batched verify hook: digests for many independent preimages.
    /// `max_lanes` is advisory — the default implementation is a scalar
    /// loop, and [`Sha256Backend`] overrides it with the lane-interleaved
    /// kernel so the trait seam costs the wide verify path nothing.
    fn work_digest_batch(
        &self,
        params: &[u8],
        preimages: &[&[u8]],
        max_lanes: usize,
    ) -> Vec<Digest> {
        let _ = max_lanes;
        params
            .iter()
            .zip(preimages)
            .map(|(&param, preimage)| self.work_digest(param, preimage))
            .collect()
    }

    /// Prepares per-challenge solve state for `prefix`; the solver then
    /// calls [`SolveCursor::attempt`] once per nonce.
    fn solve_cursor(&self, param: u8, prefix: &[u8]) -> Box<dyn SolveCursor + '_>;
}

/// The paper's SHA-256 preimage puzzle (backend id 0).
#[derive(Debug, Default, Clone, Copy)]
pub struct Sha256Backend;

struct Sha256Cursor {
    midstate: Sha256,
}

impl SolveCursor for Sha256Cursor {
    fn attempt(&mut self, nonce_bytes: &[u8]) -> Digest {
        let mut h = self.midstate.clone();
        h.update(nonce_bytes);
        h.finalize()
    }
}

impl PuzzleBackend for Sha256Backend {
    fn id(&self) -> BackendId {
        BackendId::SHA256
    }

    fn name(&self) -> &'static str {
        "sha256"
    }

    fn default_param(&self) -> u8 {
        0
    }

    fn validate_param(&self, param: u8) -> bool {
        // Parameterless: only the zero param is canonical, keeping the
        // MAC'd challenge bytes unique per logical puzzle.
        param == 0
    }

    fn work_digest(&self, _param: u8, preimage: &[u8]) -> Digest {
        Sha256::digest(preimage)
    }

    fn work_digest_batch(
        &self,
        _params: &[u8],
        preimages: &[&[u8]],
        max_lanes: usize,
    ) -> Vec<Digest> {
        sha256_wide::digest_batch(preimages, max_lanes)
    }

    fn solve_cursor(&self, _param: u8, prefix: &[u8]) -> Box<dyn SolveCursor + '_> {
        let mut midstate = Sha256::new();
        midstate.update(prefix);
        Box::new(Sha256Cursor { midstate })
    }
}

/// The memory-hard fill/mix puzzle (backend id 1).
///
/// The challenge parameter is the arena size in MiB
/// ([`memmix::MIN_ARENA_MIB`]`..=`[`memmix::MAX_ARENA_MIB`]); arenas are
/// deterministic in their size and shared process-wide, so the fill is a
/// one-time cost on each side, not a per-challenge one.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryHardBackend;

struct MemoryHardCursor {
    arena: Arc<Arena>,
    /// `prefix` with room to append the nonce, reused across attempts.
    buf: Vec<u8>,
    prefix_len: usize,
}

impl SolveCursor for MemoryHardCursor {
    fn attempt(&mut self, nonce_bytes: &[u8]) -> Digest {
        self.buf.truncate(self.prefix_len);
        self.buf.extend_from_slice(nonce_bytes);
        self.arena.walk(&self.buf)
    }
}

impl PuzzleBackend for MemoryHardBackend {
    fn id(&self) -> BackendId {
        BackendId::MEMORY_HARD
    }

    fn name(&self) -> &'static str {
        "memory-hard"
    }

    fn default_param(&self) -> u8 {
        memmix::DEFAULT_ARENA_MIB
    }

    fn validate_param(&self, param: u8) -> bool {
        memmix::validate_arena_mib(param)
    }

    fn work_digest(&self, param: u8, preimage: &[u8]) -> Digest {
        memmix::shared_arena(param).walk(preimage)
    }

    fn work_digest_batch(
        &self,
        params: &[u8],
        preimages: &[&[u8]],
        max_lanes: usize,
    ) -> Vec<Digest> {
        // Distinct solutions' walks are independent, so each walk round
        // can interleave the whole batch through the wide kernel — the
        // verifier-side edge a per-nonce solver (whose every load waits
        // on its own previous digest) does not get. Batches share one
        // arena size in practice; a mixed batch walks per-param groups.
        let mut out: Vec<Option<Digest>> = vec![None; preimages.len()];
        let mut groups: Vec<(u8, Vec<usize>)> = Vec::new();
        for (i, &param) in params.iter().enumerate() {
            match groups.iter_mut().find(|(p, _)| *p == param) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((param, vec![i])),
            }
        }
        for (param, idxs) in &groups {
            let msgs: Vec<&[u8]> = idxs.iter().map(|&i| preimages[i]).collect();
            let digests = memmix::shared_arena(*param).walk_batch(&msgs, max_lanes);
            for (digest, &i) in digests.into_iter().zip(idxs) {
                out[i] = Some(digest);
            }
        }
        out.into_iter()
            .map(|d| d.expect("grouping invariant: every index lands in exactly one group"))
            .collect()
    }

    fn solve_cursor(&self, param: u8, prefix: &[u8]) -> Box<dyn SolveCursor + '_> {
        let mut buf = Vec::with_capacity(prefix.len() + 8);
        buf.extend_from_slice(prefix);
        Box::new(MemoryHardCursor {
            arena: memmix::shared_arena(param),
            prefix_len: prefix.len(),
            buf,
        })
    }
}

/// The set of backends a component dispatches through, keyed by
/// [`BackendId`].
///
/// The issuer, solver, and verifier all resolve ids against a registry;
/// [`BackendRegistry::global`] (both standard backends) serves unless a
/// caller wires an explicit one. Lookup of an id the registry does not
/// carry is how "unknown backend" is detected — and rejected with a typed
/// error rather than a panic or a decode failure.
#[derive(Clone)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn PuzzleBackend>>,
}

impl BackendRegistry {
    /// An empty registry; [`register`](Self::register) backends into it.
    pub fn empty() -> Self {
        BackendRegistry {
            backends: Vec::new(),
        }
    }

    /// The standard registry: [`Sha256Backend`] and [`MemoryHardBackend`].
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry.register(Arc::new(Sha256Backend));
        registry.register(Arc::new(MemoryHardBackend));
        registry
    }

    /// The process-wide standard registry.
    pub fn global() -> &'static BackendRegistry {
        static GLOBAL: OnceLock<BackendRegistry> = OnceLock::new();
        GLOBAL.get_or_init(BackendRegistry::standard)
    }

    /// Adds `backend`, replacing any previous registration of the same id.
    pub fn register(&mut self, backend: Arc<dyn PuzzleBackend>) {
        let id = backend.id();
        self.backends.retain(|b| b.id() != id);
        self.backends.push(backend);
    }

    /// Resolves an id, or `None` for unknown backends.
    pub fn get(&self, id: BackendId) -> Option<&dyn PuzzleBackend> {
        self.backends
            .iter()
            .find(|b| b.id() == id)
            .map(|b| b.as_ref())
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> Vec<BackendId> {
        self.backends.iter().map(|b| b.id()).collect()
    }

    /// Iterates the registered backends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn PuzzleBackend> {
        self.backends.iter().map(|b| b.as_ref())
    }
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_carries_both_standard_backends() {
        let registry = BackendRegistry::global();
        assert_eq!(
            registry.ids(),
            vec![BackendId::SHA256, BackendId::MEMORY_HARD]
        );
        assert_eq!(registry.get(BackendId::SHA256).unwrap().name(), "sha256");
        assert_eq!(
            registry.get(BackendId::MEMORY_HARD).unwrap().name(),
            "memory-hard"
        );
        assert!(registry.get(BackendId(200)).is_none());
    }

    #[test]
    fn sha256_backend_matches_the_plain_work_function() {
        let backend = Sha256Backend;
        let msg = b"challenge-prefix/203.0.113.9\x00\x00\x00\x07";
        assert_eq!(backend.work_digest(0, msg), Sha256::digest(msg));
        // The batched hook agrees with the scalar one at every lane width.
        let msgs: Vec<&[u8]> = vec![b"a", b"bb", msg, b"dddd"];
        let params = vec![0u8; msgs.len()];
        for lanes in [1, 4, 8] {
            let batch = backend.work_digest_batch(&params, &msgs, lanes);
            for (m, d) in msgs.iter().zip(&batch) {
                assert_eq!(*d, Sha256::digest(m), "lanes={lanes}");
            }
        }
    }

    #[test]
    fn cursors_agree_with_work_digest() {
        let prefix = b"prefix-bytes/192.0.2.1";
        let nonce = 7u64.to_be_bytes();
        let mut preimage = prefix.to_vec();
        preimage.extend_from_slice(&nonce);

        let sha = Sha256Backend;
        assert_eq!(
            sha.solve_cursor(0, prefix).attempt(&nonce),
            sha.work_digest(0, &preimage)
        );

        let hard = MemoryHardBackend;
        assert_eq!(
            hard.solve_cursor(1, prefix).attempt(&nonce),
            hard.work_digest(1, &preimage)
        );
    }

    #[test]
    fn memory_hard_batch_matches_scalar_even_with_mixed_params() {
        let hard = MemoryHardBackend;
        let msgs: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 30 + i as usize]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        // Interleaved arena sizes exercise the per-param grouping.
        let params: Vec<u8> = (0..refs.len()).map(|i| 1 + (i % 2) as u8).collect();
        let scalar: Vec<Digest> = params
            .iter()
            .zip(&refs)
            .map(|(&p, m)| hard.work_digest(p, m))
            .collect();
        for lanes in [1, 4, 8] {
            assert_eq!(
                hard.work_digest_batch(&params, &refs, lanes),
                scalar,
                "lanes={lanes}"
            );
        }
        assert!(hard.work_digest_batch(&[], &[], 8).is_empty());
    }

    #[test]
    fn memory_hard_cursor_is_reusable_across_nonces() {
        let hard = MemoryHardBackend;
        let prefix = b"reusable-prefix";
        let mut cursor = hard.solve_cursor(1, prefix);
        let first = cursor.attempt(&1u64.to_be_bytes());
        let second = cursor.attempt(&2u64.to_be_bytes());
        let first_again = cursor.attempt(&1u64.to_be_bytes());
        assert_ne!(first, second);
        assert_eq!(
            first, first_again,
            "cursor state must not leak across attempts"
        );
    }

    #[test]
    fn param_validation_per_backend() {
        assert!(Sha256Backend.validate_param(0));
        assert!(!Sha256Backend.validate_param(1));
        assert!(!MemoryHardBackend.validate_param(0));
        assert!(MemoryHardBackend.validate_param(memmix::DEFAULT_ARENA_MIB));
        assert!(!MemoryHardBackend.validate_param(memmix::MAX_ARENA_MIB + 1));
    }

    #[test]
    fn registry_register_replaces_same_id() {
        let mut registry = BackendRegistry::standard();
        registry.register(Arc::new(Sha256Backend));
        assert_eq!(
            registry.ids(),
            vec![BackendId::MEMORY_HARD, BackendId::SHA256],
            "re-registration replaces, not duplicates"
        );
    }

    #[test]
    fn backend_id_display() {
        assert_eq!(BackendId::SHA256.to_string(), "sha256");
        assert_eq!(BackendId::MEMORY_HARD.to_string(), "memory-hard");
        assert_eq!(BackendId(9).to_string(), "backend#9");
    }
}
