//! Replay protection for solved challenges.
//!
//! A solution is valid work exactly once: accepting the same seed twice
//! would let an attacker amortize one solve over many requests. The guard
//! remembers seeds until their challenge TTL has passed (after which the
//! expiry check rejects them anyway) and bounds its memory with FIFO
//! eviction.

use crate::challenge::SEED_LEN;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Default maximum number of remembered seeds.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A bounded, TTL-aware set of already-redeemed challenge seeds.
///
/// Thread-safe; one instance is shared by all verifier call sites.
///
/// ```
/// use aipow_pow::ReplayGuard;
/// let guard = ReplayGuard::new(1024);
/// let seed = [1u8; 16];
/// assert!(guard.check_and_insert(&seed, 5_000, 0), "first redemption accepted");
/// assert!(!guard.check_and_insert(&seed, 5_000, 1), "replay rejected");
/// assert!(guard.check_and_insert(&seed, 9_000, 6_000), "accepted again after expiry");
/// ```
#[derive(Debug)]
pub struct ReplayGuard {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// seed → expiry (ms). Entries past expiry are semantically absent.
    seen: HashMap<[u8; SEED_LEN], u64>,
    /// Insertion order for FIFO eviction, with each entry's expiry.
    order: VecDeque<([u8; SEED_LEN], u64)>,
    capacity: usize,
    evicted_live: u64,
}

impl ReplayGuard {
    /// Creates a guard remembering at most `capacity` seeds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay guard capacity must be positive");
        ReplayGuard {
            inner: Mutex::new(Inner {
                seen: HashMap::new(),
                order: VecDeque::new(),
                capacity,
                evicted_live: 0,
            }),
        }
    }

    /// Atomically checks whether `seed` is fresh at `now_ms` and, if so,
    /// records it until `expires_at_ms`. Returns `true` if the seed was
    /// fresh (caller may proceed), `false` if it is a replay.
    pub fn check_and_insert(&self, seed: &[u8; SEED_LEN], expires_at_ms: u64, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        inner.sweep_expired(now_ms);

        match inner.seen.get(seed) {
            Some(&expiry) if expiry >= now_ms => return false,
            _ => {}
        }

        if inner.seen.len() >= inner.capacity {
            inner.evict_oldest(now_ms);
        }
        inner.seen.insert(*seed, expires_at_ms);
        inner.order.push_back((*seed, expires_at_ms));
        true
    }

    /// Number of live entries currently remembered.
    pub fn len(&self) -> usize {
        self.inner.lock().seen.len()
    }

    /// Whether the guard remembers no seeds.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of *live* (unexpired) entries evicted due to the capacity
    /// bound. A nonzero value means the guard was undersized for the
    /// workload and replays became theoretically possible; operators should
    /// alarm on it (see ablation A3 in EXPERIMENTS.md).
    pub fn live_evictions(&self) -> u64 {
        self.inner.lock().evicted_live
    }
}

impl Default for ReplayGuard {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Inner {
    /// Drops expired entries from the front of the FIFO. Amortized O(1):
    /// each entry is pushed and popped once.
    fn sweep_expired(&mut self, now_ms: u64) {
        while let Some(&(seed, expiry)) = self.order.front() {
            if expiry < now_ms {
                self.order.pop_front();
                // Only remove from the map if the map entry is this one
                // (an expired seed may have been re-inserted with a later
                // expiry).
                if self.seen.get(&seed) == Some(&expiry) {
                    self.seen.remove(&seed);
                }
            } else {
                break;
            }
        }
    }

    /// Evicts the oldest entry to make room, counting it if it was live.
    fn evict_oldest(&mut self, now_ms: u64) {
        while let Some((seed, expiry)) = self.order.pop_front() {
            if self.seen.get(&seed) == Some(&expiry) {
                self.seen.remove(&seed);
                if expiry >= now_ms {
                    self.evicted_live += 1;
                }
                return;
            }
            // Stale order entry (superseded); keep popping.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(i: u64) -> [u8; SEED_LEN] {
        let mut s = [0u8; SEED_LEN];
        s[..8].copy_from_slice(&i.to_be_bytes());
        s
    }

    #[test]
    fn first_use_accepted_replay_rejected() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 1_000, 0));
        assert!(!g.check_and_insert(&seed(1), 1_000, 10));
        assert!(!g.check_and_insert(&seed(1), 2_000, 999));
    }

    #[test]
    fn distinct_seeds_independent() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 1_000, 0));
        assert!(g.check_and_insert(&seed(2), 1_000, 0));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn expired_entries_are_forgotten() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 100, 0));
        // At now=101 the entry has expired; the seed may be seen again
        // (the verifier's TTL check would reject such a challenge anyway).
        assert!(g.check_and_insert(&seed(1), 300, 101));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn capacity_bound_enforced_with_fifo_eviction() {
        let g = ReplayGuard::new(4);
        for i in 0..4 {
            assert!(g.check_and_insert(&seed(i), 10_000, 0));
        }
        assert_eq!(g.len(), 4);
        // Fifth insertion evicts the oldest (seed 0).
        assert!(g.check_and_insert(&seed(4), 10_000, 1));
        assert_eq!(g.len(), 4);
        assert_eq!(g.live_evictions(), 1);
        // Seed 0 is (regrettably) acceptable again — the documented
        // capacity/soundness trade-off.
        assert!(g.check_and_insert(&seed(0), 10_000, 2));
    }

    #[test]
    fn sweep_prefers_expired_over_live_eviction() {
        let g = ReplayGuard::new(2);
        assert!(g.check_and_insert(&seed(1), 10, 0));
        assert!(g.check_and_insert(&seed(2), 10_000, 0));
        // seed(1) has expired by now=11; inserting a third seed must sweep
        // it rather than evicting the live seed(2).
        assert!(g.check_and_insert(&seed(3), 10_000, 11));
        assert_eq!(g.live_evictions(), 0);
        assert!(!g.check_and_insert(&seed(2), 10_000, 12), "live entry survived");
    }

    #[test]
    fn reinsertion_after_expiry_keeps_map_and_order_consistent() {
        let g = ReplayGuard::new(4);
        assert!(g.check_and_insert(&seed(1), 10, 0));
        assert!(g.check_and_insert(&seed(1), 1_000, 11)); // re-insert after expiry
        // The stale order entry for the first insertion must not remove the
        // fresh map entry when swept.
        assert!(!g.check_and_insert(&seed(1), 2_000, 12));
        assert_eq!(g.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReplayGuard::new(0);
    }

    #[test]
    fn concurrent_redemption_admits_exactly_once() {
        use std::sync::Arc;
        let g = Arc::new(ReplayGuard::new(1024));
        let mut handles = Vec::new();
        let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..8 {
            let g = Arc::clone(&g);
            let accepted = Arc::clone(&accepted);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    if g.check_and_insert(&seed(i), 1_000_000, 0) {
                        accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            accepted.load(std::sync::atomic::Ordering::Relaxed),
            1_000,
            "each seed must be admitted exactly once across threads"
        );
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Soundness: within a TTL window, no seed is ever accepted
            /// twice (as long as capacity is not exceeded).
            #[test]
            fn no_double_redemption(ops in proptest::collection::vec((0u64..50, 1u64..100), 1..200)) {
                let g = ReplayGuard::new(10_000);
                let mut accepted = std::collections::HashSet::new();
                for (s, _tick) in ops {
                    let fresh = g.check_and_insert(&seed(s), u64::MAX, 0);
                    if fresh {
                        prop_assert!(accepted.insert(s), "seed {} accepted twice", s);
                    } else {
                        prop_assert!(accepted.contains(&s));
                    }
                }
            }
        }
    }
}
