//! Replay protection for solved challenges.
//!
//! A solution is valid work exactly once: accepting the same seed twice
//! would let an attacker amortize one solve over many requests. The guard
//! remembers seeds until their challenge TTL has passed (after which the
//! expiry check rejects them anyway) and bounds its memory with FIFO
//! eviction.

use crate::challenge::SEED_LEN;
use aipow_shard::{default_shard_count, floor_shards, round_shards, Sharded};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default maximum number of remembered seeds.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Minimum per-shard capacity the automatic shard-count selection will
/// accept: below this, sharding a small guard would skew the FIFO
/// eviction bound for no contention win.
const MIN_SHARD_CAPACITY: usize = 1024;

/// A bounded, TTL-aware set of already-redeemed challenge seeds.
///
/// Thread-safe; one instance is shared by all verifier call sites. The
/// seed set is sharded by seed hash so concurrent redemptions of
/// *different* seeds rarely contend; each seed maps to exactly one shard,
/// so redemption of a single seed stays atomic. Each shard runs its own
/// FIFO eviction over a per-shard slice of the global capacity
/// (`ceil(capacity / shards)`), preserving the global memory bound: the
/// guard never remembers more than `capacity + shards − 1` seeds.
///
/// ```
/// use aipow_pow::ReplayGuard;
/// let guard = ReplayGuard::new(1024);
/// let seed = [1u8; 16];
/// assert!(guard.check_and_insert(&seed, 5_000, 0), "first redemption accepted");
/// assert!(!guard.check_and_insert(&seed, 5_000, 1), "replay rejected");
/// assert!(guard.check_and_insert(&seed, 9_000, 6_000), "accepted again after expiry");
/// ```
#[derive(Debug)]
pub struct ReplayGuard {
    shards: Sharded<Inner>,
    /// Live entries evicted by the capacity bound, across all shards.
    /// A plain atomic (not per-shard state) so the alarm signal is a
    /// lock-free read on any path that wants to surface it.
    evicted_live: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    /// seed → expiry (ms). Entries past expiry are semantically absent.
    seen: HashMap<[u8; SEED_LEN], u64>,
    /// Insertion order for FIFO eviction, with each entry's expiry.
    order: VecDeque<([u8; SEED_LEN], u64)>,
    capacity: usize,
}

impl ReplayGuard {
    /// Creates a guard remembering at most (approximately) `capacity`
    /// seeds, with an automatically chosen shard count: enough shards to
    /// spread the machine's parallelism, but never so many that a shard
    /// holds fewer than 1024 seeds (small guards degrade to a single
    /// shard and exact FIFO semantics).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        let auto = default_shard_count().min((capacity / MIN_SHARD_CAPACITY).max(1));
        // Round *down* to a power of two so auto-selection never shrinks
        // per-shard capacity below the minimum.
        Self::with_shards(capacity, floor_shards(auto))
    }

    /// Creates a guard with an explicit shard count (rounded up to a
    /// power of two). Each shard gets `ceil(capacity / shards)` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_shards(capacity: usize, shard_count: usize) -> Self {
        assert!(capacity > 0, "replay guard capacity must be positive");
        let shard_count = round_shards(shard_count);
        let per_shard = capacity.div_ceil(shard_count);
        ReplayGuard {
            shards: Sharded::new(shard_count, |_| Inner {
                // lint:allow(raw-keyed-state) bounded by this shard's capacity/order ring
                seen: HashMap::new(),
                order: VecDeque::new(),
                capacity: per_shard,
            }),
            evicted_live: AtomicU64::new(0),
        }
    }

    /// Number of shards the seed set is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// Atomically checks whether `seed` is fresh at `now_ms` and, if so,
    /// records it until `expires_at_ms`. Returns `true` if the seed was
    /// fresh (caller may proceed), `false` if it is a replay.
    pub fn check_and_insert(&self, seed: &[u8; SEED_LEN], expires_at_ms: u64, now_ms: u64) -> bool {
        self.shards.with_key(seed, |inner| {
            inner.sweep_expired(now_ms);

            match inner.seen.get(seed) {
                Some(&expiry) if expiry >= now_ms => return false,
                _ => {}
            }

            if inner.seen.len() >= inner.capacity && inner.evict_oldest(now_ms) {
                // relaxed: monotonic stats counter; incremented under the
                // shard lock
                self.evicted_live.fetch_add(1, Ordering::Relaxed);
            }
            inner.seen.insert(*seed, expires_at_ms);
            inner.order.push_back((*seed, expires_at_ms));
            true
        })
    }

    /// Number of live entries currently remembered (sums shards, locking
    /// one at a time).
    pub fn len(&self) -> usize {
        self.shards.fold(0, |acc, inner| acc + inner.seen.len())
    }

    /// Whether the guard remembers no seeds.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of *live* (unexpired) entries evicted due to the capacity
    /// bound (a lock-free atomic read). A nonzero value means the guard
    /// was undersized for the workload and replays became theoretically
    /// possible; operators should alarm on it (see ablation A3 in
    /// EXPERIMENTS.md and the `replay_evicted_live` framework metric).
    pub fn live_evictions(&self) -> u64 {
        // relaxed: monitoring read of a stats counter; freshness not
        // required
        self.evicted_live.load(Ordering::Relaxed)
    }
}

impl Default for ReplayGuard {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Inner {
    /// Drops expired entries from the front of the FIFO. Amortized O(1):
    /// each entry is pushed and popped once.
    fn sweep_expired(&mut self, now_ms: u64) {
        while let Some(&(seed, expiry)) = self.order.front() {
            if expiry < now_ms {
                self.order.pop_front();
                // Only remove from the map if the map entry is this one
                // (an expired seed may have been re-inserted with a later
                // expiry).
                if self.seen.get(&seed) == Some(&expiry) {
                    self.seen.remove(&seed);
                }
            } else {
                break;
            }
        }
    }

    /// Evicts the oldest entry to make room; returns whether the evicted
    /// entry was still live (unexpired).
    fn evict_oldest(&mut self, now_ms: u64) -> bool {
        while let Some((seed, expiry)) = self.order.pop_front() {
            if self.seen.get(&seed) == Some(&expiry) {
                self.seen.remove(&seed);
                return expiry >= now_ms;
            }
            // Stale order entry (superseded); keep popping.
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(i: u64) -> [u8; SEED_LEN] {
        let mut s = [0u8; SEED_LEN];
        s[..8].copy_from_slice(&i.to_be_bytes());
        s
    }

    #[test]
    fn first_use_accepted_replay_rejected() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 1_000, 0));
        assert!(!g.check_and_insert(&seed(1), 1_000, 10));
        assert!(!g.check_and_insert(&seed(1), 2_000, 999));
    }

    #[test]
    fn distinct_seeds_independent() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 1_000, 0));
        assert!(g.check_and_insert(&seed(2), 1_000, 0));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn expired_entries_are_forgotten() {
        let g = ReplayGuard::new(16);
        assert!(g.check_and_insert(&seed(1), 100, 0));
        // At now=101 the entry has expired; the seed may be seen again
        // (the verifier's TTL check would reject such a challenge anyway).
        assert!(g.check_and_insert(&seed(1), 300, 101));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn capacity_bound_enforced_with_fifo_eviction() {
        let g = ReplayGuard::new(4);
        for i in 0..4 {
            assert!(g.check_and_insert(&seed(i), 10_000, 0));
        }
        assert_eq!(g.len(), 4);
        // Fifth insertion evicts the oldest (seed 0).
        assert!(g.check_and_insert(&seed(4), 10_000, 1));
        assert_eq!(g.len(), 4);
        assert_eq!(g.live_evictions(), 1);
        // Seed 0 is (regrettably) acceptable again — the documented
        // capacity/soundness trade-off.
        assert!(g.check_and_insert(&seed(0), 10_000, 2));
    }

    #[test]
    fn sweep_prefers_expired_over_live_eviction() {
        let g = ReplayGuard::new(2);
        assert!(g.check_and_insert(&seed(1), 10, 0));
        assert!(g.check_and_insert(&seed(2), 10_000, 0));
        // seed(1) has expired by now=11; inserting a third seed must sweep
        // it rather than evicting the live seed(2).
        assert!(g.check_and_insert(&seed(3), 10_000, 11));
        assert_eq!(g.live_evictions(), 0);
        assert!(
            !g.check_and_insert(&seed(2), 10_000, 12),
            "live entry survived"
        );
    }

    #[test]
    fn reinsertion_after_expiry_keeps_map_and_order_consistent() {
        let g = ReplayGuard::new(4);
        assert!(g.check_and_insert(&seed(1), 10, 0));
        assert!(g.check_and_insert(&seed(1), 1_000, 11)); // re-insert after expiry
                                                          // The stale order entry for the first insertion must not remove the
                                                          // fresh map entry when swept.
        assert!(!g.check_and_insert(&seed(1), 2_000, 12));
        assert_eq!(g.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReplayGuard::new(0);
    }

    #[test]
    fn concurrent_redemption_admits_exactly_once() {
        use std::sync::Arc;
        let g = Arc::new(ReplayGuard::new(1024));
        let mut handles = Vec::new();
        let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..8 {
            let g = Arc::clone(&g);
            let accepted = Arc::clone(&accepted);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    if g.check_and_insert(&seed(i), 1_000_000, 0) {
                        accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            accepted.load(std::sync::atomic::Ordering::Relaxed),
            1_000,
            "each seed must be admitted exactly once across threads"
        );
    }

    #[test]
    fn small_guards_collapse_to_one_shard_for_exact_fifo() {
        // Below 2×1024 capacity there is nothing to shard; semantics stay
        // identical to the historical single-lock guard.
        assert_eq!(ReplayGuard::new(16).shard_count(), 1);
        assert_eq!(ReplayGuard::new(1024).shard_count(), 1);
        assert!(ReplayGuard::new(DEFAULT_CAPACITY).shard_count() >= 1);
    }

    #[test]
    fn explicit_shard_count_rounds_to_power_of_two() {
        assert_eq!(ReplayGuard::with_shards(1 << 16, 6).shard_count(), 8);
        assert_eq!(ReplayGuard::with_shards(1 << 16, 1).shard_count(), 1);
    }

    #[test]
    fn sharded_guard_admits_each_seed_exactly_once() {
        use std::sync::Arc;
        let g = Arc::new(ReplayGuard::with_shards(1 << 16, 8));
        assert_eq!(g.shard_count(), 8);
        let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if g.check_and_insert(&seed(i), u64::MAX, 0) {
                            accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            accepted.load(std::sync::atomic::Ordering::Relaxed),
            2_000,
            "each seed admitted exactly once even when spread over shards"
        );
        assert_eq!(g.len(), 2_000);
    }

    #[test]
    fn sharded_eviction_bound_holds() {
        // 8 shards × 128 slots: inserting 4× the capacity of live seeds
        // must keep the total at the per-shard bound and count the live
        // evictions that occurred.
        let g = ReplayGuard::with_shards(1024, 8);
        for i in 0..4_096u64 {
            assert!(g.check_and_insert(&seed(i), u64::MAX, 0));
        }
        assert!(g.len() <= 1024, "len {} exceeds capacity bound", g.len());
        assert_eq!(g.live_evictions(), 4_096 - g.len() as u64);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Soundness: within a TTL window, no seed is ever accepted
            /// twice (as long as capacity is not exceeded).
            #[test]
            fn no_double_redemption(ops in proptest::collection::vec((0u64..50, 1u64..100), 1..200)) {
                let g = ReplayGuard::new(10_000);
                let mut accepted = std::collections::HashSet::new();
                for (s, _tick) in ops {
                    let fresh = g.check_and_insert(&seed(s), u64::MAX, 0);
                    if fresh {
                        prop_assert!(accepted.insert(s), "seed {} accepted twice", s);
                    } else {
                        prop_assert!(accepted.contains(&s));
                    }
                }
            }
        }
    }
}
