//! Challenge and solution data types (paper §II.3–§II.4).
//!
//! A challenge is “request related data, i.e., timestamp and unique seed
//! (for mitigating pre-computation attacks), and a difficulty value as
//! defined by the policy module”. The issuer authenticates the bundle with
//! an HMAC tag so the verifier can recognize its own challenges without
//! storing them.

use crate::backend::{BackendId, BackendRegistry};
use crate::difficulty::Difficulty;
use aipow_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Current challenge format version.
pub const CHALLENGE_VERSION: u8 = 1;

/// Size of the anti-precomputation seed in bytes.
pub const SEED_LEN: usize = 16;

/// A proof-of-work challenge as issued to a client.
///
/// The fields mirror the paper's puzzle-generation module: a unique seed, an
/// issuance timestamp, a TTL, the policy-assigned difficulty, the client IP
/// the puzzle is bound to, and the issuer's HMAC tag over all of the above.
///
/// ```
/// use aipow_pow::{Difficulty, Issuer};
/// # use std::net::{IpAddr, Ipv4Addr};
/// let issuer = Issuer::new(&[0u8; 32]);
/// let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
/// let c = issuer.issue(ip, Difficulty::new(4).unwrap());
/// assert_eq!(c.difficulty().bits(), 4);
/// assert_eq!(c.client_ip(), ip);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Challenge {
    version: u8,
    backend: BackendId,
    backend_param: u8,
    seed: [u8; SEED_LEN],
    issued_at_ms: u64,
    ttl_ms: u64,
    difficulty: Difficulty,
    client_ip: IpAddr,
    tag: [u8; 32],
}

impl Challenge {
    /// Assembles a SHA-256-backend challenge from parts — the historical
    /// constructor, kept for the default backend; backend-qualified callers
    /// (the issuer, wire decoding) use
    /// [`from_parts_backend`](Self::from_parts_backend).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        version: u8,
        seed: [u8; SEED_LEN],
        issued_at_ms: u64,
        ttl_ms: u64,
        difficulty: Difficulty,
        client_ip: IpAddr,
        tag: [u8; 32],
    ) -> Self {
        Self::from_parts_backend(
            version,
            BackendId::SHA256,
            0,
            seed,
            issued_at_ms,
            ttl_ms,
            difficulty,
            client_ip,
            tag,
        )
    }

    /// Assembles a challenge from parts, including its puzzle backend id
    /// and backend parameter (the memory-hard arena size in MiB; 0 for the
    /// SHA-256 backend).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_backend(
        version: u8,
        backend: BackendId,
        backend_param: u8,
        seed: [u8; SEED_LEN],
        issued_at_ms: u64,
        ttl_ms: u64,
        difficulty: Difficulty,
        client_ip: IpAddr,
        tag: [u8; 32],
    ) -> Self {
        Challenge {
            version,
            backend,
            backend_param,
            seed,
            issued_at_ms,
            ttl_ms,
            difficulty,
            client_ip,
            tag,
        }
    }

    /// Format version of this challenge.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The puzzle backend this challenge must be solved with.
    pub fn backend(&self) -> BackendId {
        self.backend
    }

    /// The backend parameter (arena MiB for the memory-hard backend, 0
    /// for the SHA-256 backend). MAC-covered, so a client cannot shrink
    /// a memory-hard arena any more than it can lower the difficulty.
    pub fn backend_param(&self) -> u8 {
        self.backend_param
    }

    /// The unique anti-precomputation seed.
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// Issuance timestamp, milliseconds since the Unix epoch.
    pub fn issued_at_ms(&self) -> u64 {
        self.issued_at_ms
    }

    /// Validity window length in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// The required number of leading zero bits.
    pub fn difficulty(&self) -> Difficulty {
        self.difficulty
    }

    /// The client IP this challenge was issued to.
    pub fn client_ip(&self) -> IpAddr {
        self.client_ip
    }

    /// The issuer's HMAC tag.
    pub fn tag(&self) -> &[u8; 32] {
        &self.tag
    }

    /// Expiry instant: `issued_at + ttl`, saturating.
    pub fn expires_at_ms(&self) -> u64 {
        self.issued_at_ms.saturating_add(self.ttl_ms)
    }

    /// Whether the challenge has expired at `now_ms`.
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms > self.expires_at_ms()
    }

    /// Short printable identifier (hex of the seed).
    pub fn id(&self) -> String {
        aipow_crypto::hex::encode(&self.seed)
    }

    /// Canonical byte encoding of the fields covered by the issuer's MAC:
    /// `version ‖ backend ‖ backend_param ‖ seed ‖ issued_at ‖ ttl ‖
    /// difficulty ‖ ip`, all big-endian. Covering the backend id and its
    /// parameter is what makes backend selection non-negotiable: a client
    /// downgrading a memory-hard challenge to SHA-256 (or shrinking its
    /// arena) invalidates the tag.
    pub fn authenticated_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 2 + SEED_LEN + 8 + 8 + 1 + 17);
        out.push(self.version);
        out.push(self.backend.as_u8());
        out.push(self.backend_param);
        out.extend_from_slice(&self.seed);
        out.extend_from_slice(&self.issued_at_ms.to_be_bytes());
        out.extend_from_slice(&self.ttl_ms.to_be_bytes());
        out.push(self.difficulty.bits());
        encode_ip(&mut out, self.client_ip);
        out
    }

    /// The immutable solve-preimage prefix: the challenge data as received
    /// (including the tag) concatenated with the textual client IP, per
    /// paper §II.4 — “concatenated with the client's IP address to form a
    /// string that is not altered”. The solver appends only the nonce.
    pub fn preimage_prefix(&self, client_ip: IpAddr) -> Vec<u8> {
        let mut out = self.authenticated_bytes();
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(client_ip.to_string().as_bytes());
        out
    }
}

/// Appends a self-delimiting IP encoding: `0x04 ‖ 4 bytes` or `0x06 ‖ 16 bytes`.
fn encode_ip(out: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.push(0x04);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(0x06);
            out.extend_from_slice(&v6.octets());
        }
    }
}

/// Width of the nonce the solver appends to the preimage.
///
/// The paper specifies a 32-bit nonce. A 32-bit space exhausts with
/// probability `≈ e^{-2^{32-d}}` at difficulty `d` (non-negligible beyond
/// `d ≈ 28`), so the default is [`NonceWidth::U64`]; use
/// [`SolverOptions::strict_u32`](crate::SolverOptions) for paper-faithful
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NonceWidth {
    /// 4-byte big-endian nonce (paper-faithful).
    U32,
    /// 8-byte big-endian nonce (default).
    #[default]
    U64,
}

impl NonceWidth {
    /// Serializes `nonce` at this width (big-endian).
    ///
    /// # Panics
    ///
    /// Panics if `nonce` does not fit the width; the solver guarantees this
    /// by construction, and wire decoding validates before calling.
    pub fn encode(&self, nonce: u64) -> Vec<u8> {
        match self {
            NonceWidth::U32 => {
                let n32 = u32::try_from(nonce)
                    .expect("width invariant: U32-width stamps carry u32-range nonces");
                n32.to_be_bytes().to_vec()
            }
            NonceWidth::U64 => nonce.to_be_bytes().to_vec(),
        }
    }

    /// Whether `nonce` is representable at this width.
    pub fn fits(&self, nonce: u64) -> bool {
        match self {
            NonceWidth::U32 => nonce <= u32::MAX as u64,
            NonceWidth::U64 => true,
        }
    }

    /// The maximum nonce representable at this width.
    pub fn max_nonce(&self) -> u64 {
        match self {
            NonceWidth::U32 => u32::MAX as u64,
            NonceWidth::U64 => u64::MAX,
        }
    }
}

/// A candidate solution: the challenge it answers plus the found nonce,
/// and the backend the client actually solved with. The verifier rejects a
/// declared backend that disagrees with the challenge's
/// ([`VerifyError::BackendMismatch`](crate::VerifyError)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// The challenge being answered (echoed back to the verifier).
    pub challenge: Challenge,
    /// The nonce that produced a qualifying digest.
    pub nonce: u64,
    /// Width at which the nonce was hashed.
    pub width: NonceWidth,
    /// The backend whose work function the client evaluated.
    pub backend: BackendId,
}

impl Solution {
    /// Builds a solution for `challenge`, declaring the challenge's own
    /// backend (the only declaration a verifier accepts).
    pub fn new(challenge: Challenge, nonce: u64, width: NonceWidth) -> Self {
        let backend = challenge.backend();
        Solution {
            challenge,
            nonce,
            width,
            backend,
        }
    }

    /// Computes the solution digest for a claimed client IP, dispatching
    /// the work function through `registry`. Returns `None` when the
    /// challenge's backend id is not registered.
    pub fn digest_with(&self, client_ip: IpAddr, registry: &BackendRegistry) -> Option<Digest> {
        let backend = registry.get(self.challenge.backend())?;
        let mut preimage = self.challenge.preimage_prefix(client_ip);
        preimage.extend_from_slice(&self.width.encode(self.nonce));
        Some(backend.work_digest(self.challenge.backend_param(), &preimage))
    }

    /// Computes the solution digest for a claimed client IP via the
    /// process-wide standard registry.
    ///
    /// # Panics
    ///
    /// Panics if the challenge carries an unregistered backend id; the
    /// verifier never reaches this (it resolves the backend first and
    /// rejects unknown ids with a typed error), so this is for trusted
    /// locally-built solutions. Untrusted paths use
    /// [`digest_with`](Self::digest_with).
    pub fn digest(&self, client_ip: IpAddr) -> Digest {
        self.digest_with(client_ip, BackendRegistry::global())
            .expect("backend invariant: locally built solutions use registered backends")
    }

    /// Whether the digest for `client_ip` meets the challenge difficulty.
    pub fn meets_difficulty(&self, client_ip: IpAddr) -> bool {
        self.digest(client_ip).leading_zero_bits() >= self.challenge.difficulty().bits() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn sample_challenge(ip: IpAddr) -> Challenge {
        Challenge::from_parts(
            CHALLENGE_VERSION,
            [9u8; SEED_LEN],
            1_000,
            30_000,
            Difficulty::new(4).unwrap(),
            ip,
            [3u8; 32],
        )
    }

    #[test]
    fn expiry_window() {
        let c = sample_challenge(IpAddr::V4(Ipv4Addr::LOCALHOST));
        assert_eq!(c.expires_at_ms(), 31_000);
        assert!(!c.is_expired(31_000));
        assert!(c.is_expired(31_001));
    }

    #[test]
    fn expiry_saturates() {
        let c = Challenge::from_parts(
            1,
            [0; SEED_LEN],
            u64::MAX - 5,
            100,
            Difficulty::ZERO,
            IpAddr::V4(Ipv4Addr::LOCALHOST),
            [0; 32],
        );
        assert_eq!(c.expires_at_ms(), u64::MAX);
    }

    #[test]
    fn authenticated_bytes_cover_every_field() {
        let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
        let base = sample_challenge(ip);
        let baseline = base.authenticated_bytes();

        let variants = [
            Challenge::from_parts(
                2,
                *base.seed(),
                1_000,
                30_000,
                base.difficulty(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts(
                1,
                [8; SEED_LEN],
                1_000,
                30_000,
                base.difficulty(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts(
                1,
                *base.seed(),
                1_001,
                30_000,
                base.difficulty(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts(
                1,
                *base.seed(),
                1_000,
                30_001,
                base.difficulty(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts(
                1,
                *base.seed(),
                1_000,
                30_000,
                Difficulty::new(5).unwrap(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts(
                1,
                *base.seed(),
                1_000,
                30_000,
                base.difficulty(),
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
                [3; 32],
            ),
            Challenge::from_parts_backend(
                1,
                BackendId::MEMORY_HARD,
                0,
                *base.seed(),
                1_000,
                30_000,
                base.difficulty(),
                ip,
                [3; 32],
            ),
            Challenge::from_parts_backend(
                1,
                BackendId::SHA256,
                8,
                *base.seed(),
                1_000,
                30_000,
                base.difficulty(),
                ip,
                [3; 32],
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                v.authenticated_bytes(),
                baseline,
                "variant {i} not reflected in authenticated bytes"
            );
        }
    }

    #[test]
    fn tag_not_in_authenticated_bytes_but_in_preimage() {
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let a = sample_challenge(ip);
        let mut b = a.clone();
        b.tag = [7u8; 32];
        assert_eq!(a.authenticated_bytes(), b.authenticated_bytes());
        assert_ne!(a.preimage_prefix(ip), b.preimage_prefix(ip));
    }

    #[test]
    fn preimage_binds_solver_ip() {
        let issued_to = IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4));
        let c = sample_challenge(issued_to);
        let other = IpAddr::V4(Ipv4Addr::new(4, 3, 2, 1));
        assert_ne!(c.preimage_prefix(issued_to), c.preimage_prefix(other));
    }

    #[test]
    fn ipv6_challenges_encode_distinctly() {
        let v6 = IpAddr::V6(Ipv6Addr::LOCALHOST);
        let v4 = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let a = sample_challenge(v6);
        let b = sample_challenge(v4);
        assert_ne!(a.authenticated_bytes(), b.authenticated_bytes());
    }

    #[test]
    fn nonce_width_encoding() {
        assert_eq!(NonceWidth::U32.encode(0x0102_0304), vec![1, 2, 3, 4]);
        assert_eq!(NonceWidth::U64.encode(1).len(), 8);
        assert!(NonceWidth::U32.fits(u32::MAX as u64));
        assert!(!NonceWidth::U32.fits(u32::MAX as u64 + 1));
        assert!(NonceWidth::U64.fits(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width invariant")]
    fn nonce_width_u32_panics_on_overflow() {
        NonceWidth::U32.encode(u64::MAX);
    }

    #[test]
    fn solution_digest_depends_on_nonce_and_width() {
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let c = sample_challenge(ip);
        let s1 = Solution::new(c.clone(), 1, NonceWidth::U64);
        let s2 = Solution::new(c.clone(), 2, NonceWidth::U64);
        let s3 = Solution::new(c, 1, NonceWidth::U32);
        assert_ne!(s1.digest(ip), s2.digest(ip));
        assert_ne!(s1.digest(ip), s3.digest(ip));
    }

    #[test]
    fn zero_difficulty_always_meets() {
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let mut c = sample_challenge(ip);
        c.difficulty = Difficulty::ZERO;
        let s = Solution::new(c, 12345, NonceWidth::U64);
        assert!(s.meets_difficulty(ip));
    }

    #[test]
    fn challenge_id_is_seed_hex() {
        let c = sample_challenge(IpAddr::V4(Ipv4Addr::LOCALHOST));
        assert_eq!(c.id(), "09".repeat(SEED_LEN));
    }

    #[test]
    fn legacy_constructor_defaults_to_the_sha256_backend() {
        let c = sample_challenge(IpAddr::V4(Ipv4Addr::LOCALHOST));
        assert_eq!(c.backend(), BackendId::SHA256);
        assert_eq!(c.backend_param(), 0);
        let s = Solution::new(c, 0, NonceWidth::U64);
        assert_eq!(s.backend, BackendId::SHA256);
    }

    #[test]
    fn memory_hard_digest_dispatches_through_the_backend() {
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let c = Challenge::from_parts_backend(
            CHALLENGE_VERSION,
            BackendId::MEMORY_HARD,
            1,
            [9u8; SEED_LEN],
            1_000,
            30_000,
            Difficulty::new(4).unwrap(),
            ip,
            [3u8; 32],
        );
        let s = Solution::new(c.clone(), 42, NonceWidth::U64);
        let mut preimage = c.preimage_prefix(ip);
        preimage.extend_from_slice(&NonceWidth::U64.encode(42));
        let want = aipow_crypto::memmix::shared_arena(1).walk(&preimage);
        assert_eq!(s.digest(ip), want);
        assert_ne!(
            s.digest(ip),
            aipow_crypto::sha256::Sha256::digest(&preimage),
            "memory-hard digests are not plain SHA-256"
        );
    }

    #[test]
    fn unknown_backend_digest_is_none_not_panic() {
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let c = Challenge::from_parts_backend(
            CHALLENGE_VERSION,
            BackendId(77),
            0,
            [9u8; SEED_LEN],
            1_000,
            30_000,
            Difficulty::ZERO,
            ip,
            [3u8; 32],
        );
        let s = Solution::new(c, 0, NonceWidth::U64);
        assert!(s.digest_with(ip, BackendRegistry::global()).is_none());
    }
}
