//! Time abstraction for issuance and expiry.
//!
//! Challenge freshness (timestamps, TTLs, replay windows) must be testable
//! without sleeping, so every component that reads a clock does it through
//! [`TimeSource`]. Production code uses [`SystemClock`]; tests and the
//! discrete-event simulator use [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of milliseconds since the Unix epoch.
pub trait TimeSource: Send + Sync {
    /// Current time in milliseconds since the Unix epoch.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl TimeSource for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("clock invariant: system time is after the Unix epoch")
            .as_millis() as u64
    }
}

/// A hand-advanced clock for tests and simulation.
///
/// Cloning yields a handle to the *same* underlying instant.
///
/// ```
/// use aipow_pow::time::{ManualClock, TimeSource};
/// let clock = ManualClock::at(1_000);
/// let handle = clock.clone();
/// clock.advance(500);
/// assert_eq!(handle.now_ms(), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock at `ms` milliseconds.
    pub fn at(ms: u64) -> Self {
        ManualClock {
            now: Arc::new(AtomicU64::new(ms)),
        }
    }

    /// Moves the clock forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set(&self, ms: u64) {
        self.now.store(ms, Ordering::SeqCst);
    }
}

impl TimeSource for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_plausible() {
        // After 2020-01-01 and before 2100-01-01, in ms.
        let now = SystemClock.now_ms();
        assert!(now > 1_577_836_800_000);
        assert!(now < 4_102_444_800_000);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(42);
        assert_eq!(c.now_ms(), 42);
        c.set(7);
        assert_eq!(c.now_ms(), 7);
    }

    #[test]
    fn clones_share_state() {
        let a = ManualClock::at(100);
        let b = a.clone();
        a.advance(1);
        assert_eq!(b.now_ms(), 101);
    }

    #[test]
    fn trait_object_usable() {
        let clock: Box<dyn TimeSource> = Box::new(ManualClock::at(5));
        assert_eq!(clock.now_ms(), 5);
    }
}
