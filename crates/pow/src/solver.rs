//! The puzzle solver (paper §II.4).
//!
//! “The data received from the puzzle generation module are concatenated
//! with the client's IP address to form a string that is not altered. To
//! this, a 32-bit string is added, which the client modifies upon each hash
//! function evaluation. The client performs evaluations on this input until
//! it finds an output with a prefix of d zeros.”
//!
//! The preimage prefix is fixed, so the solver pre-hashes it once and clones
//! the midstate per attempt — the per-nonce cost is one block-sized SHA-256
//! update plus finalization.

use crate::challenge::{Challenge, NonceWidth, Solution};
use aipow_crypto::sha256::Sha256;
use core::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options controlling a solve run.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Stop after this many attempts (None = run until the nonce space of
    /// the selected width exhausts).
    pub max_attempts: Option<u64>,
    /// Use a 32-bit nonce exactly as the paper specifies. The default is a
    /// 64-bit nonce, which cannot practically exhaust.
    pub strict_u32: bool,
    /// First nonce to try. Parallel solving stripes the space by giving
    /// each worker a different starting offset.
    pub start_nonce: u64,
    /// Step between successive nonces (1 for serial solving).
    pub nonce_step: u64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_attempts: None,
            strict_u32: false,
            start_nonce: 0,
            nonce_step: 1,
        }
    }
}

impl SolverOptions {
    /// Paper-faithful options: 32-bit nonce.
    pub fn strict() -> Self {
        SolverOptions {
            strict_u32: true,
            ..Self::default()
        }
    }

    fn width(&self) -> NonceWidth {
        if self.strict_u32 {
            NonceWidth::U32
        } else {
            NonceWidth::U64
        }
    }
}

/// Why a solve run terminated without a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The configured attempt budget was exhausted.
    BudgetExhausted {
        /// Attempts performed before giving up.
        attempts: u64,
    },
    /// The nonce space of the selected width was exhausted.
    NonceSpaceExhausted {
        /// Attempts performed before giving up.
        attempts: u64,
    },
    /// Another worker (or the caller) cancelled the run.
    Cancelled {
        /// Attempts performed before cancellation.
        attempts: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::BudgetExhausted { attempts } => {
                write!(f, "attempt budget exhausted after {attempts} attempts")
            }
            SolveError::NonceSpaceExhausted { attempts } => {
                write!(f, "nonce space exhausted after {attempts} attempts")
            }
            SolveError::Cancelled { attempts } => {
                write!(f, "solve cancelled after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The outcome of a successful solve run.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The found solution.
    pub solution: Solution,
    /// Number of hash evaluations performed (across all workers for
    /// parallel runs).
    pub attempts: u64,
    /// Wall-clock time spent solving.
    pub elapsed: Duration,
}

impl SolveReport {
    /// Effective hash rate of the run in hashes per second.
    pub fn hash_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return self.attempts as f64;
        }
        self.attempts as f64 / secs
    }
}

/// Solves `challenge` for `client_ip` on the calling thread.
///
/// # Errors
///
/// Returns [`SolveError::BudgetExhausted`] or
/// [`SolveError::NonceSpaceExhausted`] if no qualifying nonce was found
/// within the configured limits.
pub fn solve(
    challenge: &Challenge,
    client_ip: IpAddr,
    options: &SolverOptions,
) -> Result<SolveReport, SolveError> {
    let cancel = AtomicBool::new(false);
    solve_cancellable(challenge, client_ip, options, &cancel)
}

/// Solves with an external cancellation flag; checked every 1024 attempts.
///
/// # Errors
///
/// As [`solve`], plus [`SolveError::Cancelled`] when `cancel` becomes true.
pub fn solve_cancellable(
    challenge: &Challenge,
    client_ip: IpAddr,
    options: &SolverOptions,
    cancel: &AtomicBool,
) -> Result<SolveReport, SolveError> {
    let width = options.width();
    let need_bits = challenge.difficulty().bits() as u32;
    let prefix = challenge.preimage_prefix(client_ip);

    let mut midstate = Sha256::new();
    midstate.update(&prefix);

    let start = Instant::now();
    let mut attempts: u64 = 0;
    let mut nonce = options.start_nonce;
    let step = options.nonce_step.max(1);

    loop {
        if let Some(budget) = options.max_attempts {
            if attempts >= budget {
                return Err(SolveError::BudgetExhausted { attempts });
            }
        }
        // relaxed: pure cancellation flag; results travel through the
        // scoped join
        if attempts.is_multiple_of(1024) && cancel.load(Ordering::Relaxed) {
            return Err(SolveError::Cancelled { attempts });
        }

        let mut hasher = midstate.clone();
        hasher.update(&width.encode(nonce));
        attempts += 1;

        if hasher.finalize().leading_zero_bits() >= need_bits {
            return Ok(SolveReport {
                solution: Solution {
                    challenge: challenge.clone(),
                    nonce,
                    width,
                },
                attempts,
                elapsed: start.elapsed(),
            });
        }

        // Advance; detect exhaustion of the width-limited space (u64 wrap
        // or stepping past the u32 ceiling in strict mode).
        let next = nonce.wrapping_add(step);
        if next < nonce || !width.fits(next) {
            return Err(SolveError::NonceSpaceExhausted { attempts });
        }
        nonce = next;
    }
}

/// Solves using `threads` worker threads with striped nonce ranges. The
/// first worker to find a solution cancels the rest; total attempts are
/// aggregated across workers.
///
/// # Errors
///
/// Returns the first terminal error if every worker exhausted its share of
/// the space or budget without finding a solution.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn solve_parallel(
    challenge: &Challenge,
    client_ip: IpAddr,
    threads: usize,
    options: &SolverOptions,
) -> Result<SolveReport, SolveError> {
    assert!(threads > 0, "at least one solver thread required");
    if threads == 1 {
        return solve(challenge, client_ip, options);
    }

    let start = Instant::now();
    let found = AtomicBool::new(false);
    let total_attempts = AtomicU64::new(0);

    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let found = &found;
            let total_attempts = &total_attempts;
            let options = SolverOptions {
                start_nonce: options.start_nonce.wrapping_add(worker as u64),
                nonce_step: threads as u64,
                // Split any attempt budget across workers.
                max_attempts: options.max_attempts.map(|b| b.div_ceil(threads as u64)),
                strict_u32: options.strict_u32,
            };
            handles.push(scope.spawn(move |_| {
                let out = solve_cancellable(challenge, client_ip, &options, found);
                match &out {
                    Ok(report) => {
                        // relaxed: advisory stop signal; the solution is
                        // returned via join
                        found.store(true, Ordering::Relaxed);
                        // relaxed: RMW sum; read only after every worker
                        // has joined
                        total_attempts.fetch_add(report.attempts, Ordering::Relaxed);
                    }
                    Err(
                        SolveError::BudgetExhausted { attempts }
                        | SolveError::NonceSpaceExhausted { attempts }
                        | SolveError::Cancelled { attempts },
                    ) => {
                        // relaxed: RMW sum; read only after every worker
                        // has joined
                        total_attempts.fetch_add(*attempts, Ordering::Relaxed);
                    }
                }
                out
            }));
        }

        let mut best: Option<SolveReport> = None;
        let mut first_err: Option<SolveError> = None;
        for handle in handles {
            match handle
                .join()
                .expect("join invariant: solver workers do not panic")
            {
                Ok(report) => {
                    // Keep the first reported solution.
                    if best.is_none() {
                        best = Some(report);
                    }
                }
                Err(
                    e @ (SolveError::BudgetExhausted { .. }
                    | SolveError::NonceSpaceExhausted { .. }),
                ) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(SolveError::Cancelled { .. }) => {}
            }
        }
        (best, first_err)
    })
    .expect("scope invariant: solver workers do not panic");

    match result {
        (Some(mut report), _) => {
            // relaxed: workers have joined; no concurrent writers remain
            report.attempts = total_attempts.load(Ordering::Relaxed);
            report.elapsed = start.elapsed();
            Ok(report)
        }
        (None, Some(err)) => Err(err),
        (None, None) => Err(SolveError::Cancelled {
            // relaxed: workers have joined; no concurrent writers remain
            attempts: total_attempts.load(Ordering::Relaxed),
        }),
    }
}

/// Measures the solver's effective hash rate (hashes/second) by timing
/// `samples` midstate-clone-and-finalize evaluations on a synthetic
/// preimage. Used to calibrate simulation profiles and report native
/// numbers in EXPERIMENTS.md.
pub fn measure_hash_rate(samples: u64) -> f64 {
    let mut midstate = Sha256::new();
    midstate.update(b"aipow hash-rate calibration preimage / 203.0.113.7");
    let start = Instant::now();
    let mut acc = 0u32;
    for nonce in 0..samples {
        let mut h = midstate.clone();
        h.update(&nonce.to_be_bytes());
        acc ^= h.finalize().leading_zero_bits();
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Fold `acc` into the result decision so the loop cannot be optimized out.
    let denom = if elapsed > 0.0 { elapsed } else { 1e-9 };
    if acc == u32::MAX {
        return samples as f64 / denom - 1.0;
    }
    samples as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::Difficulty;
    use crate::issuer::Issuer;
    use std::net::Ipv4Addr;

    fn ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 42))
    }

    fn issue(d: u8) -> Challenge {
        Issuer::new(&[11u8; 32]).issue(ip(), Difficulty::new(d).unwrap())
    }

    #[test]
    fn solves_easy_puzzles() {
        for d in 0..=10 {
            let c = issue(d);
            let report = solve(&c, ip(), &SolverOptions::default()).expect("solvable");
            assert!(report.solution.meets_difficulty(ip()), "difficulty {d}");
            assert!(report.attempts >= 1);
        }
    }

    #[test]
    fn strict_u32_produces_u32_nonce() {
        let c = issue(8);
        let report = solve(&c, ip(), &SolverOptions::strict()).unwrap();
        assert_eq!(report.solution.width, NonceWidth::U32);
        assert!(report.solution.nonce <= u32::MAX as u64);
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn budget_exhaustion_reports_attempts() {
        // Difficulty 64 is unsolvable in 100 attempts with overwhelming
        // probability; the budget must trip first.
        let c = issue(64);
        let opts = SolverOptions {
            max_attempts: Some(100),
            ..Default::default()
        };
        match solve(&c, ip(), &opts) {
            Err(SolveError::BudgetExhausted { attempts }) => assert_eq!(attempts, 100),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_promptly() {
        let c = issue(64);
        let cancel = AtomicBool::new(true);
        match solve_cancellable(&c, ip(), &SolverOptions::default(), &cancel) {
            Err(SolveError::Cancelled { attempts }) => assert_eq!(attempts, 0),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn attempt_counts_track_difficulty() {
        // Over many puzzles, mean attempts at difficulty d should be near
        // 2^d. Use d=6 (mean 64) and allow generous slack.
        let issuer = Issuer::new(&[12u8; 32]);
        let mut total = 0u64;
        let n = 200;
        for _ in 0..n {
            let c = issuer.issue(ip(), Difficulty::new(6).unwrap());
            total += solve(&c, ip(), &SolverOptions::default()).unwrap().attempts;
        }
        let mean = total as f64 / n as f64;
        assert!(
            (32.0..=128.0).contains(&mean),
            "mean attempts {mean} far from 64"
        );
    }

    #[test]
    fn parallel_solution_verifies_and_matches_difficulty() {
        let c = issue(12);
        let report = solve_parallel(&c, ip(), 4, &SolverOptions::default()).unwrap();
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn parallel_budget_exhaustion() {
        let c = issue(64);
        let opts = SolverOptions {
            max_attempts: Some(1000),
            ..Default::default()
        };
        match solve_parallel(&c, ip(), 4, &opts) {
            Err(SolveError::BudgetExhausted { .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        let c = issue(1);
        let _ = solve_parallel(&c, ip(), 0, &SolverOptions::default());
    }

    #[test]
    fn nonce_step_stripes_disjointly() {
        // Two striped solvers must try disjoint nonce sets: verify the
        // parity of found nonces matches their stripe.
        let c = issue(4);
        let even = SolverOptions {
            start_nonce: 0,
            nonce_step: 2,
            ..Default::default()
        };
        let odd = SolverOptions {
            start_nonce: 1,
            nonce_step: 2,
            ..Default::default()
        };
        let re = solve(&c, ip(), &even).unwrap();
        let ro = solve(&c, ip(), &odd).unwrap();
        assert_eq!(re.solution.nonce % 2, 0);
        assert_eq!(ro.solution.nonce % 2, 1);
    }

    #[test]
    fn hash_rate_measurement_is_positive() {
        let rate = measure_hash_rate(20_000);
        assert!(rate > 10_000.0, "implausibly slow hash rate {rate}");
    }

    #[test]
    fn report_hash_rate_consistent() {
        let c = issue(10);
        let report = solve(&c, ip(), &SolverOptions::default()).unwrap();
        assert!(report.hash_rate() > 0.0);
    }

    #[test]
    fn error_display_messages() {
        assert!(SolveError::BudgetExhausted { attempts: 5 }
            .to_string()
            .contains("5"));
        assert!(SolveError::Cancelled { attempts: 0 }
            .to_string()
            .contains("cancelled"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Any solvable difficulty ≤ 12 yields a solution that meets
            /// its own difficulty check, regardless of key or IP.
            #[test]
            fn solve_then_check(d in 0u8..=12, key in any::<[u8; 32]>(), last_octet in any::<u8>()) {
                let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, last_octet));
                let issuer = Issuer::new(&key);
                let c = issuer.issue(client, Difficulty::new(d).unwrap());
                let report = solve(&c, client, &SolverOptions::default()).unwrap();
                prop_assert!(report.solution.meets_difficulty(client));
                // Note: a solution CAN transfer to another IP by chance
                // (probability 2^-d); binding is enforced by the verifier's
                // ClientMismatch check, tested deterministically elsewhere.
            }
        }
    }
}
