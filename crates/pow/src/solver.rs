//! The puzzle solver (paper §II.4).
//!
//! “The data received from the puzzle generation module are concatenated
//! with the client's IP address to form a string that is not altered. To
//! this, a 32-bit string is added, which the client modifies upon each hash
//! function evaluation. The client performs evaluations on this input until
//! it finds an output with a prefix of d zeros.”
//!
//! The solver dispatches the work function through the challenge's
//! [`PuzzleBackend`](crate::PuzzleBackend): each backend prepares a
//! [`SolveCursor`](crate::SolveCursor) once per challenge (the SHA-256
//! cursor holds the absorbed-prefix midstate, the memory-hard cursor its
//! arena handle) and is asked for one digest per nonce. For the SHA-256
//! backend with [`SolverOptions::lanes`] above 1 the solver additionally
//! broadcasts the midstate into the multi-buffer kernel and tries 4 or 8
//! nonces per compression loop, falling back to scalar stepping near budget
//! and nonce-space boundaries so the attempt accounting and the found nonce
//! are identical to a scalar run. Other backends always step scalar — the
//! memory-hard walk's loads are data-dependent and do not batch.

use crate::backend::{BackendId, BackendRegistry};
use crate::challenge::{Challenge, NonceWidth, Solution};
use aipow_crypto::sha256::Sha256;
use aipow_crypto::sha256_wide::{WideHasher, MAX_LANES};
use core::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options controlling a solve run.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Stop after this many attempts (None = run until the nonce space of
    /// the selected width exhausts).
    pub max_attempts: Option<u64>,
    /// Use a 32-bit nonce exactly as the paper specifies. The default is a
    /// 64-bit nonce, which cannot practically exhaust.
    pub strict_u32: bool,
    /// First nonce to try. Parallel solving stripes the space by giving
    /// each worker a different starting offset.
    pub start_nonce: u64,
    /// Step between successive nonces (1 for serial solving).
    pub nonce_step: u64,
    /// Nonces hashed per multi-buffer kernel round (clamped to
    /// 1..=[`MAX_LANES`]). 8 and above selects 8-wide rounds, 4..=7
    /// selects 4-wide, below 4 the scalar path. The search order,
    /// attempt count, and found nonce are identical at every width; the
    /// default of 1 keeps single calls scalar — pass
    /// [`aipow_crypto::auto_lanes`] for full throughput.
    pub lanes: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_attempts: None,
            strict_u32: false,
            start_nonce: 0,
            nonce_step: 1,
            lanes: 1,
        }
    }
}

impl SolverOptions {
    /// Paper-faithful options: 32-bit nonce.
    pub fn strict() -> Self {
        SolverOptions {
            strict_u32: true,
            ..Self::default()
        }
    }

    fn width(&self) -> NonceWidth {
        if self.strict_u32 {
            NonceWidth::U32
        } else {
            NonceWidth::U64
        }
    }
}

/// Why a solve run terminated without a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The configured attempt budget was exhausted.
    BudgetExhausted {
        /// Attempts performed before giving up.
        attempts: u64,
    },
    /// The nonce space of the selected width was exhausted.
    NonceSpaceExhausted {
        /// Attempts performed before giving up.
        attempts: u64,
    },
    /// Another worker (or the caller) cancelled the run.
    Cancelled {
        /// Attempts performed before cancellation.
        attempts: u64,
    },
    /// The challenge names a puzzle backend this solver has no
    /// implementation for.
    UnknownBackend {
        /// The unrecognized backend id.
        id: BackendId,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::BudgetExhausted { attempts } => {
                write!(f, "attempt budget exhausted after {attempts} attempts")
            }
            SolveError::NonceSpaceExhausted { attempts } => {
                write!(f, "nonce space exhausted after {attempts} attempts")
            }
            SolveError::Cancelled { attempts } => {
                write!(f, "solve cancelled after {attempts} attempts")
            }
            SolveError::UnknownBackend { id } => {
                write!(f, "challenge names unknown puzzle backend {id}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The outcome of a successful solve run.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The found solution.
    pub solution: Solution,
    /// Number of hash evaluations performed (across all workers for
    /// parallel runs).
    pub attempts: u64,
    /// Wall-clock time spent solving.
    pub elapsed: Duration,
}

impl SolveReport {
    /// Effective hash rate of the run in hashes per second.
    pub fn hash_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return self.attempts as f64;
        }
        self.attempts as f64 / secs
    }
}

/// Solves `challenge` for `client_ip` on the calling thread.
///
/// # Errors
///
/// Returns [`SolveError::BudgetExhausted`] or
/// [`SolveError::NonceSpaceExhausted`] if no qualifying nonce was found
/// within the configured limits.
pub fn solve(
    challenge: &Challenge,
    client_ip: IpAddr,
    options: &SolverOptions,
) -> Result<SolveReport, SolveError> {
    let cancel = AtomicBool::new(false);
    solve_cancellable(challenge, client_ip, options, &cancel)
}

/// Solves with an external cancellation flag; checked every 1024 attempts.
///
/// # Errors
///
/// As [`solve`], plus [`SolveError::Cancelled`] when `cancel` becomes true.
pub fn solve_cancellable(
    challenge: &Challenge,
    client_ip: IpAddr,
    options: &SolverOptions,
    cancel: &AtomicBool,
) -> Result<SolveReport, SolveError> {
    let width = options.width();
    let need_bits = challenge.difficulty().bits() as u32;
    let prefix = challenge.preimage_prefix(client_ip);
    let lanes = options.lanes.clamp(1, MAX_LANES);

    let backend =
        BackendRegistry::global()
            .get(challenge.backend())
            .ok_or(SolveError::UnknownBackend {
                id: challenge.backend(),
            })?;
    let mut cursor = backend.solve_cursor(challenge.backend_param(), &prefix);

    // The multi-buffer fast path is SHA-256-specific: it broadcasts the
    // absorbed-prefix midstate across lanes. Other backends step scalar
    // through their cursor.
    let midstate = (challenge.backend() == BackendId::SHA256 && lanes >= 4).then(|| {
        let mut midstate = Sha256::new();
        midstate.update(&prefix);
        midstate
    });

    let start = Instant::now();
    let mut attempts: u64 = 0;
    let mut nonce = options.start_nonce;
    let step = options.nonce_step.max(1);

    loop {
        if let Some(budget) = options.max_attempts {
            if attempts >= budget {
                return Err(SolveError::BudgetExhausted { attempts });
            }
        }
        // relaxed: pure cancellation flag; results travel through the
        // scoped join
        if attempts.is_multiple_of(1024) && cancel.load(Ordering::Relaxed) {
            return Err(SolveError::Cancelled { attempts });
        }

        // Pick the widest round the remaining budget and nonce space
        // allow; ragged tails drop to scalar so attempt accounting and
        // exhaustion points match a scalar run exactly.
        let remaining = options.max_attempts.map_or(u64::MAX, |b| b - attempts);
        let round = match &midstate {
            Some(_) if lanes >= 8 && remaining >= 8 && stripe_fits(nonce, step, 8, width) => 8usize,
            Some(_) if lanes >= 4 && remaining >= 4 && stripe_fits(nonce, step, 4, width) => 4,
            _ => 1,
        };
        let hit = match (round, &midstate) {
            (8, Some(mid)) => wide_round::<8>(mid, width, nonce, step, need_bits),
            (4, Some(mid)) => wide_round::<4>(mid, width, nonce, step, need_bits),
            _ => {
                let digest = cursor.attempt(&width.encode(nonce));
                (digest.leading_zero_bits() >= need_bits).then_some(0)
            }
        };

        match hit {
            Some(lane) => {
                // A scalar run would have stopped at this lane's nonce
                // after hashing the lanes before it.
                attempts += lane as u64 + 1;
                return Ok(SolveReport {
                    solution: Solution::new(challenge.clone(), nonce + lane as u64 * step, width),
                    attempts,
                    elapsed: start.elapsed(),
                });
            }
            None => {
                attempts += round as u64;
                // Advance; detect exhaustion of the width-limited space
                // (u64 wrap or stepping past the u32 ceiling in strict
                // mode).
                let next = step
                    .checked_mul(round as u64)
                    .and_then(|span| nonce.checked_add(span))
                    .filter(|n| width.fits(*n));
                match next {
                    Some(n) => nonce = n,
                    None => return Err(SolveError::NonceSpaceExhausted { attempts }),
                }
            }
        }
    }
}

/// Whether all `l` striped nonces starting at `base` stay inside the
/// width-limited nonce space (no u64 wrap, no u32 overflow in strict
/// mode).
fn stripe_fits(base: u64, step: u64, l: u64, width: NonceWidth) -> bool {
    step.checked_mul(l - 1)
        .and_then(|span| base.checked_add(span))
        .is_some_and(|last| width.fits(last))
}

/// Hashes the `L` striped nonces `base, base+step, ..` through one
/// multi-buffer round from the shared midstate and returns the first
/// lane meeting the difficulty, mirroring scalar search order.
fn wide_round<const L: usize>(
    midstate: &Sha256,
    width: NonceWidth,
    base: u64,
    step: u64,
    need_bits: u32,
) -> Option<usize> {
    let encodings: [Vec<u8>; L] = core::array::from_fn(|l| width.encode(base + l as u64 * step));
    let suffixes: [&[u8]; L] = core::array::from_fn(|l| encodings[l].as_slice());
    let mut hasher = WideHasher::<L>::from_midstate(midstate);
    hasher.update(suffixes);
    hasher
        .finalize()
        .iter()
        .position(|digest| digest.leading_zero_bits() >= need_bits)
}

/// Solves using `threads` worker threads with striped nonce ranges. The
/// first worker to find a solution cancels the rest; total attempts are
/// aggregated across workers.
///
/// # Errors
///
/// Returns the first terminal error if every worker exhausted its share of
/// the space or budget without finding a solution.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn solve_parallel(
    challenge: &Challenge,
    client_ip: IpAddr,
    threads: usize,
    options: &SolverOptions,
) -> Result<SolveReport, SolveError> {
    assert!(threads > 0, "at least one solver thread required");
    if threads == 1 {
        return solve(challenge, client_ip, options);
    }

    let start = Instant::now();
    let found = AtomicBool::new(false);
    let total_attempts = AtomicU64::new(0);

    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let found = &found;
            let total_attempts = &total_attempts;
            let options = SolverOptions {
                start_nonce: options.start_nonce.wrapping_add(worker as u64),
                nonce_step: threads as u64,
                // Split any attempt budget across workers.
                max_attempts: options.max_attempts.map(|b| b.div_ceil(threads as u64)),
                strict_u32: options.strict_u32,
                lanes: options.lanes,
            };
            handles.push(scope.spawn(move |_| {
                let out = solve_cancellable(challenge, client_ip, &options, found);
                match &out {
                    Ok(report) => {
                        // relaxed: advisory stop signal; the solution is
                        // returned via join
                        found.store(true, Ordering::Relaxed);
                        // relaxed: RMW sum; read only after every worker
                        // has joined
                        total_attempts.fetch_add(report.attempts, Ordering::Relaxed);
                    }
                    Err(
                        SolveError::BudgetExhausted { attempts }
                        | SolveError::NonceSpaceExhausted { attempts }
                        | SolveError::Cancelled { attempts },
                    ) => {
                        // relaxed: RMW sum; read only after every worker
                        // has joined
                        total_attempts.fetch_add(*attempts, Ordering::Relaxed);
                    }
                    Err(SolveError::UnknownBackend { .. }) => {}
                }
                out
            }));
        }

        let mut best: Option<SolveReport> = None;
        let mut first_err: Option<SolveError> = None;
        for handle in handles {
            match handle
                .join()
                .expect("join invariant: solver workers do not panic")
            {
                Ok(report) => {
                    // Keep the first reported solution.
                    if best.is_none() {
                        best = Some(report);
                    }
                }
                Err(
                    e @ (SolveError::BudgetExhausted { .. }
                    | SolveError::NonceSpaceExhausted { .. }
                    | SolveError::UnknownBackend { .. }),
                ) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(SolveError::Cancelled { .. }) => {}
            }
        }
        (best, first_err)
    })
    .expect("scope invariant: solver workers do not panic");

    match result {
        (Some(mut report), _) => {
            // relaxed: workers have joined; no concurrent writers remain
            report.attempts = total_attempts.load(Ordering::Relaxed);
            report.elapsed = start.elapsed();
            Ok(report)
        }
        (None, Some(err)) => Err(err),
        (None, None) => Err(SolveError::Cancelled {
            // relaxed: workers have joined; no concurrent writers remain
            attempts: total_attempts.load(Ordering::Relaxed),
        }),
    }
}

/// Measures the solver's effective hash rate (hashes/second) by timing
/// `samples` midstate-clone-and-finalize evaluations on a synthetic
/// preimage. Used to calibrate simulation profiles and report native
/// numbers in EXPERIMENTS.md.
pub fn measure_hash_rate(samples: u64) -> f64 {
    measure_hash_rate_lanes(samples, 1)
}

/// As [`measure_hash_rate`], but evaluating `lanes` nonces per
/// multi-buffer kernel round (clamped to 1..=[`MAX_LANES`]; below 4 the
/// scalar path is timed). The lane-sweep example and `aipow solve` use
/// this to report the throughput each width actually achieves.
pub fn measure_hash_rate_lanes(samples: u64, lanes: usize) -> f64 {
    let lanes = lanes.clamp(1, MAX_LANES);
    let mut midstate = Sha256::new();
    midstate.update(b"aipow hash-rate calibration preimage / 203.0.113.7");
    let start = Instant::now();
    let mut acc = 0u32;
    let mut nonce = 0u64;
    while nonce < samples {
        let left = samples - nonce;
        if lanes >= 8 && left >= 8 {
            acc ^= measure_round::<8>(&midstate, nonce);
            nonce += 8;
        } else if lanes >= 4 && left >= 4 {
            acc ^= measure_round::<4>(&midstate, nonce);
            nonce += 4;
        } else {
            let mut h = midstate.clone();
            h.update(&nonce.to_be_bytes());
            acc ^= h.finalize().leading_zero_bits();
            nonce += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Fold `acc` into the result decision so the loop cannot be optimized out.
    let denom = if elapsed > 0.0 { elapsed } else { 1e-9 };
    if acc == u32::MAX {
        return samples as f64 / denom - 1.0;
    }
    samples as f64 / denom
}

fn measure_round<const L: usize>(midstate: &Sha256, base: u64) -> u32 {
    let encodings: [[u8; 8]; L] = core::array::from_fn(|l| (base + l as u64).to_be_bytes());
    let suffixes: [&[u8]; L] = core::array::from_fn(|l| encodings[l].as_slice());
    let mut hasher = WideHasher::<L>::from_midstate(midstate);
    hasher.update(suffixes);
    hasher
        .finalize()
        .iter()
        .fold(0, |acc, digest| acc ^ digest.leading_zero_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::Difficulty;
    use crate::issuer::Issuer;
    use std::net::Ipv4Addr;

    fn ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 42))
    }

    fn issue(d: u8) -> Challenge {
        Issuer::new(&[11u8; 32]).issue(ip(), Difficulty::new(d).unwrap())
    }

    #[test]
    fn solves_easy_puzzles() {
        for d in 0..=10 {
            let c = issue(d);
            let report = solve(&c, ip(), &SolverOptions::default()).expect("solvable");
            assert!(report.solution.meets_difficulty(ip()), "difficulty {d}");
            assert!(report.attempts >= 1);
        }
    }

    #[test]
    fn strict_u32_produces_u32_nonce() {
        let c = issue(8);
        let report = solve(&c, ip(), &SolverOptions::strict()).unwrap();
        assert_eq!(report.solution.width, NonceWidth::U32);
        assert!(report.solution.nonce <= u32::MAX as u64);
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn budget_exhaustion_reports_attempts() {
        // Difficulty 64 is unsolvable in 100 attempts with overwhelming
        // probability; the budget must trip first.
        let c = issue(64);
        let opts = SolverOptions {
            max_attempts: Some(100),
            ..Default::default()
        };
        match solve(&c, ip(), &opts) {
            Err(SolveError::BudgetExhausted { attempts }) => assert_eq!(attempts, 100),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_promptly() {
        let c = issue(64);
        let cancel = AtomicBool::new(true);
        match solve_cancellable(&c, ip(), &SolverOptions::default(), &cancel) {
            Err(SolveError::Cancelled { attempts }) => assert_eq!(attempts, 0),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn attempt_counts_track_difficulty() {
        // Over many puzzles, mean attempts at difficulty d should be near
        // 2^d. Use d=6 (mean 64) and allow generous slack.
        let issuer = Issuer::new(&[12u8; 32]);
        let mut total = 0u64;
        let n = 200;
        for _ in 0..n {
            let c = issuer.issue(ip(), Difficulty::new(6).unwrap());
            total += solve(&c, ip(), &SolverOptions::default()).unwrap().attempts;
        }
        let mean = total as f64 / n as f64;
        assert!(
            (32.0..=128.0).contains(&mean),
            "mean attempts {mean} far from 64"
        );
    }

    #[test]
    fn parallel_solution_verifies_and_matches_difficulty() {
        let c = issue(12);
        let report = solve_parallel(&c, ip(), 4, &SolverOptions::default()).unwrap();
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn parallel_budget_exhaustion() {
        let c = issue(64);
        let opts = SolverOptions {
            max_attempts: Some(1000),
            ..Default::default()
        };
        match solve_parallel(&c, ip(), 4, &opts) {
            Err(SolveError::BudgetExhausted { .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        let c = issue(1);
        let _ = solve_parallel(&c, ip(), 0, &SolverOptions::default());
    }

    #[test]
    fn nonce_step_stripes_disjointly() {
        // Two striped solvers must try disjoint nonce sets: verify the
        // parity of found nonces matches their stripe.
        let c = issue(4);
        let even = SolverOptions {
            start_nonce: 0,
            nonce_step: 2,
            ..Default::default()
        };
        let odd = SolverOptions {
            start_nonce: 1,
            nonce_step: 2,
            ..Default::default()
        };
        let re = solve(&c, ip(), &even).unwrap();
        let ro = solve(&c, ip(), &odd).unwrap();
        assert_eq!(re.solution.nonce % 2, 0);
        assert_eq!(ro.solution.nonce % 2, 1);
    }

    #[test]
    fn hash_rate_measurement_is_positive() {
        let rate = measure_hash_rate(20_000);
        assert!(rate > 10_000.0, "implausibly slow hash rate {rate}");
        for lanes in [4, 8] {
            let rate = measure_hash_rate_lanes(20_000, lanes);
            assert!(rate > 10_000.0, "implausibly slow {lanes}-lane rate {rate}");
        }
    }

    #[test]
    fn wide_search_finds_the_same_nonce_with_the_same_attempt_count() {
        for d in [0u8, 3, 6, 9] {
            let c = issue(d);
            let scalar = solve(&c, ip(), &SolverOptions::default()).unwrap();
            for lanes in [2, 4, 7, 8] {
                let wide = solve(
                    &c,
                    ip(),
                    &SolverOptions {
                        lanes,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    wide.solution.nonce, scalar.solution.nonce,
                    "lanes {lanes} difficulty {d}"
                );
                assert_eq!(wide.attempts, scalar.attempts);
                assert!(wide.solution.meets_difficulty(ip()));
            }
        }
    }

    #[test]
    fn wide_striped_search_respects_the_stripe() {
        let c = issue(5);
        let opts = SolverOptions {
            start_nonce: 3,
            nonce_step: 4,
            lanes: 8,
            ..Default::default()
        };
        let report = solve(&c, ip(), &opts).unwrap();
        assert_eq!(report.solution.nonce % 4, 3);
        let scalar = solve(
            &c,
            ip(),
            &SolverOptions {
                lanes: 1,
                ..opts.clone()
            },
        )
        .unwrap();
        assert_eq!(report.solution.nonce, scalar.solution.nonce);
        assert_eq!(report.attempts, scalar.attempts);
    }

    #[test]
    fn wide_budget_exhaustion_is_exact_on_ragged_budgets() {
        // 103 is not a multiple of 4 or 8: the tail must fall back to
        // scalar stepping so the budget trips at exactly 103 attempts.
        let c = issue(64);
        for lanes in [4, 8] {
            let opts = SolverOptions {
                max_attempts: Some(103),
                lanes,
                ..Default::default()
            };
            match solve(&c, ip(), &opts) {
                Err(SolveError::BudgetExhausted { attempts }) => assert_eq!(attempts, 103),
                other => panic!("expected budget exhaustion, got {other:?}"),
            }
        }
    }

    #[test]
    fn wide_strict_u32_exhausts_exactly_at_the_ceiling() {
        // 11 nonces remain before the u32 ceiling: one 8-wide round fits,
        // the rest must go scalar, matching the scalar attempt count.
        let c = issue(64);
        let opts = SolverOptions {
            strict_u32: true,
            start_nonce: u32::MAX as u64 - 10,
            lanes: 8,
            ..Default::default()
        };
        match solve(&c, ip(), &opts) {
            Err(SolveError::NonceSpaceExhausted { attempts }) => assert_eq!(attempts, 11),
            other => panic!("expected nonce-space exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn wide_parallel_solution_verifies() {
        let c = issue(10);
        let opts = SolverOptions {
            lanes: 8,
            ..Default::default()
        };
        let report = solve_parallel(&c, ip(), 4, &opts).unwrap();
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn report_hash_rate_consistent() {
        let c = issue(10);
        let report = solve(&c, ip(), &SolverOptions::default()).unwrap();
        assert!(report.hash_rate() > 0.0);
    }

    #[test]
    fn error_display_messages() {
        assert!(SolveError::BudgetExhausted { attempts: 5 }
            .to_string()
            .contains("5"));
        assert!(SolveError::Cancelled { attempts: 0 }
            .to_string()
            .contains("cancelled"));
        assert!(SolveError::UnknownBackend { id: BackendId(77) }
            .to_string()
            .contains("backend#77"));
    }

    #[test]
    fn memory_hard_challenge_solves_through_the_backend_seam() {
        let issuer = Issuer::new(&[11u8; 32]).with_backend_param(BackendId::MEMORY_HARD, 1);
        let c = issuer.issue_backend(ip(), Difficulty::new(6).unwrap(), BackendId::MEMORY_HARD);
        let report = solve(&c, ip(), &SolverOptions::default()).expect("solvable");
        assert_eq!(report.solution.backend, BackendId::MEMORY_HARD);
        assert!(report.solution.meets_difficulty(ip()));
    }

    #[test]
    fn unknown_backend_is_a_terminal_solve_error() {
        let c = Challenge::from_parts_backend(
            1,
            BackendId(99),
            0,
            [3u8; 16],
            1_000,
            30_000,
            Difficulty::new(4).unwrap(),
            ip(),
            [0u8; 32],
        );
        let err = solve(&c, ip(), &SolverOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::UnknownBackend { id: BackendId(99) });
        let err = solve_parallel(&c, ip(), 2, &SolverOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::UnknownBackend { id: BackendId(99) });
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Any solvable difficulty ≤ 12 yields a solution that meets
            /// its own difficulty check, regardless of key or IP.
            #[test]
            fn solve_then_check(d in 0u8..=12, key in any::<[u8; 32]>(), last_octet in any::<u8>()) {
                let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, last_octet));
                let issuer = Issuer::new(&key);
                let c = issuer.issue(client, Difficulty::new(d).unwrap());
                let report = solve(&c, client, &SolverOptions::default()).unwrap();
                prop_assert!(report.solution.meets_difficulty(client));
                // Note: a solution CAN transfer to another IP by chance
                // (probability 2^-d); binding is enforced by the verifier's
                // ClientMismatch check, tested deterministically elsewhere.
            }
        }
    }
}
