//! The [`Difficulty`] newtype: leading-zero-bit requirement of a puzzle.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Puzzle difficulty in leading zero bits, `0 ..= 64`.
///
/// A `d`-difficult puzzle requires a SHA-256 digest whose first `d` bits are
/// zero; a uniformly random digest satisfies this with probability `2^-d`,
/// so solving takes an expected `2^d` hash evaluations.
///
/// The ceiling of 64 bits is far beyond anything a policy should assign
/// (2^64 hashes ≈ centuries on one core) but keeps [`Target`] arithmetic
/// exact in `u64`.
///
/// ```
/// use aipow_pow::Difficulty;
/// let d = Difficulty::new(10)?;
/// assert_eq!(d.bits(), 10);
/// assert_eq!(d.expected_attempts(), 1024.0);
/// # Ok::<(), aipow_pow::difficulty::DifficultyError>(())
/// ```
///
/// [`Target`]: crate::target::Target
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Difficulty(u8);

/// Highest representable difficulty, in bits.
pub const MAX_DIFFICULTY_BITS: u8 = 64;

/// Error returned when constructing a [`Difficulty`] above
/// [`MAX_DIFFICULTY_BITS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DifficultyError {
    /// The rejected bit count.
    pub bits: u16,
}

impl fmt::Display for DifficultyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "difficulty of {} bits exceeds the maximum of {} bits",
            self.bits, MAX_DIFFICULTY_BITS
        )
    }
}

impl std::error::Error for DifficultyError {}

impl Difficulty {
    /// The zero difficulty: every digest qualifies, puzzles are free.
    pub const ZERO: Difficulty = Difficulty(0);

    /// Creates a difficulty of `bits` leading zero bits.
    ///
    /// # Errors
    ///
    /// Returns [`DifficultyError`] if `bits > 64`.
    pub fn new(bits: u8) -> Result<Self, DifficultyError> {
        if bits > MAX_DIFFICULTY_BITS {
            Err(DifficultyError { bits: bits as u16 })
        } else {
            Ok(Difficulty(bits))
        }
    }

    /// Creates a difficulty, saturating at [`MAX_DIFFICULTY_BITS`]. Useful
    /// for policies that compute difficulties arithmetically and prefer
    /// clamping over failure.
    pub fn saturating(bits: u32) -> Self {
        Difficulty(bits.min(MAX_DIFFICULTY_BITS as u32) as u8)
    }

    /// The number of required leading zero bits.
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// Expected number of hash evaluations to solve: `2^d`.
    pub fn expected_attempts(&self) -> f64 {
        (self.0 as f64).exp2()
    }

    /// Median number of hash evaluations to solve. The attempt count is
    /// geometric with success probability `2^-d`, so the median is
    /// `⌈-ln 2 / ln(1 - 2^-d)⌉ ≈ 0.693 · 2^d`.
    pub fn median_attempts(&self) -> f64 {
        if self.0 == 0 {
            return 1.0;
        }
        let p = (-(self.0 as f64)).exp2();
        (0.5f64.ln() / (1.0 - p).ln()).ceil()
    }

    /// Probability that a single uniformly random digest qualifies: `2^-d`.
    pub fn success_probability(&self) -> f64 {
        (-(self.0 as f64)).exp2()
    }

    /// Adds `extra` bits, saturating at the maximum.
    pub fn saturating_add(&self, extra: u8) -> Self {
        Difficulty::saturating(self.0 as u32 + extra as u32)
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-difficult", self.0)
    }
}

impl TryFrom<u8> for Difficulty {
    type Error = DifficultyError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        Difficulty::new(bits)
    }
}

impl From<Difficulty> for u8 {
    fn from(d: Difficulty) -> u8 {
        d.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Difficulty::new(0).is_ok());
        assert!(Difficulty::new(64).is_ok());
        assert!(Difficulty::new(65).is_err());
        assert_eq!(Difficulty::new(200).unwrap_err().bits, 200);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Difficulty::saturating(1000).bits(), 64);
        assert_eq!(Difficulty::saturating(12).bits(), 12);
    }

    #[test]
    fn expected_attempts_doubles_per_bit() {
        let d8 = Difficulty::new(8).unwrap();
        let d9 = Difficulty::new(9).unwrap();
        assert_eq!(d8.expected_attempts(), 256.0);
        assert_eq!(d9.expected_attempts() / d8.expected_attempts(), 2.0);
    }

    #[test]
    fn median_is_ln2_fraction_of_mean() {
        let d = Difficulty::new(15).unwrap();
        let ratio = d.median_attempts() / d.expected_attempts();
        assert!((ratio - 0.693).abs() < 0.01, "ratio {ratio}");
        assert_eq!(Difficulty::ZERO.median_attempts(), 1.0);
    }

    #[test]
    fn success_probability_inverse_of_mean() {
        let d = Difficulty::new(12).unwrap();
        assert!((d.success_probability() * d.expected_attempts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_caps() {
        let d = Difficulty::new(60).unwrap();
        assert_eq!(d.saturating_add(10).bits(), 64);
        assert_eq!(Difficulty::ZERO.saturating_add(5).bits(), 5);
    }

    #[test]
    fn display_matches_paper_terminology() {
        assert_eq!(Difficulty::new(5).unwrap().to_string(), "5-difficult");
    }

    #[test]
    fn ordering_follows_bits() {
        assert!(Difficulty::new(3).unwrap() < Difficulty::new(4).unwrap());
    }

    #[test]
    fn conversions() {
        let d: Difficulty = 7u8.try_into().unwrap();
        assert_eq!(u8::from(d), 7);
        assert!(Difficulty::try_from(70u8).is_err());
    }

    #[test]
    fn error_display() {
        let err = Difficulty::new(99).unwrap_err();
        assert!(err.to_string().contains("99"));
    }
}
