//! Text encoding of challenges and solutions (“stamps”).
//!
//! The paper deploys over HTTP, where binary frames are awkward: defenders
//! typically hand the puzzle to the client in a header or cookie (compare
//! hashcash's `X-Hashcash` stamps and kaPoW's reputation-PoW headers, the
//! paper's reference \[2\]). A stamp is a single printable token:
//!
//! ```text
//! aipow1:<seed>:<issued_at>:<ttl>:<difficulty>:<backend>:<param>:<client_ip>:<tag>
//! aipow1s:<challenge-stamp-fields>:<backend>:<width>:<nonce>
//! ```
//!
//! Fields are lowercase hex (integers big-endian, minimal width is not
//! required); the IP is its standard textual form. `<backend>` is the
//! puzzle-backend id byte and `<param>` its parameter byte (e.g. the
//! memory-hard arena size in MiB); the solution repeats the backend id it
//! solved so a verifier can reject challenge/solution disagreements.
//! Stamps round-trip exactly: the MAC is computed over the decoded fields
//! (backend bytes included), so a tampered stamp fails verification just
//! like a tampered frame.

use crate::backend::BackendId;
use crate::challenge::{Challenge, NonceWidth, Solution, SEED_LEN};
use crate::difficulty::Difficulty;
use aipow_crypto::hex;
use core::fmt;
use std::net::IpAddr;

/// Stamp prefix for a challenge.
pub const CHALLENGE_PREFIX: &str = "aipow1";
/// Stamp prefix for a solution.
pub const SOLUTION_PREFIX: &str = "aipow1s";

/// Why a stamp failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseStampError {
    /// The leading token was not a known stamp prefix.
    BadPrefix,
    /// Wrong number of `:`-separated fields.
    BadFieldCount {
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to decode.
    BadField {
        /// Zero-based field index.
        index: usize,
        /// What the field should have been.
        expected: &'static str,
    },
}

impl fmt::Display for ParseStampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseStampError::BadPrefix => write!(f, "stamp prefix is not recognized"),
            ParseStampError::BadFieldCount { got, expected } => {
                write!(f, "stamp has {got} fields, expected {expected}")
            }
            ParseStampError::BadField { index, expected } => {
                write!(f, "stamp field {index} is not {expected}")
            }
        }
    }
}

impl std::error::Error for ParseStampError {}

impl Challenge {
    /// Renders the challenge as a printable stamp.
    pub fn to_stamp(&self) -> String {
        format!(
            "{CHALLENGE_PREFIX}:{}:{:x}:{:x}:{:x}:{:x}:{:x}:{}:{}",
            hex::encode(self.seed()),
            self.issued_at_ms(),
            self.ttl_ms(),
            self.difficulty().bits(),
            self.backend().as_u8(),
            self.backend_param(),
            self.client_ip(),
            hex::encode(self.tag()),
        )
    }

    /// Parses a stamp produced by [`Challenge::to_stamp`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseStampError`] for malformed input; an authentic-
    /// looking but forged stamp parses fine and is rejected later by the
    /// verifier's MAC check.
    pub fn from_stamp(stamp: &str) -> Result<Self, ParseStampError> {
        let fields: Vec<&str> = stamp.split(':').collect();
        // IPv6 textual form contains ':'; fields beyond the fixed eight
        // are the IP's internal colons, so split from both ends instead.
        if fields.len() < 9 {
            return Err(ParseStampError::BadFieldCount {
                got: fields.len(),
                expected: 9,
            });
        }
        if fields[0] != CHALLENGE_PREFIX {
            return Err(ParseStampError::BadPrefix);
        }

        let seed_bytes = hex::decode(fields[1]).map_err(|_| ParseStampError::BadField {
            index: 1,
            expected: "hex seed",
        })?;
        let seed: [u8; SEED_LEN] =
            seed_bytes
                .try_into()
                .map_err(|_| ParseStampError::BadField {
                    index: 1,
                    expected: "a 16-byte hex seed",
                })?;
        let issued_at_ms =
            u64::from_str_radix(fields[2], 16).map_err(|_| ParseStampError::BadField {
                index: 2,
                expected: "a hex timestamp",
            })?;
        let ttl_ms = u64::from_str_radix(fields[3], 16).map_err(|_| ParseStampError::BadField {
            index: 3,
            expected: "a hex ttl",
        })?;
        let bits = u8::from_str_radix(fields[4], 16).map_err(|_| ParseStampError::BadField {
            index: 4,
            expected: "a hex difficulty",
        })?;
        let difficulty = Difficulty::new(bits).map_err(|_| ParseStampError::BadField {
            index: 4,
            expected: "a difficulty of at most 64 bits",
        })?;
        // Any backend byte parses; an id the verifier has not registered
        // is rejected there, not here.
        let backend = u8::from_str_radix(fields[5], 16).map_err(|_| ParseStampError::BadField {
            index: 5,
            expected: "a hex backend id",
        })?;
        let backend_param =
            u8::from_str_radix(fields[6], 16).map_err(|_| ParseStampError::BadField {
                index: 6,
                expected: "a hex backend parameter",
            })?;

        // The IP occupies fields[7..len-1] re-joined (IPv6 colons).
        let tag_field = fields[fields.len() - 1];
        let ip_text = fields[7..fields.len() - 1].join(":");
        let client_ip: IpAddr = ip_text.parse().map_err(|_| ParseStampError::BadField {
            index: 7,
            expected: "an ip address",
        })?;

        let tag_bytes = hex::decode(tag_field).map_err(|_| ParseStampError::BadField {
            index: 8,
            expected: "a hex tag",
        })?;
        let tag: [u8; 32] = tag_bytes
            .try_into()
            .map_err(|_| ParseStampError::BadField {
                index: 8,
                expected: "a 32-byte hex tag",
            })?;

        Ok(Challenge::from_parts_backend(
            crate::challenge::CHALLENGE_VERSION,
            BackendId(backend),
            backend_param,
            seed,
            issued_at_ms,
            ttl_ms,
            difficulty,
            client_ip,
            tag,
        ))
    }
}

impl Solution {
    /// Renders the solution as a printable stamp.
    pub fn to_stamp(&self) -> String {
        let challenge_stamp = self.challenge.to_stamp();
        let body = challenge_stamp
            .strip_prefix(CHALLENGE_PREFIX)
            .expect("issuer invariant: challenge stamps carry their prefix");
        let width = match self.width {
            NonceWidth::U32 => 4,
            NonceWidth::U64 => 8,
        };
        format!(
            "{SOLUTION_PREFIX}{body}:{:x}:{width:x}:{:x}",
            self.backend.as_u8(),
            self.nonce
        )
    }

    /// Parses a stamp produced by [`Solution::to_stamp`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseStampError`] for malformed input.
    pub fn from_stamp(stamp: &str) -> Result<Self, ParseStampError> {
        let body = stamp
            .strip_prefix(SOLUTION_PREFIX)
            .ok_or(ParseStampError::BadPrefix)?;
        // Split the trailing `:backend:width:nonce` off, the rest is a
        // challenge stamp body.
        let mut parts = body.rsplitn(4, ':');
        let nonce_text = parts.next().ok_or(ParseStampError::BadFieldCount {
            got: 0,
            expected: 12,
        })?;
        let width_text = parts.next().ok_or(ParseStampError::BadFieldCount {
            got: 1,
            expected: 12,
        })?;
        let backend_text = parts.next().ok_or(ParseStampError::BadFieldCount {
            got: 2,
            expected: 12,
        })?;
        let challenge_body = parts.next().ok_or(ParseStampError::BadFieldCount {
            got: 3,
            expected: 12,
        })?;

        let challenge = Challenge::from_stamp(&format!("{CHALLENGE_PREFIX}{challenge_body}"))?;
        let backend =
            u8::from_str_radix(backend_text, 16).map_err(|_| ParseStampError::BadField {
                index: 9,
                expected: "a hex backend id",
            })?;
        let width = match width_text {
            "4" => NonceWidth::U32,
            "8" => NonceWidth::U64,
            _ => {
                return Err(ParseStampError::BadField {
                    index: 10,
                    expected: "nonce width 4 or 8",
                })
            }
        };
        let nonce = u64::from_str_radix(nonce_text, 16).map_err(|_| ParseStampError::BadField {
            index: 11,
            expected: "a hex nonce",
        })?;
        if !width.fits(nonce) {
            return Err(ParseStampError::BadField {
                index: 11,
                expected: "a nonce fitting its width",
            });
        }

        Ok(Solution {
            challenge,
            nonce,
            width,
            backend: BackendId(backend),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issuer::Issuer;
    use crate::solver::{self, SolverOptions};
    use crate::verifier::Verifier;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn ip4() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, 4))
    }

    #[test]
    fn challenge_stamp_roundtrip() {
        let c = Issuer::new(&[1u8; 32]).issue(ip4(), Difficulty::new(9).unwrap());
        let stamp = c.to_stamp();
        assert!(stamp.starts_with("aipow1:"));
        assert_eq!(Challenge::from_stamp(&stamp).unwrap(), c);
    }

    #[test]
    fn ipv6_challenge_stamp_roundtrip() {
        let ip = IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 7));
        let c = Issuer::new(&[2u8; 32]).issue(ip, Difficulty::new(3).unwrap());
        let parsed = Challenge::from_stamp(&c.to_stamp()).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.client_ip(), ip);
    }

    #[test]
    fn solution_stamp_roundtrip_and_verify() {
        let key = [3u8; 32];
        let c = Issuer::new(&key).issue(ip4(), Difficulty::new(8).unwrap());
        let solution = solver::solve(&c, ip4(), &SolverOptions::default())
            .unwrap()
            .solution;
        let parsed = Solution::from_stamp(&solution.to_stamp()).unwrap();
        assert_eq!(parsed, solution);
        assert!(Verifier::new(&key).verify(&parsed, ip4()).is_ok());
    }

    #[test]
    fn strict_u32_solution_stamp_roundtrip() {
        let c = Issuer::new(&[4u8; 32]).issue(ip4(), Difficulty::new(6).unwrap());
        let solution = solver::solve(&c, ip4(), &SolverOptions::strict())
            .unwrap()
            .solution;
        let parsed = Solution::from_stamp(&solution.to_stamp()).unwrap();
        assert_eq!(parsed.width, NonceWidth::U32);
        assert_eq!(parsed, solution);
    }

    #[test]
    fn tampered_stamp_fails_mac_not_parse() {
        let key = [5u8; 32];
        let c = Issuer::new(&key).issue(ip4(), Difficulty::new(2).unwrap());
        // Raise the TTL in the stamp text.
        let stamp = c.to_stamp();
        let mut fields: Vec<String> = stamp.split(':').map(String::from).collect();
        fields[3] = "ffffffff".into();
        let forged = Challenge::from_stamp(&fields.join(":")).unwrap();
        let solution = solver::solve(&forged, ip4(), &SolverOptions::default())
            .unwrap()
            .solution;
        assert_eq!(
            Verifier::new(&key).verify(&solution, ip4()),
            Err(crate::verifier::VerifyError::BadMac)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            Challenge::from_stamp("nonsense"),
            Err(ParseStampError::BadFieldCount {
                got: 1,
                expected: 9
            })
        );
        assert_eq!(
            Challenge::from_stamp("wrong:aa:1:1:1:0:8:127.0.0.1:bb"),
            Err(ParseStampError::BadPrefix)
        );
        assert!(matches!(
            Challenge::from_stamp("aipow1:zz:1:1:1:0:8:127.0.0.1:bb"),
            Err(ParseStampError::BadField { index: 1, .. })
        ));
        assert!(matches!(
            Challenge::from_stamp(
                "aipow1:00112233445566778899aabbccddeeff:1:1:99:0:8:127.0.0.1:bb"
            ),
            Err(ParseStampError::BadField { index: 4, .. })
        ));
        assert!(matches!(
            Challenge::from_stamp(
                "aipow1:00112233445566778899aabbccddeeff:1:1:4:zz:8:127.0.0.1:bb"
            ),
            Err(ParseStampError::BadField { index: 5, .. })
        ));
        assert_eq!(
            Solution::from_stamp("aipow1:not-a-solution"),
            Err(ParseStampError::BadPrefix)
        );
    }

    #[test]
    fn solution_stamp_rejects_overflowing_u32_nonce() {
        let c = Issuer::new(&[6u8; 32]).issue(ip4(), Difficulty::ZERO);
        let solution = Solution::new(c, 7, NonceWidth::U64);
        let stamp = solution.to_stamp();
        // Swap the width marker to 4 while keeping a >u32 nonce.
        let stamp = stamp.replace(":8:7", &format!(":4:{:x}", u64::MAX));
        assert!(matches!(
            Solution::from_stamp(&stamp),
            Err(ParseStampError::BadField { index: 11, .. })
        ));
    }

    #[test]
    fn memory_hard_stamp_roundtrip_and_verify() {
        let key = [8u8; 32];
        let issuer = Issuer::new(&key).with_backend_param(BackendId::MEMORY_HARD, 1);
        let c = issuer.issue_backend(ip4(), Difficulty::new(4).unwrap(), BackendId::MEMORY_HARD);
        let parsed = Challenge::from_stamp(&c.to_stamp()).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.backend(), BackendId::MEMORY_HARD);
        assert_eq!(parsed.backend_param(), 1);
        let solution = solver::solve(&c, ip4(), &SolverOptions::default())
            .unwrap()
            .solution;
        let parsed = Solution::from_stamp(&solution.to_stamp()).unwrap();
        assert_eq!(parsed, solution);
        assert_eq!(parsed.backend, BackendId::MEMORY_HARD);
        assert!(Verifier::new(&key).verify(&parsed, ip4()).is_ok());
    }

    #[test]
    fn stamps_are_header_safe() {
        let c = Issuer::new(&[7u8; 32]).issue(ip4(), Difficulty::new(20).unwrap());
        let stamp = c.to_stamp();
        assert!(stamp
            .chars()
            .all(|ch| ch.is_ascii_graphic() && ch != ',' && ch != ';'));
    }

    #[test]
    fn error_display() {
        assert!(!ParseStampError::BadPrefix.to_string().is_empty());
        assert!(ParseStampError::BadFieldCount {
            got: 2,
            expected: 7
        }
        .to_string()
        .contains('2'));
    }
}
