//! The puzzle verification module (paper §II.5).
//!
//! “Puzzle verification is \[a\] light weight block used to verify the
//! client's solution and offer response if correct solution is returned.”
//!
//! Verification performs, in order: version check, backend checks (known
//! id, challenge/solution agreement, parameter bounds), difficulty-cap
//! check, MAC authentication (constant-time), client binding, freshness
//! window, replay check, and finally the single work-function evaluation
//! that checks the work itself — dispatched through the challenge's
//! [`PuzzleBackend`](crate::backend::PuzzleBackend). For the default
//! SHA-256 backend total cost is two hash-block pipelines regardless of
//! the puzzle difficulty — measured in bench `verify_cost` (claim C6).

use crate::backend::{BackendId, BackendRegistry};
use crate::challenge::{Solution, CHALLENGE_VERSION};
use crate::difficulty::Difficulty;
use crate::replay::ReplayGuard;
use crate::time::{SystemClock, TimeSource};
use aipow_crypto::hkdf;
use aipow_crypto::hmac::HmacKey;
use aipow_crypto::sha256::Digest;
use aipow_crypto::{ct, sha256_wide};
use core::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default tolerated forward clock skew between issuance and verification
/// hosts (they are the same host in this framework, but the bound is kept
/// explicit and configurable).
pub const DEFAULT_MAX_SKEW_MS: u64 = 2_000;

/// Reasons a solution can be rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The challenge version is unknown to this verifier.
    UnsupportedVersion {
        /// Version found in the challenge.
        got: u8,
    },
    /// The challenge names a puzzle backend this verifier has not
    /// registered.
    UnknownBackend {
        /// Backend id found in the challenge.
        got: BackendId,
    },
    /// The solution claims a different puzzle backend than the challenge
    /// it answers (a client solved the wrong work function).
    BackendMismatch {
        /// Backend the challenge was issued for.
        challenge: BackendId,
        /// Backend the solution claims to have solved.
        solution: BackendId,
    },
    /// The challenge carries a backend parameter the backend rejects
    /// (e.g. a memory-hard arena size outside its bounds).
    InvalidBackendParam {
        /// Parameter byte found in the challenge.
        got: u8,
    },
    /// The challenge difficulty exceeds the verifier's acceptance cap
    /// (defense against forged extreme difficulties DoS-ing the verifier's
    /// replay cache with long-lived entries).
    DifficultyTooHigh {
        /// Difficulty carried by the challenge.
        got: Difficulty,
        /// The verifier's cap.
        cap: Difficulty,
    },
    /// The HMAC tag does not authenticate the challenge under this
    /// verifier's key: not a challenge we issued, or tampered.
    BadMac,
    /// The solution was submitted from a different IP than the challenge
    /// was issued to.
    ClientMismatch,
    /// The challenge timestamp is further in the future than the allowed
    /// clock skew.
    NotYetValid,
    /// The challenge TTL has elapsed.
    Expired {
        /// Expiry instant of the challenge (ms since epoch).
        expired_at_ms: u64,
        /// Verification instant (ms since epoch).
        now_ms: u64,
    },
    /// The challenge seed was already redeemed.
    Replayed,
    /// The digest does not carry enough leading zero bits.
    InsufficientWork {
        /// Zero bits achieved by the submitted nonce.
        got_bits: u32,
        /// Zero bits required by the challenge.
        need_bits: u32,
    },
    /// The nonce does not fit the declared nonce width.
    MalformedNonce,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnsupportedVersion { got } => {
                write!(f, "unsupported challenge version {got}")
            }
            VerifyError::UnknownBackend { got } => {
                write!(f, "challenge names unregistered puzzle backend {got}")
            }
            VerifyError::BackendMismatch {
                challenge,
                solution,
            } => {
                write!(
                    f,
                    "solution solved backend {solution} but the challenge was issued for {challenge}"
                )
            }
            VerifyError::InvalidBackendParam { got } => {
                write!(f, "backend rejects challenge parameter {got}")
            }
            VerifyError::DifficultyTooHigh { got, cap } => {
                write!(f, "challenge difficulty {got} exceeds verifier cap {cap}")
            }
            VerifyError::BadMac => write!(f, "challenge authentication failed"),
            VerifyError::ClientMismatch => {
                write!(
                    f,
                    "solution submitted from a different client than issued to"
                )
            }
            VerifyError::NotYetValid => write!(f, "challenge timestamp is in the future"),
            VerifyError::Expired {
                expired_at_ms,
                now_ms,
            } => write!(f, "challenge expired at {expired_at_ms}, now {now_ms}"),
            VerifyError::Replayed => write!(f, "challenge seed already redeemed"),
            VerifyError::InsufficientWork {
                got_bits,
                need_bits,
            } => {
                write!(
                    f,
                    "solution has {got_bits} leading zero bits, needs {need_bits}"
                )
            }
            VerifyError::MalformedNonce => write!(f, "nonce does not fit its declared width"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Proof that a solution was accepted: handed to the resource layer, which
/// releases the response to the client (paper Figure 1, steps 6–7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedToken {
    /// The client whose work was verified.
    pub client_ip: IpAddr,
    /// The difficulty that was paid.
    pub difficulty: Difficulty,
    /// The redeemed challenge seed.
    pub seed: [u8; 16],
    /// When verification happened (ms since epoch).
    pub verified_at_ms: u64,
}

/// The solution verifier.
///
/// Construct with the same master key as the [`Issuer`](crate::Issuer).
///
/// ```
/// use aipow_pow::{Difficulty, Issuer, Verifier, solver, VerifyError};
/// # use std::net::{IpAddr, Ipv4Addr};
/// let key = [9u8; 32];
/// let (issuer, verifier) = (Issuer::new(&key), Verifier::new(&key));
/// let ip = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1));
/// let c = issuer.issue(ip, Difficulty::new(5).unwrap());
/// let sol = solver::solve(&c, ip, &Default::default()).unwrap().solution;
/// assert!(verifier.verify(&sol, ip).is_ok());
/// // A second redemption of the same seed is a replay:
/// assert_eq!(verifier.verify(&sol, ip), Err(VerifyError::Replayed));
/// ```
pub struct Verifier {
    /// The challenge-MAC key with its HMAC schedule precomputed: every
    /// verification authenticates under the same key, so the schedule
    /// runs once here instead of once per solution.
    mac_key: HmacKey,
    replay: ReplayGuard,
    clock: Arc<dyn TimeSource>,
    max_skew_ms: u64,
    difficulty_cap: Difficulty,
    /// Puzzle backends this verifier accepts; challenges naming any other
    /// id are rejected with [`VerifyError::UnknownBackend`].
    registry: Arc<BackendRegistry>,
    /// Lane width for batched hash work (MACs and work digests) in
    /// [`PreparedVerify::verify_many`]: 1 forces the scalar path, 4/8
    /// select the multi-buffer kernel width. Atomic so a server can
    /// apply configuration to an already-shared verifier; it is a
    /// performance knob only — every width computes identical results.
    verify_lanes: AtomicUsize,
}

impl Verifier {
    /// Creates a verifier from the issuer's master key, with the system
    /// clock, default skew tolerance, a difficulty cap of 40 bits and the
    /// default replay capacity.
    pub fn new(master_key: &[u8; 32]) -> Self {
        Self::with_clock(master_key, Arc::new(SystemClock))
    }

    /// Creates a verifier with an explicit time source.
    pub fn with_clock(master_key: &[u8; 32], clock: Arc<dyn TimeSource>) -> Self {
        Verifier {
            mac_key: HmacKey::new(&hkdf::derive_key32(master_key, "aipow/challenge-mac")),
            replay: ReplayGuard::default(),
            clock,
            max_skew_ms: DEFAULT_MAX_SKEW_MS,
            difficulty_cap: Difficulty::saturating(40),
            registry: Arc::new(BackendRegistry::standard()),
            verify_lanes: AtomicUsize::new(sha256_wide::auto_lanes()),
        }
    }

    /// Replaces the accepted puzzle-backend registry (defaults to the
    /// standard registry: SHA-256 and memory-hard). Must cover every
    /// backend the paired [`Issuer`](crate::Issuer) routes to.
    pub fn with_backends(mut self, registry: Arc<BackendRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the replay guard (e.g. to size its capacity).
    pub fn with_replay_guard(mut self, guard: ReplayGuard) -> Self {
        self.replay = guard;
        self
    }

    /// Sets the maximum accepted challenge difficulty.
    pub fn with_difficulty_cap(mut self, cap: Difficulty) -> Self {
        self.difficulty_cap = cap;
        self
    }

    /// Sets the tolerated forward clock skew in milliseconds.
    pub fn with_max_skew_ms(mut self, skew: u64) -> Self {
        self.max_skew_ms = skew;
        self
    }

    /// Sets the batched-verification lane width (clamped to
    /// 1..=[`sha256_wide::MAX_LANES`]); 1 disables the wide kernel.
    pub fn with_verify_lanes(mut self, lanes: usize) -> Self {
        *self.verify_lanes.get_mut() = lanes.clamp(1, sha256_wide::MAX_LANES);
        self
    }

    /// Adjusts the lane width on a live (possibly shared) verifier.
    pub fn set_verify_lanes(&self, lanes: usize) {
        let clamped = lanes.clamp(1, sha256_wide::MAX_LANES);
        // relaxed: an independent perf knob — no other memory depends on
        // it, every width computes identical results, and stale reads
        // merely run one batch at the previous width.
        self.verify_lanes.store(clamped, Ordering::Relaxed);
    }

    /// The current batched-verification lane width.
    pub fn verify_lanes(&self) -> usize {
        // relaxed: see `set_verify_lanes`.
        self.verify_lanes.load(Ordering::Relaxed)
    }

    /// Access to the replay guard (for metrics/ablation).
    pub fn replay_guard(&self) -> &ReplayGuard {
        &self.replay
    }

    /// Verifies `solution` as submitted by `claimed_ip` at the current time.
    ///
    /// # Errors
    ///
    /// Returns the first applicable [`VerifyError`]; checks are ordered
    /// cheapest-first so malformed floods are rejected with minimal work.
    pub fn verify(
        &self,
        solution: &Solution,
        claimed_ip: IpAddr,
    ) -> Result<VerifiedToken, VerifyError> {
        self.verify_at(solution, claimed_ip, self.clock.now_ms())
    }

    /// Verifies at an explicit time (tests, simulation).
    ///
    /// # Errors
    ///
    /// As [`Verifier::verify`].
    pub fn verify_at(
        &self,
        solution: &Solution,
        claimed_ip: IpAddr,
        now_ms: u64,
    ) -> Result<VerifiedToken, VerifyError> {
        self.prepare_at(now_ms).verify_one(solution, claimed_ip)
    }

    /// Hoists the per-call verification context — the clock reading and
    /// the derived skew window — out of a loop over many solutions. The
    /// returned handle verifies each solution as if
    /// [`verify_at`](Self::verify_at) were called at `now_ms` (the HMAC
    /// key schedule is hoisted further still, to construction).
    pub fn prepare_at(&self, now_ms: u64) -> PreparedVerify<'_> {
        PreparedVerify {
            verifier: self,
            now_ms,
            not_before_horizon: now_ms.saturating_add(self.max_skew_ms),
        }
    }

    /// Verifies a batch of `(solution, claimed_ip)` submissions at the
    /// current time, reading the clock and building the skew window once
    /// for the whole batch. Outcomes are returned in submission order;
    /// replay marking happens in that same order, so duplicate seeds
    /// within one batch behave exactly as sequential submissions (first
    /// valid redemption wins, the rest are [`VerifyError::Replayed`]).
    pub fn verify_batch(
        &self,
        submissions: &[(Solution, IpAddr)],
    ) -> Vec<Result<VerifiedToken, VerifyError>> {
        let prepared = self.prepare_at(self.clock.now_ms());
        let refs: Vec<(&Solution, IpAddr)> = submissions
            .iter()
            .map(|(solution, ip)| (solution, *ip))
            .collect();
        prepared.verify_many(&refs)
    }
}

/// A verification context with the per-call fixed costs hoisted: one
/// clock reading and one skew-window computation shared by every
/// solution verified through it. Produced by [`Verifier::prepare_at`].
#[derive(Debug, Clone, Copy)]
pub struct PreparedVerify<'a> {
    verifier: &'a Verifier,
    now_ms: u64,
    /// `now_ms + max_skew_ms`, precomputed: challenges issued later than
    /// this are not yet valid.
    not_before_horizon: u64,
}

impl PreparedVerify<'_> {
    /// The instant this context verifies at.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Verifies one solution under the prepared context.
    ///
    /// # Errors
    ///
    /// As [`Verifier::verify`].
    pub fn verify_one(
        &self,
        solution: &Solution,
        claimed_ip: IpAddr,
    ) -> Result<VerifiedToken, VerifyError> {
        let challenge = &solution.challenge;
        let now_ms = self.now_ms;

        if challenge.version() != CHALLENGE_VERSION {
            return Err(VerifyError::UnsupportedVersion {
                got: challenge.version(),
            });
        }
        let backend =
            self.verifier
                .registry
                .get(challenge.backend())
                .ok_or(VerifyError::UnknownBackend {
                    got: challenge.backend(),
                })?;
        if solution.backend != challenge.backend() {
            return Err(VerifyError::BackendMismatch {
                challenge: challenge.backend(),
                solution: solution.backend,
            });
        }
        if !backend.validate_param(challenge.backend_param()) {
            return Err(VerifyError::InvalidBackendParam {
                got: challenge.backend_param(),
            });
        }
        if challenge.difficulty() > self.verifier.difficulty_cap {
            return Err(VerifyError::DifficultyTooHigh {
                got: challenge.difficulty(),
                cap: self.verifier.difficulty_cap,
            });
        }
        if !solution.width.fits(solution.nonce) {
            return Err(VerifyError::MalformedNonce);
        }
        if !self
            .verifier
            .mac_key
            .verify(&challenge.authenticated_bytes(), challenge.tag())
        {
            return Err(VerifyError::BadMac);
        }
        if challenge.client_ip() != claimed_ip {
            return Err(VerifyError::ClientMismatch);
        }
        if challenge.issued_at_ms() > self.not_before_horizon {
            return Err(VerifyError::NotYetValid);
        }
        if challenge.is_expired(now_ms) {
            return Err(VerifyError::Expired {
                expired_at_ms: challenge.expires_at_ms(),
                now_ms,
            });
        }

        // The work check precedes replay marking so that invalid work does
        // not consume the seed.
        let mut preimage = challenge.preimage_prefix(claimed_ip);
        preimage.extend_from_slice(&solution.width.encode(solution.nonce));
        let got_bits = backend
            .work_digest(challenge.backend_param(), &preimage)
            .leading_zero_bits();
        let need_bits = challenge.difficulty().bits() as u32;
        if got_bits < need_bits {
            return Err(VerifyError::InsufficientWork {
                got_bits,
                need_bits,
            });
        }

        if !self.verifier.replay.check_and_insert(
            challenge.seed(),
            challenge.expires_at_ms(),
            now_ms,
        ) {
            return Err(VerifyError::Replayed);
        }

        Ok(VerifiedToken {
            client_ip: claimed_ip,
            difficulty: challenge.difficulty(),
            seed: *challenge.seed(),
            verified_at_ms: now_ms,
        })
    }

    /// Verifies a batch of submissions under the prepared context,
    /// routing the two hash-bound checks — challenge MACs and work
    /// digests — through the multi-buffer SHA-256 kernel at the
    /// verifier's configured lane width.
    ///
    /// Observably identical to calling [`verify_one`](Self::verify_one)
    /// on each submission in order: checks are staged (cheap shape
    /// checks, then batched MACs, then binding/freshness, then batched
    /// work digests, then replay marking) but each submission still
    /// fails with the error its *first* failing check would report, and
    /// replay marking happens in submission order as the final step, so
    /// duplicate seeds within one batch behave exactly as sequential
    /// submissions. The staging is sound because the MAC and work checks
    /// read no mutable verifier state.
    ///
    /// Same-length preimages are grouped into full 8- or 4-wide lanes by
    /// the kernel; ragged tails and odd shapes fall back to scalar
    /// hashing per message. A lane width of 1 (or a batch of fewer than
    /// two live submissions) takes the scalar path outright.
    pub fn verify_many(
        &self,
        submissions: &[(&Solution, IpAddr)],
    ) -> Vec<Result<VerifiedToken, VerifyError>> {
        let lanes = self.verifier.verify_lanes();
        if lanes <= 1 || submissions.len() < 2 {
            return submissions
                .iter()
                .map(|(solution, ip)| self.verify_one(solution, *ip))
                .collect();
        }

        let cap = self.verifier.difficulty_cap;
        let mut out: Vec<Option<Result<VerifiedToken, VerifyError>>> =
            vec![None; submissions.len()];

        // Stage 1: cheap per-item shape checks.
        let mut live: Vec<usize> = Vec::with_capacity(submissions.len());
        for (i, (solution, _)) in submissions.iter().enumerate() {
            let challenge = &solution.challenge;
            if challenge.version() != CHALLENGE_VERSION {
                out[i] = Some(Err(VerifyError::UnsupportedVersion {
                    got: challenge.version(),
                }));
            } else if let Some(err) = {
                match self.verifier.registry.get(challenge.backend()) {
                    None => Some(VerifyError::UnknownBackend {
                        got: challenge.backend(),
                    }),
                    Some(_) if solution.backend != challenge.backend() => {
                        Some(VerifyError::BackendMismatch {
                            challenge: challenge.backend(),
                            solution: solution.backend,
                        })
                    }
                    Some(backend) if !backend.validate_param(challenge.backend_param()) => {
                        Some(VerifyError::InvalidBackendParam {
                            got: challenge.backend_param(),
                        })
                    }
                    Some(_) => None,
                }
            } {
                out[i] = Some(Err(err));
            } else if challenge.difficulty() > cap {
                out[i] = Some(Err(VerifyError::DifficultyTooHigh {
                    got: challenge.difficulty(),
                    cap,
                }));
            } else if !solution.width.fits(solution.nonce) {
                out[i] = Some(Err(VerifyError::MalformedNonce));
            } else {
                live.push(i);
            }
        }

        // Stage 2: challenge MACs for all survivors, hashed wide.
        let auth: Vec<Vec<u8>> = live
            .iter()
            .map(|&i| submissions[i].0.challenge.authenticated_bytes())
            .collect();
        let msgs: Vec<&[u8]> = auth.iter().map(Vec::as_slice).collect();
        let macs = self.verifier.mac_key.mac_batch(&msgs, lanes);
        let mut bound: Vec<usize> = Vec::with_capacity(live.len());
        for (expect, &i) in macs.iter().zip(&live) {
            let challenge = &submissions[i].0.challenge;
            if !ct::eq(expect.as_bytes(), challenge.tag()) {
                out[i] = Some(Err(VerifyError::BadMac));
            } else {
                bound.push(i);
            }
        }

        // Stage 3: client binding and freshness.
        let mut workable: Vec<usize> = Vec::with_capacity(bound.len());
        for &i in &bound {
            let (solution, claimed_ip) = &submissions[i];
            let challenge = &solution.challenge;
            if challenge.client_ip() != *claimed_ip {
                out[i] = Some(Err(VerifyError::ClientMismatch));
            } else if challenge.issued_at_ms() > self.not_before_horizon {
                out[i] = Some(Err(VerifyError::NotYetValid));
            } else if challenge.is_expired(self.now_ms) {
                out[i] = Some(Err(VerifyError::Expired {
                    expired_at_ms: challenge.expires_at_ms(),
                    now_ms: self.now_ms,
                }));
            } else {
                workable.push(i);
            }
        }

        // Stage 4: work digests, dispatched per backend. Each backend
        // hashes its own group through its batched hook — the SHA-256
        // backend routes to the wide kernel, others take their scalar
        // path — and results scatter back into `workable` order.
        let preimages: Vec<Vec<u8>> = workable
            .iter()
            .map(|&i| {
                let (solution, claimed_ip) = &submissions[i];
                let mut preimage = solution.challenge.preimage_prefix(*claimed_ip);
                preimage.extend_from_slice(&solution.width.encode(solution.nonce));
                preimage
            })
            .collect();
        let mut groups: Vec<(BackendId, Vec<usize>)> = Vec::new();
        for (pos, &i) in workable.iter().enumerate() {
            let id = submissions[i].0.challenge.backend();
            match groups.iter_mut().find(|(group_id, _)| *group_id == id) {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((id, vec![pos])),
            }
        }
        let mut digests: Vec<Option<Digest>> = vec![None; workable.len()];
        for (id, positions) in &groups {
            let backend = self
                .verifier
                .registry
                .get(*id)
                .expect("staging invariant: unknown backends were rejected in stage 1");
            let params: Vec<u8> = positions
                .iter()
                .map(|&pos| submissions[workable[pos]].0.challenge.backend_param())
                .collect();
            let msgs: Vec<&[u8]> = positions
                .iter()
                .map(|&pos| preimages[pos].as_slice())
                .collect();
            let group_digests = backend.work_digest_batch(&params, &msgs, lanes);
            for (digest, &pos) in group_digests.into_iter().zip(positions) {
                digests[pos] = Some(digest);
            }
        }
        let digests: Vec<Digest> = digests
            .into_iter()
            .map(|d| d.expect("staging invariant: every workable submission is hashed"))
            .collect();

        // Stage 5: judge work, then mark replays in submission order.
        // `workable` is ascending, so this preserves first-wins semantics
        // for duplicate seeds within the batch.
        for (digest, &i) in digests.iter().zip(&workable) {
            let (solution, claimed_ip) = &submissions[i];
            let challenge = &solution.challenge;
            let got_bits = digest.leading_zero_bits();
            let need_bits = challenge.difficulty().bits() as u32;
            out[i] = Some(if got_bits < need_bits {
                Err(VerifyError::InsufficientWork {
                    got_bits,
                    need_bits,
                })
            } else if !self.verifier.replay.check_and_insert(
                challenge.seed(),
                challenge.expires_at_ms(),
                self.now_ms,
            ) {
                Err(VerifyError::Replayed)
            } else {
                Ok(VerifiedToken {
                    client_ip: *claimed_ip,
                    difficulty: challenge.difficulty(),
                    seed: *challenge.seed(),
                    verified_at_ms: self.now_ms,
                })
            });
        }

        out.into_iter()
            .map(|o| {
                o.expect("staging invariant: every submission is resolved by exactly one stage")
            })
            .collect()
    }
}

impl core::fmt::Debug for Verifier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Verifier")
            .field("max_skew_ms", &self.max_skew_ms)
            .field("difficulty_cap", &self.difficulty_cap)
            .field("verify_lanes", &self.verify_lanes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::{Challenge, NonceWidth};
    use crate::issuer::Issuer;
    use crate::solver::{self, SolverOptions};
    use crate::time::ManualClock;
    use std::net::Ipv4Addr;

    const KEY: [u8; 32] = [21u8; 32];

    fn ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10))
    }

    fn setup(d: u8) -> (Issuer, Verifier, ManualClock, Solution) {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock.clone()));
        let c = issuer.issue(ip(), Difficulty::new(d).unwrap());
        let sol = solver::solve(&c, ip(), &SolverOptions::default())
            .unwrap()
            .solution;
        (issuer, verifier, clock, sol)
    }

    #[test]
    fn valid_solution_verifies() {
        let (_, verifier, _, sol) = setup(8);
        let token = verifier.verify(&sol, ip()).unwrap();
        assert_eq!(token.client_ip, ip());
        assert_eq!(token.difficulty.bits(), 8);
        assert_eq!(&token.seed, sol.challenge.seed());
    }

    #[test]
    fn replay_is_rejected() {
        let (_, verifier, _, sol) = setup(4);
        verifier.verify(&sol, ip()).unwrap();
        assert_eq!(verifier.verify(&sol, ip()), Err(VerifyError::Replayed));
    }

    #[test]
    fn batch_verify_matches_sequential_and_marks_replays_in_order() {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
        let other = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 99));

        let solve = |d: u8| {
            let c = issuer.issue(ip(), Difficulty::new(d).unwrap());
            solver::solve(&c, ip(), &SolverOptions::default())
                .unwrap()
                .solution
        };
        let a = solve(4);
        let b = solve(2);
        // valid, wrong-ip, valid, duplicate-of-first (intra-batch replay).
        let submissions = vec![
            (a.clone(), ip()),
            (b.clone(), other),
            (b.clone(), ip()),
            (a.clone(), ip()),
        ];
        let outcomes = verifier.verify_batch(&submissions);
        assert_eq!(outcomes.len(), 4);
        let token = outcomes[0].as_ref().unwrap();
        assert_eq!(token.client_ip, ip());
        assert_eq!(token.verified_at_ms, 1_000_000);
        assert_eq!(outcomes[1], Err(VerifyError::ClientMismatch));
        assert!(outcomes[2].is_ok());
        assert_eq!(outcomes[3], Err(VerifyError::Replayed));
        // The batch consumed both seeds: later singles see replays.
        assert_eq!(verifier.verify(&a, ip()), Err(VerifyError::Replayed));
        assert_eq!(verifier.verify(&b, ip()), Err(VerifyError::Replayed));
        // Empty batches are fine.
        assert!(verifier.verify_batch(&[]).is_empty());
    }

    #[test]
    fn wide_batch_outcomes_match_scalar_for_every_error_class() {
        // One submission per check outcome, mixed V4/V6 clients so the
        // kernel sees ragged preimage lengths, verified at every lane
        // width. All widths must agree with the scalar (lanes = 1) path
        // item for item, including intra-batch replay ordering.
        let build = |lanes: usize| {
            let clock = ManualClock::at(1_000_000);
            let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()))
                .with_backend_param(crate::backend::BackendId::MEMORY_HARD, 1);
            let verifier = Verifier::with_clock(&KEY, Arc::new(clock)).with_verify_lanes(lanes);
            (issuer, verifier)
        };
        let v6 = IpAddr::V6("2001:db8::7".parse().unwrap());
        let other = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 99));
        let (issuer, _) = build(1);
        let solve = |ip: IpAddr, d: u8| {
            let c = issuer.issue(ip, Difficulty::new(d).unwrap());
            solver::solve(&c, ip, &SolverOptions::default())
                .unwrap()
                .solution
        };

        let good4 = solve(ip(), 4);
        let good6 = solve(v6, 3);
        let c = &good4.challenge;
        let mut tag = *c.tag();
        tag[7] ^= 0x80;
        let bad_mac = Solution {
            challenge: Challenge::from_parts(
                c.version(),
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                tag,
            ),
            ..good4.clone()
        };
        let bad_version = Solution {
            challenge: Challenge::from_parts(
                99,
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                *c.tag(),
            ),
            ..good4.clone()
        };
        let bad_width = Solution {
            nonce: u32::MAX as u64 + 1,
            width: NonceWidth::U32,
            ..good4.clone()
        };
        let expired = {
            let c = issuer.issue_at(ip(), Difficulty::ZERO, 1_000);
            solver::solve(&c, ip(), &SolverOptions::default())
                .unwrap()
                .solution
        };
        let future = {
            let c = issuer.issue_at(ip(), Difficulty::ZERO, 1_010_000);
            solver::solve(&c, ip(), &SolverOptions::default())
                .unwrap()
                .solution
        };
        let weak = {
            let c = issuer.issue(ip(), Difficulty::new(20).unwrap());
            let mut nonce = 0u64;
            loop {
                let cand = Solution::new(c.clone(), nonce, NonceWidth::U64);
                if !cand.meets_difficulty(ip()) {
                    break cand;
                }
                nonce += 1;
            }
        };
        // Backend-seam outcomes: a valid memory-hard solution, an unknown
        // backend id, a challenge/solution backend disagreement, and an
        // out-of-bounds arena parameter.
        use crate::backend::BackendId;
        let good_mh = {
            let c = issuer.issue_backend(ip(), Difficulty::new(3).unwrap(), BackendId::MEMORY_HARD);
            solver::solve(&c, ip(), &SolverOptions::default())
                .unwrap()
                .solution
        };
        let unknown_backend = Solution {
            challenge: Challenge::from_parts_backend(
                c.version(),
                BackendId(77),
                0,
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                *c.tag(),
            ),
            backend: BackendId(77),
            ..good4.clone()
        };
        let mismatch = Solution {
            backend: BackendId::MEMORY_HARD,
            ..good4.clone()
        };
        let bad_param = Solution {
            challenge: Challenge::from_parts_backend(
                c.version(),
                BackendId::MEMORY_HARD,
                200,
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                *c.tag(),
            ),
            backend: BackendId::MEMORY_HARD,
            ..good4.clone()
        };

        let submissions = vec![
            (good4.clone(), ip()),
            (bad_version, ip()),
            (good6.clone(), v6),
            (bad_mac, ip()),
            (good6.clone(), other), // ClientMismatch
            (bad_width, ip()),
            (expired, ip()),
            (future, ip()),
            (weak, ip()),
            (good4.clone(), ip()), // intra-batch replay
            (good_mh, ip()),
            (unknown_backend, ip()),
            (mismatch, ip()),
            (bad_param, ip()),
        ];

        let (_, scalar) = build(1);
        let want = scalar.verify_batch(&submissions);
        assert!(want[0].is_ok());
        assert!(matches!(
            want[1],
            Err(VerifyError::UnsupportedVersion { got: 99 })
        ));
        assert!(want[2].is_ok());
        assert_eq!(want[3], Err(VerifyError::BadMac));
        assert_eq!(want[4], Err(VerifyError::ClientMismatch));
        assert_eq!(want[5], Err(VerifyError::MalformedNonce));
        assert!(matches!(want[6], Err(VerifyError::Expired { .. })));
        assert_eq!(want[7], Err(VerifyError::NotYetValid));
        assert!(matches!(want[8], Err(VerifyError::InsufficientWork { .. })));
        assert_eq!(want[9], Err(VerifyError::Replayed));
        assert!(want[10].is_ok(), "memory-hard solution through the seam");
        assert_eq!(
            want[11],
            Err(VerifyError::UnknownBackend { got: BackendId(77) })
        );
        assert_eq!(
            want[12],
            Err(VerifyError::BackendMismatch {
                challenge: BackendId::SHA256,
                solution: BackendId::MEMORY_HARD,
            })
        );
        assert_eq!(want[13], Err(VerifyError::InvalidBackendParam { got: 200 }));

        for lanes in 2..=sha256_wide::MAX_LANES {
            let (_, wide) = build(lanes);
            assert_eq!(wide.verify_lanes(), lanes);
            assert_eq!(
                wide.verify_batch(&submissions),
                want,
                "lane width {lanes} diverged from scalar"
            );
        }
    }

    #[test]
    fn verify_lanes_is_clamped_and_runtime_settable() {
        let (_, verifier, _, _) = setup(0);
        let verifier = verifier.with_verify_lanes(0);
        assert_eq!(verifier.verify_lanes(), 1);
        verifier.set_verify_lanes(64);
        assert_eq!(verifier.verify_lanes(), sha256_wide::MAX_LANES);
        verifier.set_verify_lanes(4);
        assert_eq!(verifier.verify_lanes(), 4);
    }

    #[test]
    fn prepared_verify_pins_the_clock_reading() {
        let (_, verifier, clock, sol) = setup(2);
        let prepared = verifier.prepare_at(clock.now_ms());
        assert_eq!(prepared.now_ms(), 1_000_000);
        // The wall clock races ahead past the TTL mid-batch; the prepared
        // context still verifies at its pinned instant.
        clock.advance(crate::issuer::DEFAULT_TTL_MS + 1);
        let token = prepared.verify_one(&sol, ip()).unwrap();
        assert_eq!(token.verified_at_ms, 1_000_000);
    }

    #[test]
    fn different_nonce_for_same_seed_is_still_replay() {
        // Even a *different valid solution* to the same challenge must not
        // redeem twice.
        let (_, verifier, _, sol) = setup(2);
        verifier.verify(&sol, ip()).unwrap();
        let next = solver::solve(
            &sol.challenge,
            ip(),
            &SolverOptions {
                start_nonce: sol.nonce + 1,
                ..Default::default()
            },
        )
        .unwrap()
        .solution;
        assert_ne!(next.nonce, sol.nonce);
        assert_eq!(verifier.verify(&next, ip()), Err(VerifyError::Replayed));
    }

    #[test]
    fn expired_challenge_rejected() {
        let (_, verifier, clock, sol) = setup(4);
        clock.advance(crate::issuer::DEFAULT_TTL_MS + 1);
        match verifier.verify(&sol, ip()) {
            Err(VerifyError::Expired { .. }) => {}
            other => panic!("expected expiry, got {other:?}"),
        }
    }

    #[test]
    fn future_dated_challenge_rejected() {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock.clone()));
        // Issue 10 s in the future — beyond the 2 s default skew.
        let c = issuer.issue_at(ip(), Difficulty::ZERO, 1_010_000);
        let sol = solver::solve(&c, ip(), &SolverOptions::default())
            .unwrap()
            .solution;
        assert_eq!(verifier.verify(&sol, ip()), Err(VerifyError::NotYetValid));
    }

    #[test]
    fn skew_tolerance_is_configurable() {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock.clone())).with_max_skew_ms(20_000);
        let c = issuer.issue_at(ip(), Difficulty::ZERO, 1_010_000);
        let sol = solver::solve(&c, ip(), &SolverOptions::default())
            .unwrap()
            .solution;
        assert!(verifier.verify(&sol, ip()).is_ok());
    }

    #[test]
    fn wrong_client_rejected() {
        let (_, verifier, _, sol) = setup(4);
        let other = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 99));
        assert_eq!(
            verifier.verify(&sol, other),
            Err(VerifyError::ClientMismatch)
        );
    }

    #[test]
    fn tampered_difficulty_fails_mac() {
        let (_, verifier, _, sol) = setup(6);
        // Lower the carried difficulty to pretend less work was required.
        let c = &sol.challenge;
        let tampered = Challenge::from_parts(
            c.version(),
            *c.seed(),
            c.issued_at_ms(),
            c.ttl_ms(),
            Difficulty::ZERO,
            c.client_ip(),
            *c.tag(),
        );
        let forged = Solution {
            challenge: tampered,
            nonce: sol.nonce,
            width: sol.width,
            backend: sol.backend,
        };
        assert_eq!(verifier.verify(&forged, ip()), Err(VerifyError::BadMac));
    }

    #[test]
    fn tampered_tag_fails_mac() {
        let (_, verifier, _, sol) = setup(4);
        let c = &sol.challenge;
        let mut tag = *c.tag();
        tag[31] ^= 1;
        let forged = Solution {
            challenge: Challenge::from_parts(
                c.version(),
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                tag,
            ),
            nonce: sol.nonce,
            width: sol.width,
            backend: sol.backend,
        };
        assert_eq!(verifier.verify(&forged, ip()), Err(VerifyError::BadMac));
    }

    #[test]
    fn foreign_issuer_rejected() {
        let clock = ManualClock::at(1_000_000);
        let foreign = Issuer::with_clock(&[99u8; 32], Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
        let c = foreign.issue(ip(), Difficulty::ZERO);
        let sol = solver::solve(&c, ip(), &SolverOptions::default())
            .unwrap()
            .solution;
        assert_eq!(verifier.verify(&sol, ip()), Err(VerifyError::BadMac));
    }

    #[test]
    fn insufficient_work_rejected() {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
        // Difficulty 20: an arbitrary nonce almost surely fails the bit check.
        let c = issuer.issue(ip(), Difficulty::new(20).unwrap());
        let mut nonce = 0u64;
        let bogus = loop {
            let candidate = Solution::new(c.clone(), nonce, NonceWidth::U64);
            if !candidate.meets_difficulty(ip()) {
                break candidate;
            }
            nonce += 1;
        };
        match verifier.verify(&bogus, ip()) {
            Err(VerifyError::InsufficientWork { need_bits: 20, .. }) => {}
            other => panic!("expected insufficient work, got {other:?}"),
        }
    }

    #[test]
    fn failed_work_does_not_consume_seed() {
        let (_, verifier, _, sol) = setup(8);
        let wrong = Solution {
            nonce: sol.nonce.wrapping_add(1),
            ..sol.clone()
        };
        // Most likely insufficient work; whatever the outcome, the true
        // solution must still be redeemable afterwards unless `wrong`
        // itself happened to be valid (probability 2^-8 — retry protects
        // the test from that).
        if verifier.verify(&wrong, ip()).is_err() {
            assert!(verifier.verify(&sol, ip()).is_ok());
        }
    }

    #[test]
    fn difficulty_cap_enforced() {
        let (_, verifier, _, _) = setup(0);
        let verifier = verifier.with_difficulty_cap(Difficulty::new(10).unwrap());
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock));
        let c = issuer.issue(ip(), Difficulty::new(11).unwrap());
        let sol = Solution::new(c, 0, NonceWidth::U64);
        match verifier.verify(&sol, ip()) {
            Err(VerifyError::DifficultyTooHigh { .. }) => {}
            other => panic!("expected difficulty cap, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_rejected() {
        let (_, verifier, _, sol) = setup(0);
        let c = &sol.challenge;
        let odd = Challenge::from_parts(
            99,
            *c.seed(),
            c.issued_at_ms(),
            c.ttl_ms(),
            c.difficulty(),
            c.client_ip(),
            *c.tag(),
        );
        let forged = Solution {
            challenge: odd,
            nonce: sol.nonce,
            width: sol.width,
            backend: sol.backend,
        };
        assert_eq!(
            verifier.verify(&forged, ip()),
            Err(VerifyError::UnsupportedVersion { got: 99 })
        );
    }

    #[test]
    fn malformed_nonce_rejected() {
        let (_, verifier, _, sol) = setup(0);
        let forged = Solution {
            nonce: u32::MAX as u64 + 1,
            width: NonceWidth::U32,
            ..sol
        };
        assert_eq!(
            verifier.verify(&forged, ip()),
            Err(VerifyError::MalformedNonce)
        );
    }

    #[test]
    fn memory_hard_roundtrip_and_replay() {
        use crate::backend::BackendId;
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()))
            .with_backend_param(BackendId::MEMORY_HARD, 1);
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
        let c = issuer.issue_backend(ip(), Difficulty::new(5).unwrap(), BackendId::MEMORY_HARD);
        let sol = solver::solve(&c, ip(), &SolverOptions::default())
            .unwrap()
            .solution;
        let token = verifier.verify(&sol, ip()).unwrap();
        assert_eq!(token.difficulty.bits(), 5);
        assert_eq!(verifier.verify(&sol, ip()), Err(VerifyError::Replayed));
    }

    #[test]
    fn unknown_backend_rejected_before_mac() {
        use crate::backend::BackendId;
        let (_, verifier, _, sol) = setup(0);
        let c = &sol.challenge;
        // A garbage tag would fail the MAC, but the unknown-backend check
        // comes first (and must, since the backend defines the work).
        let forged = Solution {
            challenge: Challenge::from_parts_backend(
                c.version(),
                BackendId(200),
                0,
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                [0u8; 32],
            ),
            backend: BackendId(200),
            ..sol.clone()
        };
        assert_eq!(
            verifier.verify(&forged, ip()),
            Err(VerifyError::UnknownBackend {
                got: BackendId(200)
            })
        );
    }

    #[test]
    fn backend_mismatch_rejected() {
        use crate::backend::BackendId;
        let (_, verifier, _, sol) = setup(4);
        let forged = Solution {
            backend: BackendId::MEMORY_HARD,
            ..sol
        };
        assert_eq!(
            verifier.verify(&forged, ip()),
            Err(VerifyError::BackendMismatch {
                challenge: BackendId::SHA256,
                solution: BackendId::MEMORY_HARD,
            })
        );
    }

    #[test]
    fn out_of_bounds_arena_param_rejected() {
        use crate::backend::BackendId;
        let (_, verifier, _, sol) = setup(0);
        let c = &sol.challenge;
        let forged = Solution {
            challenge: Challenge::from_parts_backend(
                c.version(),
                BackendId::MEMORY_HARD,
                0, // below MIN_ARENA_MIB
                *c.seed(),
                c.issued_at_ms(),
                c.ttl_ms(),
                c.difficulty(),
                c.client_ip(),
                [0u8; 32],
            ),
            backend: BackendId::MEMORY_HARD,
            ..sol.clone()
        };
        assert_eq!(
            verifier.verify(&forged, ip()),
            Err(VerifyError::InvalidBackendParam { got: 0 })
        );
    }

    #[test]
    fn strict_u32_solutions_verify() {
        let clock = ManualClock::at(1_000_000);
        let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
        let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
        let c = issuer.issue(ip(), Difficulty::new(8).unwrap());
        let sol = solver::solve(&c, ip(), &SolverOptions::strict())
            .unwrap()
            .solution;
        assert!(verifier.verify(&sol, ip()).is_ok());
    }

    #[test]
    fn error_displays_are_informative() {
        let errors: Vec<VerifyError> = vec![
            VerifyError::UnsupportedVersion { got: 2 },
            VerifyError::UnknownBackend {
                got: crate::backend::BackendId(7),
            },
            VerifyError::BackendMismatch {
                challenge: crate::backend::BackendId::SHA256,
                solution: crate::backend::BackendId::MEMORY_HARD,
            },
            VerifyError::InvalidBackendParam { got: 200 },
            VerifyError::BadMac,
            VerifyError::ClientMismatch,
            VerifyError::NotYetValid,
            VerifyError::Expired {
                expired_at_ms: 1,
                now_ms: 2,
            },
            VerifyError::Replayed,
            VerifyError::InsufficientWork {
                got_bits: 1,
                need_bits: 9,
            },
            VerifyError::MalformedNonce,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// End-to-end issue→solve→verify holds for arbitrary
            /// difficulties ≤ 12 and arbitrary client IPs.
            #[test]
            fn issue_solve_verify(d in 0u8..=12, octets in any::<[u8; 4]>()) {
                let client = IpAddr::V4(Ipv4Addr::from(octets));
                let clock = ManualClock::at(42);
                let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
                let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
                let c = issuer.issue(client, Difficulty::new(d).unwrap());
                let sol = solver::solve(&c, client, &SolverOptions::default())
                    .unwrap().solution;
                prop_assert!(verifier.verify(&sol, client).is_ok());
                prop_assert_eq!(verifier.verify(&sol, client), Err(VerifyError::Replayed));
            }

            /// Any single-byte corruption of the tag is rejected.
            #[test]
            fn tag_corruption_rejected(d in 0u8..=6, idx in 0usize..32, flip in 1u8..=255) {
                let clock = ManualClock::at(42);
                let issuer = Issuer::with_clock(&KEY, Arc::new(clock.clone()));
                let verifier = Verifier::with_clock(&KEY, Arc::new(clock));
                let client = ip();
                let c = issuer.issue(client, Difficulty::new(d).unwrap());
                let sol = solver::solve(&c, client, &SolverOptions::default()).unwrap().solution;
                let mut tag = *sol.challenge.tag();
                tag[idx] ^= flip;
                let forged = Solution {
                    challenge: Challenge::from_parts(
                        sol.challenge.version(),
                        *sol.challenge.seed(),
                        sol.challenge.issued_at_ms(),
                        sol.challenge.ttl_ms(),
                        sol.challenge.difficulty(),
                        sol.challenge.client_ip(),
                        tag,
                    ),
                    nonce: sol.nonce,
                    width: sol.width,
                    backend: sol.backend,
                };
                prop_assert_eq!(verifier.verify(&forged, client), Err(VerifyError::BadMac));
            }
        }
    }
}
