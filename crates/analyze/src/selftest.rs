//! Mutation self-test for the concurrency model checker.
//!
//! The lint can only be trusted if the model checker it leans on
//! actually finds the bugs this repo has historically shipped. This
//! module re-applies two of them as in-memory protocol mutations built
//! directly on the vendored `loom` shims, and asserts the checker
//! reports each — alongside the fixed protocol passing with a complete
//! (exhaustive) exploration:
//!
//! - **PR 4** evict/refund race: the retired global-scan eviction
//!   checked `len() >= max_entries` *outside* the shard lock, so two
//!   racing inserters could both pass the check and overshoot the
//!   capacity bound. The fix holds check + evict + insert under one
//!   lock.
//! - **PR 5** batch sequence reservation: reserving a batch's audit
//!   sequence range with a `load` followed by a `store` hands two
//!   racing batches the same base, producing duplicate sequence
//!   numbers. The fix reserves with a single `fetch_add(n)`.
//!
//! Built on the shims directly — NOT via the production crates'
//! `loom-model` features — so depending on `aipow-analyze` never
//! feature-unifies the shims into production builds (see this crate's
//! Cargo.toml).

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One self-test case's outcome.
#[derive(Debug)]
pub struct CaseResult {
    /// Case label, e.g. `pr4-evict-race (buggy)`.
    pub name: &'static str,
    /// Whether the checker behaved as required (found the seeded bug,
    /// or exhaustively passed the fixed protocol).
    pub ok: bool,
    /// What happened, including the interleaving trace for found bugs.
    pub detail: String,
}

/// A small bounded map mirroring the shape of `ShardedMap`'s eviction:
/// entries under a mutex, a lock-free length counter beside it.
struct BoundedMap {
    entries: Mutex<HashMap<u8, u64>>,
    len: AtomicU64,
    capacity: u64,
}

impl BoundedMap {
    fn new(capacity: u64) -> Self {
        BoundedMap {
            entries: Mutex::new(HashMap::new()),
            len: AtomicU64::new(0),
            capacity,
        }
    }

    fn len(&self) -> u64 {
        // relaxed: the model treats every ordering as SeqCst; this
        // mirrors the production counter's ordering.
        self.len.load(Ordering::Relaxed)
    }

    /// The PR 4 bug, re-applied: capacity check on the lock-free
    /// counter BEFORE taking the lock — two racing inserters can both
    /// pass it.
    fn insert_buggy(&self, key: u8, value: u64) {
        if self.len() >= self.capacity {
            let mut entries = self.entries.lock();
            if let Some(victim) = entries.keys().next().copied() {
                entries.remove(&victim);
                self.len.fetch_sub(1, Ordering::Relaxed); // relaxed: SeqCst in the model
            }
            entries.insert(key, value);
            self.len.fetch_add(1, Ordering::Relaxed); // relaxed: SeqCst in the model
        } else {
            // Both racers take this arm: the check above ran before
            // either had inserted.
            self.entries.lock().insert(key, value);
            self.len.fetch_add(1, Ordering::Relaxed); // relaxed: SeqCst in the model
        }
    }

    /// The PR 4 fix: check, evict, and insert under one lock; the
    /// counter is only ever adjusted while holding it.
    fn insert_fixed(&self, key: u8, value: u64) {
        let mut entries = self.entries.lock();
        if entries.len() as u64 >= self.capacity {
            if let Some(victim) = entries.keys().next().copied() {
                entries.remove(&victim);
                self.len.fetch_sub(1, Ordering::Relaxed); // relaxed: SeqCst in the model
            }
        }
        entries.insert(key, value);
        self.len.fetch_add(1, Ordering::Relaxed); // relaxed: SeqCst in the model
    }
}

fn run_bounded_map_case(
    name: &'static str,
    expect_bug: bool,
    insert: fn(&BoundedMap, u8, u64),
) -> CaseResult {
    let result = loom::Builder::new().try_check(move || {
        let map = Arc::new(BoundedMap::new(1));
        let other = Arc::clone(&map);
        let racer = loom::thread::spawn(move || insert(&other, 2, 20));
        insert(&map, 1, 10);
        racer.join().expect("model thread join: invariant");
        let len = map.entries.lock().len() as u64;
        assert!(len <= 1, "capacity overshoot: {len} entries, bound 1");
        assert_eq!(map.len(), len, "length counter drifted from contents");
    });
    grade(name, expect_bug, result)
}

/// A minimal audit-log sequence reservation: each batch of `n` events
/// reserves `n` consecutive sequence numbers.
fn reserve_buggy(seq: &AtomicU64, n: u64) -> u64 {
    // The PR 5 bug, re-applied: load-then-store lets two racing
    // batches read the same base.
    // relaxed: the model treats every ordering as SeqCst.
    let base = seq.load(Ordering::Relaxed);
    seq.store(base + n, Ordering::Relaxed); // relaxed: SeqCst in the model
    base
}

fn reserve_fixed(seq: &AtomicU64, n: u64) -> u64 {
    // relaxed: the model treats every ordering as SeqCst.
    seq.fetch_add(n, Ordering::Relaxed)
}

fn run_seq_case(
    name: &'static str,
    expect_bug: bool,
    reserve: fn(&AtomicU64, u64) -> u64,
) -> CaseResult {
    let result = loom::Builder::new().try_check(move || {
        let seq = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&seq);
        let racer = loom::thread::spawn(move || reserve(&other, 2));
        let mine = reserve(&seq, 2);
        let theirs = racer.join().expect("model thread join: invariant");
        let mut seqs = vec![mine, mine + 1, theirs, theirs + 1];
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            4,
            "duplicate sequence numbers across racing batches \
             (bases {mine} and {theirs})"
        );
        // relaxed: the model treats every ordering as SeqCst.
        assert_eq!(seq.load(Ordering::Relaxed), 4, "reservations lost");
    });
    grade(name, expect_bug, result)
}

fn grade(
    name: &'static str,
    expect_bug: bool,
    result: Result<loom::Report, loom::Failure>,
) -> CaseResult {
    match (expect_bug, result) {
        (true, Err(failure)) => CaseResult {
            name,
            ok: true,
            detail: format!(
                "checker found the seeded bug after {} schedule(s):\n{}",
                failure.iterations, failure.message
            ),
        },
        (true, Ok(report)) => CaseResult {
            name,
            ok: false,
            detail: format!(
                "checker MISSED the seeded bug ({} schedules explored, complete={})",
                report.iterations, report.complete
            ),
        },
        (false, Ok(report)) => CaseResult {
            name,
            ok: report.complete,
            detail: if report.complete {
                format!(
                    "fixed protocol passed all {} schedules (exhaustive)",
                    report.iterations
                )
            } else {
                format!(
                    "fixed protocol passed {} schedules but exploration was \
                     truncated — raise the iteration cap",
                    report.iterations
                )
            },
        },
        (false, Err(failure)) => CaseResult {
            name,
            ok: false,
            detail: format!("fixed protocol unexpectedly failed:\n{failure}"),
        },
    }
}

/// Runs all self-test cases. Returns the per-case outcomes; the CLI
/// fails if any `ok` is false.
pub fn run() -> Vec<CaseResult> {
    vec![
        run_bounded_map_case(
            "pr4-evict-race (buggy protocol)",
            true,
            BoundedMap::insert_buggy,
        ),
        run_bounded_map_case(
            "pr4-evict-race (fixed protocol)",
            false,
            BoundedMap::insert_fixed,
        ),
        run_seq_case("pr5-seq-reservation (buggy protocol)", true, reserve_buggy),
        run_seq_case("pr5-seq-reservation (fixed protocol)", false, reserve_fixed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_pass() {
        for case in run() {
            assert!(case.ok, "{}: {}", case.name, case.detail);
        }
    }

    #[test]
    fn buggy_cases_report_interleaving_traces() {
        let cases = run();
        for case in cases.iter().filter(|c| c.name.contains("buggy")) {
            assert!(
                case.detail.contains("interleaving:"),
                "{} detail missing trace:\n{}",
                case.name,
                case.detail
            );
        }
    }
}
