//! Source-level invariant lint for the aipow workspace.
//!
//! A deliberately lightweight line/token scanner — no `syn`, no AST —
//! that enforces the repo's concurrency and robustness invariants
//! (DESIGN.md §11 catalogues them):
//!
//! - **`relaxed-justification`**: every `Ordering::Relaxed` carries a
//!   `// relaxed:` justification on the same line or immediately above;
//! - **`admission-lock`**: admission-path modules acquire no
//!   `Mutex`/`RwLock` outside the `aipow-shard` API (the sharded crate
//!   itself *is* the allowlist);
//! - **`no-unwrap`**: no `.unwrap()`, undocumented `.expect(...)`, or
//!   `panic!` in production `src/` (tests, benches, examples, and
//!   `#[cfg(test)]` blocks are exempt; `.expect` whose message contains
//!   `invariant` is a documented invariant and allowed);
//! - **`raw-keyed-state`**: admission-path modules build no raw
//!   `HashMap`/`BTreeMap` (per-client keyed state must go through the
//!   bounded `aipow-shard` APIs);
//! - **`trace-blocking`**: the tracer's span-emission hot files acquire
//!   no blocking lock (`.lock()`/`.read()`/`.write()`) — emission must
//!   stay `try_lock`-or-drop so tracing can never stall the admission
//!   path it observes (snapshot/dump paths opt out explicitly);
//! - **`reactor-blocking`**: the net reactor's event-loop files make no
//!   blocking call (`thread::sleep`, blocking channel `.recv()`,
//!   `.join()`, blocking locks, `read_exact`/`read_to_end`/`write_all`)
//!   — one reactor thread serves tens of thousands of connections, so
//!   the only place it may park is `Poller::wait`;
//! - **`forbid-unsafe`**: every crate root carries
//!   `#![forbid(unsafe_code)]` (or forbids it via `[lints.rust]`).
//!
//! Any line can opt out with `// lint:allow(<rule>) <reason>` in its
//! trailing comment; pre-existing debt lives in the committed baseline
//! (`crates/analyze/baseline.txt`), maintained with
//! `--update-baseline`. The scanner understands line/block comments,
//! string and raw-string literals (including multi-line), and skips
//! `#[cfg(test)]`-gated blocks, so commented-out code and test fixtures
//! never fire rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod selftest;

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Files on the admission hot path: per-client keyed state and lock
/// acquisition are restricted here (rules `admission-lock` and
/// `raw-keyed-state`). `aipow-shard` is deliberately absent — it
/// implements the allowed sharded API.
pub const ADMISSION_PATH_FILES: &[&str] = &[
    "crates/core/src/framework.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/token_bucket.rs",
    "crates/core/src/cost.rs",
    "crates/core/src/audit.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/tap.rs",
    "crates/online/src/recorder.rs",
    "crates/pow/src/replay.rs",
];

/// Files on the span-emission hot path of `aipow-trace`: a blocking lock
/// here turns the observability layer into a stall source for the very
/// pipeline it instruments, so rule `trace-blocking` bans `.lock()` /
/// `.read()` / `.write()` outright (the `try_lock`-and-drop idiom does
/// not match). Snapshot/dump code opts out with
/// `// lint:allow(trace-blocking) <reason>`.
pub const TRACE_HOT_FILES: &[&str] = &["crates/trace/src/tracer.rs", "crates/trace/src/ring.rs"];

/// Files that run on a reactor event-loop thread (rule
/// `reactor-blocking`): one thread multiplexes every connection it
/// owns, so any call that can park it — a sleep, a blocking channel
/// receive, a thread join, a blocking lock, or a
/// read-exactly/write-fully loop on a socket — stalls *all* of them.
/// The only sanctioned parking point is `Poller::wait`, and socket I/O
/// must stay single-shot nonblocking reads/writes that surface
/// `WouldBlock`. `gate.rs` is deliberately absent: its accept-time
/// mutex is shared bookkeeping with the server API thread, O(1) inside
/// the critical section, and audited separately.
pub const REACTOR_HOT_FILES: &[&str] = &[
    "crates/net/src/reactor/mod.rs",
    "crates/net/src/reactor/conn.rs",
    "crates/net/src/reactor/dispatch.rs",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line's code, whitespace-collapsed (also the
    /// baseline key, so findings survive line drift).
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Collapses runs of whitespace so baseline keys survive reformatting.
fn normalize(code: &str) -> String {
    code.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The scanner's per-line output: the line with comments and string
/// contents removed (`code`), the comment text (`comment`), and the
/// contents of string literals that started on this line (`strings`).
#[derive(Debug, Default, Clone)]
struct SplitLine {
    code: String,
    comment: String,
    strings: String,
}

/// Cross-line lexer state: inside a block comment (with nesting
/// depth), or inside a (possibly raw) string literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    Block(usize),
    Str,
    RawStr(usize),
}

/// Splits one line into code / comment / string-content given the
/// lexer state carried over from the previous line.
fn split_line(line: &str, state: &mut LexState) -> SplitLine {
    let mut out = SplitLine::default();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match *state {
            LexState::Block(depth) => {
                if line[i..].starts_with("*/") {
                    *state = if depth > 1 {
                        LexState::Block(depth - 1)
                    } else {
                        LexState::Code
                    };
                    i += 2;
                } else if line[i..].starts_with("/*") {
                    *state = LexState::Block(depth + 1);
                    i += 2;
                } else {
                    out.comment.push(bytes[i] as char);
                    i += 1;
                }
            }
            LexState::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // skip the escaped byte (may run past EOL)
                } else if bytes[i] == b'"' {
                    *state = LexState::Code;
                    out.code.push('"'); // closing quote stays in code
                    i += 1;
                } else {
                    out.strings.push(bytes[i] as char);
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                let close: String = std::iter::once('"')
                    .chain("#".repeat(hashes).chars())
                    .collect();
                if line[i..].starts_with(&close) {
                    *state = LexState::Code;
                    out.code.push('"');
                    i += close.len();
                } else {
                    out.strings.push(bytes[i] as char);
                    i += 1;
                }
            }
            LexState::Code => {
                if line[i..].starts_with("//") {
                    out.comment.push_str(&line[i + 2..]);
                    i = bytes.len();
                } else if line[i..].starts_with("/*") {
                    *state = LexState::Block(1);
                    i += 2;
                } else if bytes[i] == b'"' {
                    *state = LexState::Str;
                    out.code.push('"');
                    i += 1;
                } else if bytes[i] == b'r'
                    && (i + 1 < bytes.len())
                    && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#')
                    && !prev_is_ident(bytes, i)
                {
                    // r"..." or r#"..."# raw string opener.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'"' {
                        *state = LexState::RawStr(hashes);
                        out.code.push('"');
                        i = j + 1;
                    } else {
                        out.code.push(bytes[i] as char);
                        i += 1;
                    }
                } else if bytes[i] == b'\'' {
                    // Char literal or lifetime. A char literal is
                    // 'x' or '\x' — consume it so '"' inside one
                    // doesn't open a string.
                    if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                        let end = line[i + 2..].find('\'').map(|p| i + 2 + p + 1);
                        if let Some(end) = end {
                            out.code.push_str("' '");
                            i = end;
                            continue;
                        }
                    } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                        out.code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    out.code.push('\'');
                    i += 1;
                } else {
                    out.code.push(bytes[i] as char);
                    i += 1;
                }
            }
        }
    }
    if *state == LexState::Str {
        // Ordinary string literals cannot actually span lines without
        // a trailing backslash; treat EOL as an implicit close rather
        // than poisoning the rest of the file on a lexer miss.
        if !line.ends_with('\\') {
            *state = LexState::Code;
        }
    }
    out
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Whether the line's trailing comment or the contiguous comment
/// block right above it opts the line out of `rule`.
fn has_allow(comment: &str, hanging: &str, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    comment.contains(&marker) || hanging.contains(&marker)
}

/// Per-file scan context.
#[derive(Debug, Clone, Copy)]
pub struct FileContext {
    /// File is on the admission hot path (extra rules apply).
    pub admission_path: bool,
    /// File is production source (`no-unwrap` applies). False for
    /// tests/, benches/, examples/, build scripts, and vendor code.
    pub production: bool,
    /// File is on the tracer's span-emission hot path (rule
    /// `trace-blocking` applies).
    pub trace_hot: bool,
    /// File runs on a reactor event-loop thread (rule
    /// `reactor-blocking` applies).
    pub reactor_hot: bool,
}

/// Scans one file's content. `rel` is the repo-relative path used in
/// reports and baseline keys.
pub fn scan_file(rel: &str, content: &str, ctx: FileContext) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut state = LexState::Code;
    // Depth of `{` nesting inside a #[cfg(test)]-gated block; None when
    // not skipping. Armed by the attribute, engaged at its first `{`.
    let mut test_block: Option<i64> = None;
    let mut test_attr_pending = false;
    // Comment text of the contiguous comment-only lines right above.
    let mut hanging_comment = String::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut splits: Vec<SplitLine> = Vec::with_capacity(lines.len());
    for line in &lines {
        splits.push(split_line(line, &mut state));
    }

    for (idx, split) in splits.iter().enumerate() {
        let lineno = idx + 1;
        let code = split.code.as_str();
        let comment = split.comment.as_str();
        let braces = code.matches('{').count() as i64 - code.matches('}').count() as i64;

        if let Some(depth) = test_block.as_mut() {
            *depth += braces;
            if *depth <= 0 {
                test_block = None;
            }
            hanging_comment.clear();
            continue;
        }
        if test_attr_pending {
            if code.contains('{') {
                test_attr_pending = false;
                let depth = braces.max(1);
                if braces > 0 {
                    test_block = Some(depth);
                    hanging_comment.clear();
                    continue;
                }
                // `{` and `}` balanced on one line: gated item already
                // over.
                continue;
            }
            if code.contains(';') {
                // e.g. `#[cfg(test)] use ...;` — nothing to skip.
                test_attr_pending = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            test_attr_pending = true;
            // Handle `#[cfg(test)] mod t { ... }` openers on one line.
            if braces > 0 {
                test_attr_pending = false;
                test_block = Some(braces);
            }
            hanging_comment.clear();
            continue;
        }

        let excerpt = normalize(code);

        // relaxed-justification -------------------------------------
        if code.contains("Ordering::Relaxed")
            && ctx.production
            && !comment.contains("relaxed:")
            && !hanging_comment.contains("relaxed:")
            && !has_allow(comment, &hanging_comment, "relaxed-justification")
        {
            violations.push(Violation {
                rule: "relaxed-justification",
                path: rel.to_string(),
                line: lineno,
                excerpt: excerpt.clone(),
                message: "Ordering::Relaxed without a `// relaxed:` justification \
                          (same line or the comment block above)"
                    .into(),
            });
        }

        // no-unwrap --------------------------------------------------
        if ctx.production {
            if code.contains(".unwrap()") && !has_allow(comment, &hanging_comment, "no-unwrap") {
                violations.push(Violation {
                    rule: "no-unwrap",
                    path: rel.to_string(),
                    line: lineno,
                    excerpt: excerpt.clone(),
                    message: ".unwrap() in production source — return an error or use \
                              .expect(\"... invariant ...\") documenting why it cannot fail"
                        .into(),
                });
            }
            // `.expect("` (string-literal message) is Option/Result::expect;
            // a bare trailing `.expect(` is a rustfmt-wrapped call whose
            // message starts on the next line. Other argument shapes (e.g.
            // a parser's `self.expect(&Tok::Comma, ...)`) are domain
            // methods, not the std combinator.
            let is_std_expect =
                code.contains(".expect(\"") || code.trim_end().ends_with(".expect(");
            if is_std_expect && !has_allow(comment, &hanging_comment, "no-unwrap") {
                // The invariant message may sit on this line or (for
                // rustfmt-wrapped calls) the next couple of lines.
                let documented = (idx..(idx + 3).min(splits.len()))
                    .any(|k| splits[k].strings.to_lowercase().contains("invariant"));
                if !documented {
                    violations.push(Violation {
                        rule: "no-unwrap",
                        path: rel.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: ".expect() whose message does not document an invariant \
                                  (include the word \"invariant\" in the message)"
                            .into(),
                    });
                }
            }
            if (code.contains("panic!(") || code.contains("unreachable!("))
                && !has_allow(comment, &hanging_comment, "no-unwrap")
            {
                violations.push(Violation {
                    rule: "no-unwrap",
                    path: rel.to_string(),
                    line: lineno,
                    excerpt: excerpt.clone(),
                    message: "panic in production source — return an error instead".into(),
                });
            }
        }

        // admission-lock ---------------------------------------------
        if ctx.admission_path && !has_allow(comment, &hanging_comment, "admission-lock") {
            for token in [".lock()", ".read()", ".write()"] {
                if code.contains(token) {
                    violations.push(Violation {
                        rule: "admission-lock",
                        path: rel.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: format!(
                            "`{token}` acquisition in an admission-path module — per-client \
                             state must go through the aipow-shard API (or justify with \
                             `// lint:allow(admission-lock) <reason>`)"
                        ),
                    });
                }
            }
        }

        // trace-blocking ---------------------------------------------
        if ctx.trace_hot && !has_allow(comment, &hanging_comment, "trace-blocking") {
            for token in [".lock()", ".read()", ".write()"] {
                if code.contains(token) {
                    violations.push(Violation {
                        rule: "trace-blocking",
                        path: rel.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: format!(
                            "blocking `{token}` in a span-emission hot file — tracing must \
                             be try_lock-or-drop so it can never stall the admission path \
                             (snapshot/dump code may justify with \
                             `// lint:allow(trace-blocking) <reason>`)"
                        ),
                    });
                }
            }
        }

        // reactor-blocking -------------------------------------------
        if ctx.reactor_hot && !has_allow(comment, &hanging_comment, "reactor-blocking") {
            for token in [
                ".lock()",
                ".read()",
                ".write()",
                "thread::sleep",
                ".recv()",
                ".join()",
                ".read_exact(",
                ".read_to_end(",
                ".write_all(",
            ] {
                if code.contains(token) {
                    violations.push(Violation {
                        rule: "reactor-blocking",
                        path: rel.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: format!(
                            "blocking `{token}` in a reactor event-loop file — one reactor \
                             thread serves every connection it owns, so it may park only in \
                             `Poller::wait`; use nonblocking I/O, `try_recv`, and `try_lock` \
                             (or justify with `// lint:allow(reactor-blocking) <reason>`)"
                        ),
                    });
                }
            }
        }

        // raw-keyed-state --------------------------------------------
        if ctx.admission_path && !has_allow(comment, &hanging_comment, "raw-keyed-state") {
            for token in ["HashMap::new(", "HashMap::with_capacity(", "BTreeMap::new("] {
                if code.contains(token) {
                    violations.push(Violation {
                        rule: "raw-keyed-state",
                        path: rel.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: format!(
                            "raw `{}` in an admission-path module — per-client keyed state \
                             must use the bounded aipow-shard structures (or justify with \
                             `// lint:allow(raw-keyed-state) <reason>`)",
                            token.trim_end_matches('(')
                        ),
                    });
                }
            }
        }

        // Maintain the hanging comment block for the next line.
        if normalize(code).is_empty() {
            if !comment.is_empty() {
                hanging_comment.push_str(comment);
                hanging_comment.push('\n');
            }
            // A fully blank line keeps the hanging comment: rustfmt
            // never separates a justification from its statement, but
            // being lenient here costs nothing.
        } else {
            hanging_comment.clear();
        }
    }
    violations
}

/// Checks a crate root for `#![forbid(unsafe_code)]`, falling back to
/// the crate manifest's `[lints.rust] unsafe_code = "forbid"`.
pub fn check_forbid_unsafe(
    rel: &str,
    root_source: &str,
    manifest: Option<&str>,
) -> Option<Violation> {
    if root_source.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    if let Some(manifest) = manifest {
        if manifest.contains("unsafe_code = \"forbid\"") {
            return None;
        }
    }
    Some(Violation {
        rule: "forbid-unsafe",
        path: rel.to_string(),
        line: 1,
        // Non-empty and content-independent: the baseline key must
        // round-trip through `Baseline::parse`, which trims trailing
        // whitespace (an empty excerpt would leave a dangling tab).
        excerpt: "(crate root)".into(),
        message: "crate root missing `#![forbid(unsafe_code)]` (and its manifest does not \
                  forbid unsafe via [lints.rust])"
            .into(),
    })
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Recursively collects `.rs` files under `dir`, repo-relative.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // absent dir (e.g. crate without tests/)
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn to_rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans the whole workspace under `root` (the repo checkout).
///
/// Production rules run over the facade crate's `src/` and every
/// `crates/*/src`; the `forbid-unsafe` rule additionally covers every
/// `vendor/*` crate root.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    // The workspace root is itself a crate (the `aipow` facade).
    let mut production_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let mut vendor_dirs: Vec<PathBuf> = Vec::new();
    for (area, dirs) in [
        ("crates", &mut production_dirs),
        ("vendor", &mut vendor_dirs),
    ] {
        if let Ok(entries) = std::fs::read_dir(root.join(area)) {
            dirs.extend(
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.is_dir()),
            );
        }
    }
    production_dirs.sort();
    vendor_dirs.sort();
    for (crate_dir, production) in production_dirs
        .iter()
        .map(|d| (d, true))
        .chain(vendor_dirs.iter().map(|d| (d, false)))
    {
        let manifest = std::fs::read_to_string(crate_dir.join("Cargo.toml")).ok();
        // Crate root: src/lib.rs, else src/main.rs.
        let src_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| crate_dir.join(p))
            .find(|p| p.is_file());
        if let Some(src_root) = src_root {
            let rel = to_rel(root, &src_root);
            if let Ok(content) = std::fs::read_to_string(&src_root) {
                violations.extend(check_forbid_unsafe(&rel, &content, manifest.as_deref()));
            }
        }
        if !production {
            continue; // vendor code: forbid-unsafe only
        }
        let mut files = Vec::new();
        rust_files(&crate_dir.join("src"), &mut files)?;
        files.sort();
        for path in files {
            let rel = to_rel(root, &path);
            let content = std::fs::read_to_string(&path)?;
            let ctx = FileContext {
                admission_path: ADMISSION_PATH_FILES.contains(&rel.as_str()),
                production: true,
                trace_hot: TRACE_HOT_FILES.contains(&rel.as_str()),
                reactor_hot: REACTOR_HOT_FILES.contains(&rel.as_str()),
            };
            violations.extend(scan_file(&rel, &content, ctx));
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// A committed multiset of accepted pre-existing violations, keyed by
/// `rule \t path \t normalized-code` — content-addressed, so findings
/// survive unrelated line insertions above them.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: HashMap<String, usize>,
}

impl Baseline {
    fn key(v: &Violation) -> String {
        format!("{}\t{}\t{}", v.rule, v.path, v.excerpt)
    }

    /// Parses the committed baseline file format (one key per line,
    /// `#` comments and blanks ignored).
    pub fn parse(content: &str) -> Self {
        let mut counts = HashMap::new();
        for line in content.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes violations into the baseline file format.
    pub fn render(violations: &[Violation]) -> String {
        let mut keys: Vec<String> = violations.iter().map(Self::key).collect();
        keys.sort();
        let mut out = String::from(
            "# aipow-analyze baseline: accepted pre-existing violations.\n\
             # One entry per finding: rule<TAB>path<TAB>normalized line.\n\
             # Regenerate with `cargo run -p aipow-analyze -- --update-baseline`.\n",
        );
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }

    /// Splits `violations` into (new, suppressed-by-baseline) and
    /// returns the count of stale (unmatched) baseline entries.
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize, usize) {
        let mut remaining = self.counts.clone();
        let mut fresh = Vec::new();
        let mut suppressed = 0;
        for v in violations {
            let key = Self::key(&v);
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => fresh.push(v),
            }
        }
        let stale: usize = remaining.values().sum();
        (fresh, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROD: FileContext = FileContext {
        admission_path: false,
        production: true,
        trace_hot: false,
        reactor_hot: false,
    };
    const ADMISSION: FileContext = FileContext {
        admission_path: true,
        production: true,
        trace_hot: false,
        reactor_hot: false,
    };
    const TRACE_HOT: FileContext = FileContext {
        admission_path: false,
        production: true,
        trace_hot: true,
        reactor_hot: false,
    };
    const REACTOR_HOT: FileContext = FileContext {
        admission_path: false,
        production: true,
        trace_hot: false,
        reactor_hot: true,
    };

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn relaxed_without_justification_fires() {
        let v = scan_file("x.rs", "a.fetch_add(1, Ordering::Relaxed);\n", PROD);
        assert_eq!(rules(&v), ["relaxed-justification"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn relaxed_with_same_line_justification_passes() {
        let src = "a.fetch_add(1, Ordering::Relaxed); // relaxed: pure counter\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn relaxed_with_hanging_justification_passes() {
        let src = "// relaxed: counter, read only by metrics\n\
                   a.fetch_add(1, Ordering::Relaxed);\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
        // ...including with a doc-style gap line.
        let src = "// relaxed: counter\n\n a.store(0, Ordering::Relaxed);\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn justification_does_not_leak_past_code() {
        let src = "// relaxed: the first one\n\
                   a.store(1, Ordering::Relaxed);\n\
                   b.store(2, Ordering::Relaxed);\n";
        let v = scan_file("x.rs", src, PROD);
        assert_eq!(rules(&v), ["relaxed-justification"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unwrap_and_panic_fire_expect_invariant_passes() {
        let src = "let a = x.unwrap();\n\
                   let b = y.expect(\"queue non-empty: invariant\");\n\
                   let c = z.expect(\"oops\");\n\
                   panic!(\"boom\");\n";
        let v = scan_file("x.rs", src, PROD);
        assert_eq!(rules(&v), ["no-unwrap", "no-unwrap", "no-unwrap"]);
        assert_eq!(
            v.iter().map(|v| v.line).collect::<Vec<_>>(),
            vec![1, 3, 4],
            "the documented expect on line 2 is allowed"
        );
    }

    #[test]
    fn unwrap_inside_strings_and_comments_ignored() {
        let src = "// call .unwrap() here would be bad\n\
                   let s = \"don't .unwrap() me\";\n\
                   /* .unwrap()\n  spanning block */\n\
                   let ok = 1;\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn domain_expect_methods_do_not_fire() {
        // A parser's own `expect` helper takes a token, not a message.
        let src = "self.expect(&Tok::Comma, \"after field\")?;\n\
                   parser.expect(Token::Eof)?;\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
        // A rustfmt-wrapped std expect still fires...
        let src = "let v = maybe\n    .expect(\n        \"present\",\n    );\n";
        assert_eq!(rules(&scan_file("x.rs", src, PROD)), ["no-unwrap"]);
        // ...and is allowed when the wrapped message documents an invariant.
        let src = "let v = maybe\n    .expect(\n        \"queue invariant\",\n    );\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 1);\n\
                   let c = z.unwrap_or_default();\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "let top = maybe();\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { x.unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn code_after_cfg_test_block_is_scanned_again() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n\
                   let after = y.unwrap();\n";
        let v = scan_file("x.rs", src, PROD);
        assert_eq!(rules(&v), ["no-unwrap"]);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn admission_rules_fire_only_on_admission_files() {
        let src = "let g = state.lock();\nlet m = HashMap::new();\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
        let v = scan_file("x.rs", src, ADMISSION);
        assert_eq!(rules(&v), ["admission-lock", "raw-keyed-state"]);
    }

    #[test]
    fn admission_allow_escape_works_and_needs_the_right_rule() {
        let src = "let g = state.lock(); // lint:allow(admission-lock) startup only\n";
        assert!(scan_file("x.rs", src, ADMISSION).is_empty());
        let src = "let g = state.lock(); // lint:allow(no-unwrap) wrong rule\n";
        assert_eq!(
            rules(&scan_file("x.rs", src, ADMISSION)),
            ["admission-lock"]
        );
    }

    #[test]
    fn allow_escape_in_comment_block_above_works() {
        let src = "// lint:allow(admission-lock) read-mostly global, not per-client\n\
                   let g = state.lock();\n";
        assert!(scan_file("x.rs", src, ADMISSION).is_empty());
        // ...and does not leak past the line it precedes.
        let src = "// lint:allow(admission-lock) first only\n\
                   let g = state.lock();\n\
                   let h = other.lock();\n";
        let v = scan_file("x.rs", src, ADMISSION);
        assert_eq!(rules(&v), ["admission-lock"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn io_style_read_write_with_args_do_not_fire() {
        let src = "file.write(buf); reader.read(&mut buf);\n";
        assert!(scan_file("x.rs", src, ADMISSION).is_empty());
    }

    #[test]
    fn trace_blocking_fires_only_on_trace_hot_files() {
        let src = "let g = self.slots.lock();\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
        let v = scan_file("x.rs", src, TRACE_HOT);
        assert_eq!(rules(&v), ["trace-blocking"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn trace_blocking_permits_try_lock_and_allow_escape() {
        // The emission idiom: try_lock-or-drop never blocks.
        let src = "match self.slots.try_lock() { Some(mut g) => g.push(s), None => drop(s) }\n";
        assert!(scan_file("x.rs", src, TRACE_HOT).is_empty());
        // Snapshot/dump paths opt out explicitly.
        let src = "// lint:allow(trace-blocking) dump path, not a span emission site\n\
                   let all = self.slots.lock().clone();\n";
        assert!(scan_file("x.rs", src, TRACE_HOT).is_empty());
        // A blocking RwLock read fires too.
        let src = "let view = self.index.read();\n";
        assert_eq!(
            rules(&scan_file("x.rs", src, TRACE_HOT)),
            ["trace-blocking"]
        );
    }

    #[test]
    fn reactor_blocking_fires_only_on_reactor_files() {
        let src = "std::thread::sleep(backoff);\n\
                   let (stream, ip) = self.rx.recv();\n\
                   handle.join();\n\
                   stream.read_exact(&mut header);\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
        let v = scan_file("x.rs", src, REACTOR_HOT);
        assert_eq!(
            rules(&v),
            [
                "reactor-blocking",
                "reactor-blocking",
                "reactor-blocking",
                "reactor-blocking"
            ]
        );
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn reactor_blocking_permits_nonblocking_idioms_and_allow_escape() {
        // The event-loop idiom: single-shot nonblocking I/O and
        // try_recv never park the thread.
        let src = "while let Ok(conn) = self.rx.try_recv() { accept(conn); }\n\
                   let n = stream.read(&mut buf)?;\n\
                   let n = stream.write(chunk)?;\n\
                   self.poller.wait(&mut events, timeout)?;\n";
        assert!(scan_file("x.rs", src, REACTOR_HOT).is_empty());
        // Shutdown/teardown paths opt out explicitly.
        let src = "// lint:allow(reactor-blocking) shutdown join, loop already exited\n\
                   handle.join();\n";
        assert!(scan_file("x.rs", src, REACTOR_HOT).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_source_then_manifest() {
        assert!(check_forbid_unsafe("a.rs", "#![forbid(unsafe_code)]\n", None).is_none());
        assert!(
            check_forbid_unsafe("a.rs", "", Some("[lints.rust]\nunsafe_code = \"forbid\"\n"))
                .is_none()
        );
        let v = check_forbid_unsafe("a.rs", "fn main() {}\n", Some("[package]"));
        assert_eq!(v.map(|v| v.rule), Some("forbid-unsafe"));
    }

    #[test]
    fn baseline_roundtrip_suppresses_and_reports_stale() {
        let violations = scan_file("x.rs", "let a = x.unwrap();\n", PROD);
        let baseline = Baseline::parse(&Baseline::render(&violations));
        let (fresh, suppressed, stale) = baseline.apply(violations.clone());
        assert!(fresh.is_empty());
        assert_eq!((suppressed, stale), (1, 0));
        // Fixing the violation leaves the baseline entry stale.
        let (fresh, suppressed, stale) = baseline.apply(Vec::new());
        assert!(fresh.is_empty());
        assert_eq!((suppressed, stale), (0, 1));
        // A second identical violation is NOT covered by one entry.
        let mut twice = violations.clone();
        twice.extend(violations);
        let (fresh, suppressed, _) = baseline.apply(twice);
        assert_eq!((fresh.len(), suppressed), (1, 1));
    }

    #[test]
    fn baseline_is_line_drift_tolerant() {
        let before = scan_file("x.rs", "let a = x.unwrap();\n", PROD);
        let after = scan_file("x.rs", "\n\n\nlet a = x.unwrap();\n", PROD);
        assert_eq!(after[0].line, 4);
        let baseline = Baseline::parse(&Baseline::render(&before));
        let (fresh, _, stale) = baseline.apply(after);
        assert!(fresh.is_empty());
        assert_eq!(stale, 0);
    }

    #[test]
    fn raw_strings_are_treated_as_strings() {
        let src = "let re = r\".unwrap()\"; let re2 = r#\"panic!(\"x\")\"#;\n";
        assert!(scan_file("x.rs", src, PROD).is_empty());
    }

    #[test]
    fn multi_line_block_comments_do_not_hide_later_code() {
        let src = "/* comment\nstill comment */ let a = x.unwrap();\n";
        let v = scan_file("x.rs", src, PROD);
        assert_eq!(rules(&v), ["no-unwrap"]);
        assert_eq!(v[0].line, 2);
    }
}
