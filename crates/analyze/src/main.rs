//! `aipow-analyze` — the workspace invariant lint and model-checker
//! self-test CLI. See `lib.rs` for the rules and DESIGN.md §11 for the
//! rationale.
//!
//! Modes:
//! - `--check` (default): scan the workspace, subtract the committed
//!   baseline, exit non-zero on any new violation;
//! - `--update-baseline`: rewrite `crates/analyze/baseline.txt` from
//!   the current findings;
//! - `--self-test`: re-apply the PR 4 and PR 5 concurrency regressions
//!   against the vendored model checker and require it to find both;
//! - `--root <dir>`: override the workspace root (defaults to this
//!   crate's grandparent directory).

#![forbid(unsafe_code)]

use aipow_analyze::{scan_workspace, selftest, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_REL: &str = "crates/analyze/baseline.txt";

enum Mode {
    Check,
    UpdateBaseline,
    SelfTest,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--self-test" => mode = Mode::SelfTest,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("aipow-analyze: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "aipow-analyze: unknown argument `{other}`\n\
                     usage: aipow-analyze [--check | --update-baseline | --self-test] \
                     [--root <dir>]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(root) => root,
        Err(err) => {
            eprintln!(
                "aipow-analyze: cannot resolve root {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    match mode {
        Mode::SelfTest => {
            loom::install_panic_hook();
            let cases = selftest::run();
            let mut failed = 0usize;
            for case in &cases {
                let verdict = if case.ok { "ok" } else { "FAILED" };
                println!("self-test: {:<36} {verdict}", case.name);
                for line in case.detail.lines() {
                    println!("    {line}");
                }
                if !case.ok {
                    failed += 1;
                }
            }
            if failed > 0 {
                eprintln!(
                    "aipow-analyze: self-test FAILED — the model checker missed \
                     {failed} seeded regression(s)"
                );
                return ExitCode::FAILURE;
            }
            println!(
                "aipow-analyze: self-test passed — {} case(s), both seeded \
                 regressions found, both fixed protocols exhaustively verified",
                cases.len()
            );
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let violations = match scan_workspace(&root) {
                Ok(violations) => violations,
                Err(err) => {
                    eprintln!("aipow-analyze: scan failed: {err}");
                    return ExitCode::from(2);
                }
            };
            let baseline_path = root.join(BASELINE_REL);
            if let Err(err) = std::fs::write(&baseline_path, Baseline::render(&violations)) {
                eprintln!(
                    "aipow-analyze: cannot write {}: {err}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
            println!(
                "aipow-analyze: baseline updated — {} accepted violation(s) written to {}",
                violations.len(),
                BASELINE_REL
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let violations = match scan_workspace(&root) {
                Ok(violations) => violations,
                Err(err) => {
                    eprintln!("aipow-analyze: scan failed: {err}");
                    return ExitCode::from(2);
                }
            };
            let baseline = match std::fs::read_to_string(root.join(BASELINE_REL)) {
                Ok(content) => Baseline::parse(&content),
                Err(_) => Baseline::default(),
            };
            let total = violations.len();
            let (fresh, suppressed, stale) = baseline.apply(violations);
            if stale > 0 {
                eprintln!(
                    "aipow-analyze: warning: {stale} stale baseline entr(y/ies) no longer \
                     match any finding — run --update-baseline to prune"
                );
            }
            if fresh.is_empty() {
                println!(
                    "aipow-analyze: clean — {total} finding(s), {suppressed} baselined, 0 new"
                );
                return ExitCode::SUCCESS;
            }
            for violation in &fresh {
                println!("{violation}");
            }
            eprintln!(
                "aipow-analyze: {} new violation(s) ({suppressed} baselined). Fix them, \
                 justify inline with `// lint:allow(<rule>) <reason>`, or (for accepted \
                 debt) run --update-baseline.",
                fresh.len()
            );
            ExitCode::FAILURE
        }
    }
}
