//! Bounded-interleaving model tests for the admission pipeline's
//! concurrency-sensitive pieces: batched audit sequence reservation,
//! the lock-free metrics counters, and the write-once behavior-sink
//! publication.
//!
//! Run with `cargo test -p aipow-core --features loom-model`. See
//! `crates/shard/tests/loom_model.rs` for the sharded-map protocols
//! these build on, and DESIGN.md §11 for the checker's architecture.

#![cfg(feature = "loom-model")]

use aipow_core::metrics::FrameworkMetrics;
use aipow_core::tap::BehaviorSink;
use aipow_core::{AuditEvent, AuditKind, AuditLog, Framework, FrameworkBuilder};
use aipow_policy::LinearPolicy;
use aipow_pow::{Difficulty, VerifyError};
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn ip() -> IpAddr {
    "192.0.2.1"
        .parse()
        .expect("valid fixture address: invariant")
}

fn batch(stamps: &[u64]) -> Vec<AuditEvent> {
    stamps
        .iter()
        .map(|&at_ms| AuditEvent {
            at_ms,
            client_ip: ip(),
            kind: AuditKind::Bypassed {
                score: ReputationScore::MIN,
            },
        })
        .collect()
}

/// Two racing `record_batch` calls: the single `fetch_add(n)` reserves
/// each batch a contiguous, disjoint sequence range, so the merged
/// snapshot is always one whole batch followed by the other — never an
/// interleaving of the two, and never a lost event. A load-then-store
/// reservation (the PR 5 regression the analyze self-test re-applies)
/// hands both batches the same base and fails all three asserts.
#[test]
fn record_batch_reserves_disjoint_contiguous_seq_ranges() {
    loom::model(|| {
        let log = Arc::new(AuditLog::with_shards(8, 2));
        let other = Arc::clone(&log);
        let racer = loom::thread::spawn(move || {
            other.record_batch(batch(&[10, 11]));
        });
        log.record_batch(batch(&[20, 21]));
        racer.join().expect("model thread join: invariant");
        assert_eq!(log.recorded(), 4, "one reservation per batch");
        assert_eq!(log.len(), 4, "no event lost to a duplicate sequence");
        // Snapshot is most-recent-first by sequence number: whichever
        // batch reserved second appears first, both internally ordered.
        let stamps: Vec<u64> = log.snapshot().iter().map(|e| e.at_ms).collect();
        assert!(
            stamps == vec![11, 10, 21, 20] || stamps == vec![21, 20, 11, 10],
            "batches interleaved or reordered: {stamps:?}"
        );
    });
}

/// Concurrent rejection recording: the per-reason tallies and the
/// total are exact — the fixed-array `fetch_add` design loses nothing.
#[test]
fn rejection_counters_lose_no_updates() {
    loom::model(|| {
        let metrics = Arc::new(FrameworkMetrics::new());
        let other = Arc::clone(&metrics);
        let racer = loom::thread::spawn(move || {
            other.record_rejection("replayed");
            other.record_rejection("expired");
        });
        metrics.record_rejection("replayed");
        racer.join().expect("model thread join: invariant");
        let snap = metrics.snapshot();
        assert_eq!(snap.rejected_by_reason["replayed"], 2);
        assert_eq!(snap.rejected_by_reason["expired"], 1);
        assert_eq!(snap.solutions_rejected, 3);
    });
}

/// Concurrent stage-timer recording on the same stage: batch, item,
/// and nanosecond accumulators all stay exact.
#[test]
fn stage_timers_lose_no_updates() {
    loom::model(|| {
        let metrics = Arc::new(FrameworkMetrics::new());
        let other = Arc::clone(&metrics);
        let racer = loom::thread::spawn(move || {
            other.record_stage(0, 3, 100);
        });
        metrics.record_stage(0, 1, 50);
        racer.join().expect("model thread join: invariant");
        let timings = metrics.snapshot().stage_timings;
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].batches, 2);
        assert_eq!(timings[0].items, 4);
        assert_eq!(timings[0].total_ns, 150);
    });
}

#[derive(Default)]
struct CountingSink {
    requests: AtomicU64,
}

impl BehaviorSink for CountingSink {
    fn on_request(
        &self,
        _ip: IpAddr,
        _now_ms: u64,
        _score: ReputationScore,
        _difficulty: Option<Difficulty>,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn on_solution(&self, _ip: IpAddr, _now_ms: u64, _outcome: Result<Difficulty, &VerifyError>) {}
}

fn test_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([1u8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(2.0).expect("2.0 is in score range: invariant"),
        ))
        .policy(LinearPolicy::policy2())
        .build()
        .expect("fixture framework builds: invariant")
}

/// Two threads race `set_behavior_sink`: exactly one publication wins
/// in every schedule, and a subsequent admission is observed by the
/// winner only — the loser's sink is provably never attached.
#[test]
fn behavior_sink_publication_is_write_once() {
    loom::model(|| {
        let framework = Arc::new(test_framework());
        let winner_a = Arc::new(CountingSink::default());
        let winner_b = Arc::new(CountingSink::default());
        let (other_fw, other_sink) = (Arc::clone(&framework), Arc::clone(&winner_b));
        let racer = loom::thread::spawn(move || {
            other_fw.set_behavior_sink(other_sink as Arc<dyn BehaviorSink>)
        });
        let mine = framework.set_behavior_sink(Arc::clone(&winner_a) as Arc<dyn BehaviorSink>);
        let theirs = racer.join().expect("model thread join: invariant");
        assert!(
            mine ^ theirs,
            "exactly one of two racing publications must win (mine={mine}, theirs={theirs})"
        );
        framework.handle_request(ip(), &FeatureVector::zeros());
        let (a, b) = (
            winner_a.requests.load(Ordering::Relaxed),
            winner_b.requests.load(Ordering::Relaxed),
        );
        assert_eq!(a + b, 1, "the event reached exactly one sink");
        assert_eq!(
            if mine { b } else { a },
            0,
            "the losing sink must never observe an event"
        );
    });
}
