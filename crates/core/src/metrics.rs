//! Framework-level operational metrics.

use aipow_metrics::{Counter, Histogram};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Live counters for the admission pipeline. Cheap to update from any
/// worker thread.
#[derive(Debug, Default)]
pub struct FrameworkMetrics {
    /// Challenges issued (Figure 1, step 4).
    pub challenges_issued: Counter,
    /// Solutions verified successfully (step 6).
    pub solutions_accepted: Counter,
    /// Solutions rejected, any reason.
    pub solutions_rejected: Counter,
    /// Requests admitted without a puzzle (bypass threshold).
    pub bypassed: Counter,
    /// Rejections keyed by the verifier's reason label.
    rejected_by_reason: Mutex<HashMap<&'static str, u64>>,
    /// Distribution of issued difficulties (bits).
    issued_difficulty: Mutex<Histogram>,
}

impl FrameworkMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a rejection under a stable reason label.
    pub fn record_rejection(&self, reason: &'static str) {
        self.solutions_rejected.inc();
        *self.rejected_by_reason.lock().entry(reason).or_insert(0) += 1;
    }

    /// Records the difficulty of an issued challenge.
    pub fn record_issued_difficulty(&self, bits: u8) {
        self.challenges_issued.inc();
        self.issued_difficulty.lock().record(bits as u64);
    }

    /// Takes a consistent snapshot for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hist = self.issued_difficulty.lock();
        MetricsSnapshot {
            challenges_issued: self.challenges_issued.get(),
            solutions_accepted: self.solutions_accepted.get(),
            solutions_rejected: self.solutions_rejected.get(),
            bypassed: self.bypassed.get(),
            rejected_by_reason: self
                .rejected_by_reason
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            median_issued_difficulty: hist.median(),
            max_issued_difficulty: hist.max(),
        }
    }
}

/// A serializable point-in-time view of [`FrameworkMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Challenges issued.
    pub challenges_issued: u64,
    /// Solutions accepted.
    pub solutions_accepted: u64,
    /// Solutions rejected.
    pub solutions_rejected: u64,
    /// Bypass admissions.
    pub bypassed: u64,
    /// Rejections by reason label.
    pub rejected_by_reason: HashMap<String, u64>,
    /// Median issued difficulty in bits.
    pub median_issued_difficulty: u64,
    /// Maximum issued difficulty in bits.
    pub max_issued_difficulty: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let m = FrameworkMetrics::new();
        m.record_issued_difficulty(5);
        m.record_issued_difficulty(9);
        m.solutions_accepted.inc();
        m.record_rejection("replayed");
        m.record_rejection("replayed");
        m.record_rejection("expired");

        let snap = m.snapshot();
        assert_eq!(snap.challenges_issued, 2);
        assert_eq!(snap.solutions_accepted, 1);
        assert_eq!(snap.solutions_rejected, 3);
        assert_eq!(snap.rejected_by_reason["replayed"], 2);
        assert_eq!(snap.rejected_by_reason["expired"], 1);
        assert_eq!(snap.max_issued_difficulty, 9);
        assert!(snap.median_issued_difficulty >= 5);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = FrameworkMetrics::new().snapshot();
        assert_eq!(snap.challenges_issued, 0);
        assert_eq!(snap.median_issued_difficulty, 0);
        assert!(snap.rejected_by_reason.is_empty());
    }

    #[test]
    fn metrics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameworkMetrics>();
    }
}
