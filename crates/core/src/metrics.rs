//! Framework-level operational metrics.

use crate::sync::{AtomicU64, Ordering};
use aipow_metrics::{AtomicHistogram, Counter, Gauge};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The verifier's stable rejection labels (see
/// `framework::reason_label`), plus a catch-all. Indexing a fixed array
/// keeps the rejection path — which an attacker drives at flood rate —
/// lock-free.
const REJECT_REASONS: [&str; 10] = [
    "unsupported_version",
    "difficulty_too_high",
    "bad_mac",
    "client_mismatch",
    "not_yet_valid",
    "expired",
    "replayed",
    "insufficient_work",
    "malformed_nonce",
    "other",
];

/// Lock-free per-reason rejection tallies.
#[derive(Debug)]
struct RejectionCounts {
    counts: [AtomicU64; REJECT_REASONS.len()],
}

impl Default for RejectionCounts {
    fn default() -> Self {
        RejectionCounts {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl RejectionCounts {
    fn record(&self, reason: &'static str) {
        let idx = REJECT_REASONS
            .iter()
            .position(|r| *r == reason)
            .unwrap_or(REJECT_REASONS.len() - 1);
        // relaxed: monotonic stats counter; snapshot tolerates cross-
        // counter skew
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Current tally for one reason label (0 for unknown labels).
    fn count_for(&self, reason: &str) -> u64 {
        REJECT_REASONS
            .iter()
            .position(|r| *r == reason)
            // relaxed: monitoring read of one independent counter
            .map(|idx| self.counts[idx].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Labels with nonzero counts.
    fn snapshot(&self) -> HashMap<String, u64> {
        REJECT_REASONS
            .iter()
            .zip(self.counts.iter())
            .filter_map(|(label, count)| {
                // relaxed: monitoring read; counters are independent
                let n = count.load(Ordering::Relaxed);
                (n > 0).then(|| (label.to_string(), n))
            })
            .collect()
    }
}

/// The admission pipeline's stages, in chain order: the request chain
/// (`score → bypass → policy → issue → request_telemetry`) followed by
/// the solution chain (`verify → charge → solution_telemetry`). Indexes
/// into the per-stage latency counters; `aipow_core::pipeline` assigns
/// each stage its slot.
pub const STAGE_NAMES: [&str; 8] = [
    "score",
    "bypass",
    "policy",
    "issue",
    "request_telemetry",
    "verify",
    "charge",
    "solution_telemetry",
];

/// Lock-free per-stage latency counters: every run of a pipeline stage
/// (over a batch of one on the sequential path, a group on the batch
/// path) adds its wall-clock nanoseconds, the count of items it
/// *actually processed* (contexts a stage skips — bypassed requests at
/// the issue stage, rejected solutions at the charge stage — are
/// excluded), and one batch to its stage's slot. `total_ns / items` is
/// therefore an honest amortized per-item stage cost; `items / batches`
/// the achieved batching factor.
#[derive(Debug)]
struct StageTimers {
    batches: [AtomicU64; STAGE_NAMES.len()],
    items: [AtomicU64; STAGE_NAMES.len()],
    nanos: [AtomicU64; STAGE_NAMES.len()],
    /// Per-item amortized latency distribution per stage (lock-free; a
    /// batch of `k` items records `k` observations of `nanos / k`).
    latency: [AtomicHistogram; STAGE_NAMES.len()],
}

impl Default for StageTimers {
    fn default() -> Self {
        StageTimers {
            batches: std::array::from_fn(|_| AtomicU64::new(0)),
            items: std::array::from_fn(|_| AtomicU64::new(0)),
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }
}

impl StageTimers {
    fn record(&self, stage: usize, items: u64, nanos: u64) {
        let idx = stage.min(STAGE_NAMES.len() - 1);
        // relaxed: monotonic stats counters; snapshot tolerates cross-
        // counter skew
        self.batches[idx].fetch_add(1, Ordering::Relaxed);
        self.items[idx].fetch_add(items, Ordering::Relaxed); // relaxed: as above
        self.nanos[idx].fetch_add(nanos, Ordering::Relaxed); // relaxed: as above
        self.latency[idx].record_n(nanos / items.max(1), items);
    }

    /// Stages that have run at least once, in chain order.
    fn snapshot(&self) -> Vec<StageTiming> {
        STAGE_NAMES
            .iter()
            .enumerate()
            .filter_map(|(i, name)| {
                // relaxed: monitoring reads; a snapshot is allowed to
                // straddle updates
                let batches = self.batches[i].load(Ordering::Relaxed);
                (batches > 0).then(|| {
                    let latency = self.latency[i].snapshot();
                    StageTiming {
                        stage: name.to_string(),
                        batches,
                        items: self.items[i].load(Ordering::Relaxed), // relaxed: as above
                        total_ns: self.nanos[i].load(Ordering::Relaxed), // relaxed: as above
                        p50_ns: latency.value_at_quantile(0.5),
                        p99_ns: latency.value_at_quantile(0.99),
                    }
                })
            })
            .collect()
    }
}

/// One pipeline stage's accumulated latency, as reported in
/// [`MetricsSnapshot::stage_timings`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub stage: String,
    /// Stage invocations (one per batch, of any size).
    pub batches: u64,
    /// Requests/solutions the stage actually processed across all
    /// batches (skipped contexts excluded).
    pub items: u64,
    /// Total wall-clock nanoseconds spent in the stage.
    pub total_ns: u64,
    /// Median amortized per-item stage latency in nanoseconds (≤ 1.6 %
    /// bucket error; a batch of `k` contributes `k` samples of its
    /// per-item average).
    pub p50_ns: u64,
    /// 99th-percentile amortized per-item stage latency in nanoseconds.
    pub p99_ns: u64,
}

/// Lock-free distribution of issued difficulties: one atomic bucket per
/// possible bit count. Difficulty is at most 64 bits, so the exact
/// distribution fits in a fixed array and the admission hot path never
/// takes a lock to record it.
#[derive(Debug)]
struct DifficultyBuckets {
    counts: [AtomicU64; 65],
}

impl Default for DifficultyBuckets {
    fn default() -> Self {
        DifficultyBuckets {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl DifficultyBuckets {
    fn record(&self, bits: u8) {
        // relaxed: monotonic histogram bucket; readers tolerate lag
        self.counts[(bits as usize).min(64)].fetch_add(1, Ordering::Relaxed);
    }

    /// Exact lower median of recorded bit counts (0 when empty).
    fn median(&self) -> u64 {
        let loaded: Vec<u64> = self
            .counts
            .iter()
            // relaxed: monitoring read; buckets are independent
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = loaded.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = total.div_ceil(2);
        let mut cumulative = 0;
        for (bits, n) in loaded.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bits as u64;
            }
        }
        0
    }

    /// Highest recorded bit count (0 when empty).
    fn max(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .rev()
            // relaxed: monitoring read; buckets are independent
            .find(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(bits, _)| bits as u64)
            .unwrap_or(0)
    }
}

/// Live counters for the admission pipeline. Cheap to update from any
/// worker thread.
#[derive(Debug, Default)]
pub struct FrameworkMetrics {
    /// Challenges issued (Figure 1, step 4).
    pub challenges_issued: Counter,
    /// Solutions verified successfully (step 6).
    pub solutions_accepted: Counter,
    /// Solutions rejected, any reason.
    pub solutions_rejected: Counter,
    /// Requests admitted without a puzzle (bypass threshold).
    pub bypassed: Counter,
    /// Shard count of the replay guard (set once at build; lock-pressure
    /// observability — saturation of a structure concentrates on
    /// `1/shards` of the traffic).
    pub replay_shards: Gauge,
    /// Shard count of the audit log (set once at build).
    pub audit_shards: Gauge,
    /// Shard count of the cost ledger (set once at build).
    pub ledger_shards: Gauge,
    /// Live (unexpired) replay entries evicted by the capacity bound —
    /// nonzero means the guard is undersized and replays became
    /// theoretically possible. Synced from the guard after every
    /// verification and by
    /// [`Framework::metrics_snapshot`](crate::Framework::metrics_snapshot).
    pub replay_evicted_live: Gauge,
    /// Clients currently tracked by the online behavior recorder (0 when
    /// no online loop is attached; refreshed by the decay worker's
    /// sweep).
    pub behavior_tracked: Gauge,
    /// Decay sweeps the online worker has completed.
    pub behavior_sweeps: Counter,
    /// Behavior sketches pruned by decay (clients fully forgotten) or
    /// evicted by the recorder's capacity bound, cumulative.
    pub behavior_pruned: Counter,
    /// `accept()` errors the TCP acceptor has absorbed (EMFILE and
    /// friends). Before this counter an fd-exhaustion event was invisible:
    /// the acceptor backed off silently.
    pub accept_errors: Counter,
    /// The acceptor's current accept-error backoff in milliseconds (0
    /// while accepting normally; climbs toward the 500 ms cap while
    /// `accept()` keeps failing).
    pub accept_backoff_ms: Gauge,
    /// Requests refused by the per-client rate limiter before reaching
    /// the framework (the limiter sits in front of the pipeline, so these
    /// are *not* in `solutions_rejected` or `rejected_by_reason`).
    pub rate_limited: Counter,
    /// Connections currently open across all reactor shards.
    pub open_connections: Gauge,
    /// Connections admitted past the accept gate, cumulative.
    pub accepted_total: Counter,
    /// Connections closed by the idle-deadline reaper.
    pub reaped_idle: Counter,
    /// Connections refused at accept because their source IP was at its
    /// concurrent-connection cap.
    pub per_ip_cap_rejections: Counter,
    /// Connections refused at accept because the global
    /// `max_connections` cap was full.
    pub max_conn_rejections: Counter,
    /// Connections closed because their bounded outbound queue
    /// overflowed (the peer stopped reading its replies).
    pub outbound_overflow_closes: Counter,
    /// Reactor poll wakeups (returns from the readiness wait).
    pub reactor_wakeups: Counter,
    /// Readiness events delivered across all wakeups. The ratio to
    /// [`reactor_wakeups`](Self::reactor_wakeups) says how much work each
    /// wakeup amortizes — near 1 under light load, rising under load as
    /// one `epoll_wait` return carries many ready connections.
    pub reactor_ready_events: Counter,
    /// Rejections keyed by the verifier's reason label (lock-free).
    rejected_by_reason: RejectionCounts,
    /// Distribution of issued difficulties in bits (lock-free).
    issued_difficulty: DifficultyBuckets,
    /// Per-stage pipeline latency (lock-free).
    stage_timers: StageTimers,
    /// State for per-second rate derivation between timed snapshots.
    rate_window: RateWindow,
}

/// Remembers the totals seen by the previous timed snapshot so
/// [`FrameworkMetrics::snapshot_at`] can report rejection *rates*, not
/// just monotonic totals.
#[derive(Debug, Default)]
struct RateWindow {
    last_ms: AtomicU64,
    last_replayed: AtomicU64,
    last_rate_limited: AtomicU64,
    last_rejected: AtomicU64,
    last_accepted: AtomicU64,
}

impl FrameworkMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a rejection under a stable reason label (lock-free;
    /// unknown labels tally under `"other"`).
    pub fn record_rejection(&self, reason: &'static str) {
        self.solutions_rejected.inc();
        self.rejected_by_reason.record(reason);
    }

    /// Records the difficulty of an issued challenge (lock-free).
    pub fn record_issued_difficulty(&self, bits: u8) {
        self.challenges_issued.inc();
        self.issued_difficulty.record(bits);
    }

    /// Records a batch of issued difficulties: one add to the issue
    /// counter for the whole group, one bucket update per challenge.
    pub fn record_issued_difficulties(&self, bits: impl IntoIterator<Item = u8>) {
        let mut n = 0u64;
        for b in bits {
            self.issued_difficulty.record(b);
            n += 1;
        }
        if n > 0 {
            self.challenges_issued.add(n);
        }
    }

    /// Adds one stage run to the per-stage latency counters: `stage`
    /// indexes [`STAGE_NAMES`], `items` is how many contexts the stage
    /// actually processed, `nanos` the stage's wall-clock cost for the
    /// batch.
    pub fn record_stage(&self, stage: usize, items: u64, nanos: u64) {
        self.stage_timers.record(stage, items, nanos);
    }

    /// Takes a timed snapshot: like [`FrameworkMetrics::snapshot`], plus
    /// per-second rejection rates derived against the previous
    /// `snapshot_at` call (the first call, and calls with a non-advancing
    /// clock, report 0.0 rates). Concurrent callers race benignly over
    /// the shared rate window — each computes rates against *some* recent
    /// reading, which is all a monitoring rate needs.
    pub fn snapshot_at(&self, now_ms: u64) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        let replayed = self.rejected_by_reason.count_for("replayed");
        let rate_limited = self.rate_limited.get();
        let rejected = self.solutions_rejected.get();
        let accepted = self.accepted_total.get();
        // relaxed: the window cells are monitoring state; swaps make each
        // delta consumed by exactly one reader, and skew between cells
        // only perturbs one reported rate sample.
        let prev_ms = self.rate_window.last_ms.swap(now_ms, Ordering::Relaxed);
        let prev_replayed = self
            .rate_window
            .last_replayed
            .swap(replayed, Ordering::Relaxed); // relaxed: as above
        let prev_rate_limited = self
            .rate_window
            .last_rate_limited
            .swap(rate_limited, Ordering::Relaxed); // relaxed: as above
        let prev_rejected = self
            .rate_window
            .last_rejected
            .swap(rejected, Ordering::Relaxed); // relaxed: as above
        let prev_accepted = self
            .rate_window
            .last_accepted
            .swap(accepted, Ordering::Relaxed); // relaxed: as above
        if prev_ms > 0 && now_ms > prev_ms {
            let dt_s = (now_ms - prev_ms) as f64 / 1_000.0;
            snap.replay_rejects_per_s = replayed.saturating_sub(prev_replayed) as f64 / dt_s;
            snap.rate_limited_per_s = rate_limited.saturating_sub(prev_rate_limited) as f64 / dt_s;
            snap.rejections_per_s =
                rejected.saturating_sub(prev_rejected) as f64 / dt_s + snap.rate_limited_per_s;
            snap.accepts_per_s = accepted.saturating_sub(prev_accepted) as f64 / dt_s;
        }
        snap
    }

    /// Takes a snapshot for reporting. Each field is an atomic read;
    /// fields racing with concurrent updates may be offset from each
    /// other by in-flight operations. Per-second rates are 0.0 here; use
    /// [`FrameworkMetrics::snapshot_at`] to derive them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            challenges_issued: self.challenges_issued.get(),
            solutions_accepted: self.solutions_accepted.get(),
            solutions_rejected: self.solutions_rejected.get(),
            bypassed: self.bypassed.get(),
            rejected_by_reason: self.rejected_by_reason.snapshot(),
            median_issued_difficulty: self.issued_difficulty.median(),
            max_issued_difficulty: self.issued_difficulty.max(),
            replay_shards: self.replay_shards.get().max(0) as u64,
            audit_shards: self.audit_shards.get().max(0) as u64,
            ledger_shards: self.ledger_shards.get().max(0) as u64,
            replay_evicted_live: self.replay_evicted_live.get().max(0) as u64,
            behavior_tracked: self.behavior_tracked.get().max(0) as u64,
            behavior_sweeps: self.behavior_sweeps.get(),
            behavior_pruned: self.behavior_pruned.get(),
            accept_errors: self.accept_errors.get(),
            accept_backoff_ms: self.accept_backoff_ms.get().max(0) as u64,
            rate_limited: self.rate_limited.get(),
            open_connections: self.open_connections.get().max(0) as u64,
            accepted_total: self.accepted_total.get(),
            reaped_idle: self.reaped_idle.get(),
            per_ip_cap_rejections: self.per_ip_cap_rejections.get(),
            max_conn_rejections: self.max_conn_rejections.get(),
            outbound_overflow_closes: self.outbound_overflow_closes.get(),
            reactor_wakeups: self.reactor_wakeups.get(),
            reactor_ready_events: self.reactor_ready_events.get(),
            ready_events_per_wakeup: {
                let wakeups = self.reactor_wakeups.get();
                if wakeups == 0 {
                    0.0
                } else {
                    self.reactor_ready_events.get() as f64 / wakeups as f64
                }
            },
            replay_rejects_per_s: 0.0,
            rate_limited_per_s: 0.0,
            rejections_per_s: 0.0,
            accepts_per_s: 0.0,
            stage_timings: self.stage_timers.snapshot(),
        }
    }
}

/// A serializable point-in-time view of [`FrameworkMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Challenges issued.
    pub challenges_issued: u64,
    /// Solutions accepted.
    pub solutions_accepted: u64,
    /// Solutions rejected.
    pub solutions_rejected: u64,
    /// Bypass admissions.
    pub bypassed: u64,
    /// Rejections by reason label.
    pub rejected_by_reason: HashMap<String, u64>,
    /// Median issued difficulty in bits.
    pub median_issued_difficulty: u64,
    /// Maximum issued difficulty in bits.
    pub max_issued_difficulty: u64,
    /// Shard count of the replay guard.
    pub replay_shards: u64,
    /// Shard count of the audit log.
    pub audit_shards: u64,
    /// Shard count of the cost ledger.
    pub ledger_shards: u64,
    /// Live replay entries evicted by the capacity bound (alarm signal).
    pub replay_evicted_live: u64,
    /// Clients tracked by the online behavior recorder.
    pub behavior_tracked: u64,
    /// Decay sweeps completed by the online worker.
    pub behavior_sweeps: u64,
    /// Behavior sketches pruned by decay or capacity eviction.
    pub behavior_pruned: u64,
    /// TCP `accept()` errors absorbed by the acceptor's backoff loop.
    pub accept_errors: u64,
    /// The acceptor's current accept-error backoff (ms; 0 = healthy).
    pub accept_backoff_ms: u64,
    /// Requests refused by the per-client rate limiter (total).
    pub rate_limited: u64,
    /// Connections currently open across all reactor shards.
    pub open_connections: u64,
    /// Connections admitted past the accept gate, cumulative.
    pub accepted_total: u64,
    /// Connections closed by the idle-deadline reaper.
    pub reaped_idle: u64,
    /// Accept-time refusals by the per-IP concurrent-connection cap.
    pub per_ip_cap_rejections: u64,
    /// Accept-time refusals by the global connection cap.
    pub max_conn_rejections: u64,
    /// Connections closed for outbound-queue overflow (slow readers).
    pub outbound_overflow_closes: u64,
    /// Reactor poll wakeups.
    pub reactor_wakeups: u64,
    /// Readiness events delivered across all wakeups.
    pub reactor_ready_events: u64,
    /// Lifetime average of ready events delivered per wakeup (0.0 before
    /// the first wakeup) — the reactor's batching leverage.
    pub ready_events_per_wakeup: f64,
    /// Replay rejections per second over the last snapshot window (0.0
    /// outside [`FrameworkMetrics::snapshot_at`]).
    pub replay_rejects_per_s: f64,
    /// Rate-limiter refusals per second over the last snapshot window.
    pub rate_limited_per_s: f64,
    /// All rejections per second (verifier rejections + rate-limiter
    /// refusals) over the last snapshot window.
    pub rejections_per_s: f64,
    /// Connections admitted per second over the last snapshot window.
    pub accepts_per_s: f64,
    /// Per-stage pipeline latency, in chain order, for stages that have
    /// run (wall-clock totals — two runs of the same workload report
    /// different nanosecond counts, so equality comparisons of whole
    /// snapshots should expect that).
    pub stage_timings: Vec<StageTiming>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let m = FrameworkMetrics::new();
        m.record_issued_difficulty(5);
        m.record_issued_difficulty(9);
        m.solutions_accepted.inc();
        m.record_rejection("replayed");
        m.record_rejection("replayed");
        m.record_rejection("expired");

        let snap = m.snapshot();
        assert_eq!(snap.challenges_issued, 2);
        assert_eq!(snap.solutions_accepted, 1);
        assert_eq!(snap.solutions_rejected, 3);
        assert_eq!(snap.rejected_by_reason["replayed"], 2);
        assert_eq!(snap.rejected_by_reason["expired"], 1);
        assert_eq!(snap.max_issued_difficulty, 9);
        assert!(snap.median_issued_difficulty >= 5);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = FrameworkMetrics::new().snapshot();
        assert_eq!(snap.challenges_issued, 0);
        assert_eq!(snap.median_issued_difficulty, 0);
        assert!(snap.rejected_by_reason.is_empty());
        assert_eq!(snap.behavior_tracked, 0);
        assert_eq!(snap.behavior_sweeps, 0);
        assert_eq!(snap.behavior_pruned, 0);
    }

    #[test]
    fn behavior_gauges_flow_into_snapshot() {
        let m = FrameworkMetrics::new();
        m.behavior_tracked.set(12);
        m.behavior_sweeps.inc();
        m.behavior_pruned.add(3);
        let snap = m.snapshot();
        assert_eq!(snap.behavior_tracked, 12);
        assert_eq!(snap.behavior_sweeps, 1);
        assert_eq!(snap.behavior_pruned, 3);
    }

    #[test]
    fn unknown_rejection_reasons_tally_under_other() {
        let m = FrameworkMetrics::new();
        m.record_rejection("some_future_reason");
        let snap = m.snapshot();
        assert_eq!(snap.rejected_by_reason["other"], 1);
        assert_eq!(snap.solutions_rejected, 1);
    }

    #[test]
    fn difficulty_median_is_exact() {
        let m = FrameworkMetrics::new();
        for bits in [3u8, 3, 3, 7, 9] {
            m.record_issued_difficulty(bits);
        }
        let snap = m.snapshot();
        assert_eq!(snap.median_issued_difficulty, 3);
        assert_eq!(snap.max_issued_difficulty, 9);
    }

    #[test]
    fn metrics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameworkMetrics>();
    }

    #[test]
    fn batched_difficulty_recording_matches_singles() {
        let single = FrameworkMetrics::new();
        let batched = FrameworkMetrics::new();
        for bits in [3u8, 3, 7, 9] {
            single.record_issued_difficulty(bits);
        }
        batched.record_issued_difficulties([3u8, 3, 7, 9]);
        batched.record_issued_difficulties([]);
        let (a, b) = (single.snapshot(), batched.snapshot());
        assert_eq!(a.challenges_issued, b.challenges_issued);
        assert_eq!(a.median_issued_difficulty, b.median_issued_difficulty);
        assert_eq!(a.max_issued_difficulty, b.max_issued_difficulty);
    }

    #[test]
    fn stage_quantiles_reflect_per_item_cost() {
        let m = FrameworkMetrics::new();
        // 49 cheap batches and one slow one: p50 tracks the common case,
        // p99 the outlier (within the histogram's 1.6 % bucket error).
        for _ in 0..49 {
            m.record_stage(0, 1, 1_000);
        }
        m.record_stage(0, 1, 1_000_000);
        let timing = &m.snapshot().stage_timings[0];
        assert!(
            (980..=1_020).contains(&timing.p50_ns),
            "p50 was {}",
            timing.p50_ns
        );
        assert!(
            timing.p99_ns >= 900_000,
            "p99 {} missed the outlier",
            timing.p99_ns
        );
        // Batched recording amortizes: a 32-item batch at 32_000 ns is 32
        // observations of ~1_000 ns each.
        let m2 = FrameworkMetrics::new();
        m2.record_stage(0, 32, 32_000);
        let timing = &m2.snapshot().stage_timings[0];
        assert!(
            (980..=1_020).contains(&timing.p50_ns),
            "batched p50 was {}",
            timing.p50_ns
        );
    }

    #[test]
    fn acceptor_health_flows_into_snapshot() {
        let m = FrameworkMetrics::new();
        m.accept_errors.add(3);
        m.accept_backoff_ms.set(250);
        let snap = m.snapshot();
        assert_eq!(snap.accept_errors, 3);
        assert_eq!(snap.accept_backoff_ms, 250);
    }

    #[test]
    fn snapshot_at_derives_per_second_rates() {
        let m = FrameworkMetrics::new();
        // First timed snapshot establishes the window: rates are 0.
        let first = m.snapshot_at(10_000);
        assert_eq!(first.replay_rejects_per_s, 0.0);

        for _ in 0..20 {
            m.record_rejection("replayed");
        }
        for _ in 0..10 {
            m.rate_limited.inc();
        }
        m.record_rejection("expired");

        // 2 seconds later: 20 replays → 10/s, 10 rate-limits → 5/s,
        // 21 verifier rejections + 10 refusals → 15.5/s total.
        let snap = m.snapshot_at(12_000);
        assert_eq!(snap.replay_rejects_per_s, 10.0);
        assert_eq!(snap.rate_limited_per_s, 5.0);
        assert_eq!(snap.rejections_per_s, 15.5);
        assert_eq!(snap.rate_limited, 10);

        // A quiet window reports rates back at zero.
        let quiet = m.snapshot_at(13_000);
        assert_eq!(quiet.rejections_per_s, 0.0);

        // Untimed snapshots never fabricate rates.
        assert_eq!(m.snapshot().replay_rejects_per_s, 0.0);
    }

    #[test]
    fn snapshot_at_with_stalled_clock_is_safe() {
        let m = FrameworkMetrics::new();
        m.snapshot_at(5_000);
        m.record_rejection("replayed");
        let snap = m.snapshot_at(5_000); // dt = 0: no division
        assert_eq!(snap.replay_rejects_per_s, 0.0);
    }

    #[test]
    fn stage_timers_accumulate_per_stage() {
        let m = FrameworkMetrics::new();
        assert!(m.snapshot().stage_timings.is_empty());
        m.record_stage(0, 1, 100); // score, sequential
        m.record_stage(0, 32, 900); // score, batched
        m.record_stage(3, 32, 5_000); // issue
        m.record_stage(usize::MAX, 1, 1); // out of range → last slot
        let timings = m.snapshot().stage_timings;
        assert_eq!(timings.len(), 3);
        assert_eq!(timings[0].stage, "score");
        assert_eq!(timings[0].batches, 2);
        assert_eq!(timings[0].items, 33);
        assert_eq!(timings[0].total_ns, 1_000);
        assert_eq!(timings[1].stage, "issue");
        assert_eq!(timings[2].stage, "solution_telemetry");
    }
}
