//! Declarative framework configuration.
//!
//! Everything an operator tunes — which policy, TTLs, caps, bypass — can be
//! expressed as data and applied to a [`FrameworkBuilder`], so deployments
//! can keep their admission posture in version-controlled config.

use crate::framework::FrameworkBuilder;
use aipow_policy::registry;
use aipow_pow::Difficulty;
use aipow_trace::{TraceConfig, Tracer};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serializable framework settings.
///
/// ```
/// use aipow_core::FrameworkConfig;
/// let config = FrameworkConfig {
///     policy_spec: "policy3:eps=1.5".into(),
///     ..Default::default()
/// };
/// let builder = config.apply()?; // still needs .model(..) and .master_key(..)
/// # let _ = builder;
/// # Ok::<(), aipow_core::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FrameworkConfig {
    /// Policy spec: a registry shorthand (`policy1`, `policy3:eps=2.0`) or
    /// DSL source (see [`aipow_policy::dsl`]).
    pub policy_spec: String,
    /// Seed for randomized policies.
    pub policy_seed: u64,
    /// Challenge TTL in milliseconds.
    pub ttl_ms: u64,
    /// Replay-guard capacity (entries).
    pub replay_capacity: usize,
    /// Maximum difficulty the verifier accepts (bits).
    pub difficulty_cap_bits: u8,
    /// Tolerated clock skew in milliseconds.
    pub max_skew_ms: u64,
    /// Admit scores strictly below this without a puzzle (None = paper
    /// behaviour: everyone works).
    pub bypass_threshold: Option<f64>,
    /// Audit-log capacity (events).
    pub audit_capacity: usize,
    /// Cost-ledger capacity (clients).
    pub ledger_capacity: usize,
    /// Shard count for per-client structures (rounded up to a power of
    /// two); `None` picks an automatic per-structure count from the
    /// machine's available parallelism. Capacity-evicting structures
    /// raise the count further so no eviction scan exceeds
    /// [`eviction_max_scan`](Self::eviction_max_scan).
    pub shard_count: Option<usize>,
    /// Bound on the entries one capacity-eviction victim scan may visit
    /// — the worst-case hot-path cost of an insert at capacity, kept
    /// independent of the table's total capacity by raising the shard
    /// count (`aipow_shard::ShardLayout::bounded`). Applies to the cost
    /// ledger. The online recorder's sketch table is bounded separately
    /// by [`OnlineSettings::max_scan`] (same default), since the online
    /// settings travel as a self-contained block.
    pub eviction_max_scan: usize,
    /// Ceiling on the group size the framework's batch entry points
    /// (`handle_request_batch`, `handle_solution_batch`) process per
    /// pipeline pass — bounds how long one batch holds the policy
    /// read-lock, the seed-DRBG lock, and each audit/ledger shard lock.
    /// The TCP server drains up to this many pipelined frames per
    /// connection wakeup. Must be at least 1.
    pub max_batch: usize,
    /// Lane width for the verifier's multi-buffer SHA-256 kernel — how
    /// many challenge MACs / work digests batched verification hashes
    /// per compression loop. `None` (the default) auto-detects
    /// ([`aipow_crypto::auto_lanes`]); explicit values must be in
    /// `[1, 8]`, with 1 forcing the scalar path. Purely a performance
    /// knob: every width computes identical outcomes.
    ///
    /// This knob was previously named `verify_lanes`; configs using the
    /// old name still deserialize (it is a serde alias), matching the
    /// solver's `--lanes` flag and `SolverOptions::lanes`.
    #[serde(alias = "verify_lanes")]
    pub lanes: Option<usize>,
    /// Reputation score at or above which clients are routed to the
    /// memory-hard puzzle backend instead of SHA-256 (see
    /// [`aipow_policy::ThresholdRouter`]; higher score = more
    /// suspicious). `None` (the default) keeps every client on the
    /// SHA-256 backend. Must be a finite number in `[0, 10]`.
    pub memory_hard_above: Option<f64>,
    /// Arena size in MiB minted into memory-hard challenges. `None`
    /// uses the backend default
    /// ([`aipow_crypto::memmix::DEFAULT_ARENA_MIB`]); explicit values
    /// must lie in `[aipow_crypto::memmix::MIN_ARENA_MIB,
    /// aipow_crypto::memmix::MAX_ARENA_MIB]`.
    pub memory_hard_arena_mib: Option<u8>,
    /// Request-trace sampling rate: trace 1 in `trace_sample_rate`
    /// admissions through the `aipow-trace` span layer. 0 (the default)
    /// disables tracing entirely — no tracer is attached and the hot path
    /// pays nothing. 1 traces every request (tests and simulations).
    pub trace_sample_rate: u64,
    /// Total span capacity of the tracer's ring buffers — the flight
    /// recorder's look-back window when an anomaly trigger freezes a
    /// dump. Ignored when [`trace_sample_rate`](Self::trace_sample_rate)
    /// is 0; must be positive otherwise.
    pub flight_recorder_capacity: usize,
    /// Online behavioral-reputation loop settings; `None` disables the
    /// loop (the paper's static-feature behaviour). The settings are plain
    /// data so deployments can version-control them.
    ///
    /// **Carried, validated, but not wired by [`apply`](Self::apply)**:
    /// the loop needs the *built* framework (its tap and clock), which a
    /// builder cannot provide. After `build()`, pass these settings to
    /// `aipow_online::OnlineLoop::attach(framework, prior, config.online
    /// .clone().unwrap())` — or set `aipow_net::ServerConfig::online`,
    /// which does exactly that.
    pub online: Option<OnlineSettings>,
}

/// Tuning for the online behavioral reputation loop (see the
/// `aipow-online` crate). Lives here, beside the rest of the framework
/// config, so it can ride inside [`FrameworkConfig`] and
/// `aipow_net::ServerConfig` as serializable data without `aipow-core`
/// depending on the online crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct OnlineSettings {
    /// Maximum clients the behavior recorder tracks. Enforced per shard
    /// (`capacity / shard_count` each): a full shard evicts its
    /// least-recently-seen sketch (cheapest-eviction, like the cost
    /// ledger) under a single lock, keeping the tap's worst case bounded
    /// on the admission path.
    pub capacity: usize,
    /// Shard count for the recorder's sketch table; `None` picks the
    /// machine default. Like the other capacity-evicting structures, the
    /// count is adjusted on both sides
    /// (`aipow_shard::ShardLayout::bounded`): raised so no shard holds
    /// more than [`max_scan`](Self::max_scan) sketches (the eviction
    /// victim scan runs under the shard lock on the admission path and
    /// must stay bounded), capped at `capacity`, and floored to a power
    /// of two — so per-shard capacity stays ≥ 1 and the total population
    /// bound never exceeds `capacity`.
    pub shard_count: Option<usize>,
    /// Bound on the entries one eviction victim scan may visit in the
    /// sketch table.
    pub max_scan: usize,
    /// Half-life of the exponential decay applied to every behavioral
    /// counter, in milliseconds. Reputation recovers on this timescale
    /// after a client's behaviour improves.
    pub half_life_ms: u64,
    /// Number of observed events at which live behaviour and the prior
    /// are weighted equally. Cold clients (zero events) score exactly the
    /// prior; confidence grows as `events / (events + prior_strength)`.
    pub prior_strength: f64,
    /// Period of the background decay/rescore sweep, in milliseconds.
    pub decay_interval_ms: u64,
    /// Sketches whose decayed event weight falls below this are pruned by
    /// the sweep (full redemption: the client is forgotten).
    pub prune_below: f64,
    /// When set, the decay worker derives `Framework::set_load` from the
    /// observed aggregate arrival rate: `load = rps / capacity_rps`,
    /// clamped to `[0, 1]`.
    pub load_capacity_rps: Option<f64>,
}

impl Default for OnlineSettings {
    fn default() -> Self {
        OnlineSettings {
            capacity: 65_536,
            shard_count: None,
            max_scan: aipow_shard::DEFAULT_MAX_SCAN,
            half_life_ms: 60_000,
            prior_strength: 16.0,
            decay_interval_ms: 1_000,
            prune_below: 0.01,
            load_capacity_rps: None,
        }
    }
}

impl OnlineSettings {
    /// Validates the settings.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero capacities/half-life, bad shard
    /// counts, or non-finite weights.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.capacity == 0 {
            return Err(ConfigError::ZeroCapacity {
                field: "online recorder",
            });
        }
        if self.half_life_ms == 0 {
            return Err(ConfigError::ZeroDuration {
                field: "online half-life",
            });
        }
        if self.decay_interval_ms == 0 {
            return Err(ConfigError::ZeroDuration {
                field: "online decay interval",
            });
        }
        if let Some(shards) = self.shard_count {
            if shards == 0 || shards > aipow_shard::MAX_SHARDS {
                return Err(ConfigError::BadShardCount { requested: shards });
            }
        }
        if self.max_scan == 0 {
            return Err(ConfigError::BadMaxScan { requested: 0 });
        }
        if !self.prior_strength.is_finite() || self.prior_strength < 0.0 {
            return Err(ConfigError::BadOnlineWeight {
                field: "prior_strength",
                value: self.prior_strength,
            });
        }
        if !self.prune_below.is_finite() || self.prune_below < 0.0 {
            return Err(ConfigError::BadOnlineWeight {
                field: "prune_below",
                value: self.prune_below,
            });
        }
        if let Some(rps) = self.load_capacity_rps {
            if !rps.is_finite() || rps <= 0.0 {
                return Err(ConfigError::BadOnlineWeight {
                    field: "load_capacity_rps",
                    value: rps,
                });
            }
        }
        Ok(())
    }
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            policy_spec: "policy2".into(),
            policy_seed: 0,
            ttl_ms: aipow_pow::issuer::DEFAULT_TTL_MS,
            replay_capacity: aipow_pow::replay::DEFAULT_CAPACITY,
            difficulty_cap_bits: 40,
            max_skew_ms: aipow_pow::verifier::DEFAULT_MAX_SKEW_MS,
            bypass_threshold: None,
            audit_capacity: 1_024,
            ledger_capacity: 4_096,
            shard_count: None,
            eviction_max_scan: aipow_shard::DEFAULT_MAX_SCAN,
            max_batch: crate::framework::DEFAULT_MAX_BATCH,
            lanes: None,
            memory_hard_above: None,
            memory_hard_arena_mib: None,
            trace_sample_rate: 0,
            flight_recorder_capacity: TraceConfig::default().ring_capacity,
            online: None,
        }
    }
}

/// Error applying a [`FrameworkConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The policy spec did not resolve.
    Policy(registry::SpecError),
    /// The difficulty cap exceeds 64 bits.
    BadDifficultyCap {
        /// The rejected cap.
        bits: u8,
    },
    /// A capacity field was zero.
    ZeroCapacity {
        /// Which field was zero.
        field: &'static str,
    },
    /// The shard count was zero or beyond the supported maximum.
    BadShardCount {
        /// The rejected count.
        requested: usize,
    },
    /// The eviction scan bound was zero.
    BadMaxScan {
        /// The rejected bound.
        requested: usize,
    },
    /// The batch-size ceiling was zero.
    BadMaxBatch {
        /// The rejected ceiling.
        requested: usize,
    },
    /// The verification lane width was outside `[1, 8]`.
    BadVerifyLanes {
        /// The rejected width.
        requested: usize,
    },
    /// The bypass threshold was not a finite number in `[0, 10]`.
    BadBypassThreshold {
        /// The rejected threshold.
        value: f64,
    },
    /// The memory-hard routing threshold was not a finite number in
    /// `[0, 10]`.
    BadRoutingThreshold {
        /// The rejected threshold.
        value: f64,
    },
    /// The memory-hard arena size was outside the supported MiB range.
    BadArenaMib {
        /// The rejected size in MiB.
        requested: u8,
    },
    /// A duration field was zero.
    ZeroDuration {
        /// Which field was zero.
        field: &'static str,
    },
    /// An online-loop weight was not a finite number in its valid range.
    BadOnlineWeight {
        /// Which field was invalid.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Policy(e) => write!(f, "policy spec error: {e}"),
            ConfigError::BadDifficultyCap { bits } => {
                write!(f, "difficulty cap {bits} exceeds 64 bits")
            }
            ConfigError::ZeroCapacity { field } => {
                write!(f, "{field} capacity must be positive")
            }
            ConfigError::BadShardCount { requested } => {
                write!(
                    f,
                    "shard count {requested} outside [1, {}]",
                    aipow_shard::MAX_SHARDS
                )
            }
            ConfigError::BadMaxScan { requested } => {
                write!(f, "eviction scan bound {requested} must be positive")
            }
            ConfigError::BadMaxBatch { requested } => {
                write!(f, "batch ceiling {requested} must be at least 1")
            }
            ConfigError::BadVerifyLanes { requested } => {
                write!(
                    f,
                    "verification lane width {requested} outside [1, {}]",
                    aipow_crypto::MAX_LANES
                )
            }
            ConfigError::BadBypassThreshold { value } => {
                write!(f, "bypass threshold {value} outside [0, 10]")
            }
            ConfigError::BadRoutingThreshold { value } => {
                write!(f, "memory-hard routing threshold {value} outside [0, 10]")
            }
            ConfigError::BadArenaMib { requested } => {
                write!(
                    f,
                    "memory-hard arena size {requested} MiB outside [{}, {}]",
                    aipow_crypto::memmix::MIN_ARENA_MIB,
                    aipow_crypto::memmix::MAX_ARENA_MIB
                )
            }
            ConfigError::ZeroDuration { field } => {
                write!(f, "{field} must be a positive number of milliseconds")
            }
            ConfigError::BadOnlineWeight { field, value } => {
                write!(f, "online setting {field} = {value} is out of range")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<registry::SpecError> for ConfigError {
    fn from(e: registry::SpecError) -> Self {
        ConfigError::Policy(e)
    }
}

impl FrameworkConfig {
    /// Validates the config and produces a pre-populated builder. The
    /// caller still supplies the model and master key (neither is sensibly
    /// expressible as plain data). Likewise, [`online`](Self::online) is
    /// validated here but must be wired by the caller after `build()`
    /// (via `aipow_online::OnlineLoop::attach` or
    /// `aipow_net::ServerConfig::online`) — a builder cannot construct a
    /// loop that needs the built framework.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid field values or an unresolvable
    /// policy spec.
    pub fn apply(&self) -> Result<FrameworkBuilder, ConfigError> {
        let policy = registry::from_spec(&self.policy_spec, self.policy_seed)?;
        let cap = Difficulty::new(self.difficulty_cap_bits).map_err(|_| {
            ConfigError::BadDifficultyCap {
                bits: self.difficulty_cap_bits,
            }
        })?;
        if self.replay_capacity == 0 {
            return Err(ConfigError::ZeroCapacity { field: "replay" });
        }
        if self.audit_capacity == 0 {
            return Err(ConfigError::ZeroCapacity { field: "audit" });
        }
        if self.ledger_capacity == 0 {
            return Err(ConfigError::ZeroCapacity { field: "ledger" });
        }
        if let Some(shards) = self.shard_count {
            if shards == 0 || shards > aipow_shard::MAX_SHARDS {
                return Err(ConfigError::BadShardCount { requested: shards });
            }
        }
        if self.eviction_max_scan == 0 {
            return Err(ConfigError::BadMaxScan { requested: 0 });
        }
        if self.max_batch == 0 {
            return Err(ConfigError::BadMaxBatch { requested: 0 });
        }
        if let Some(lanes) = self.lanes {
            if lanes == 0 || lanes > aipow_crypto::MAX_LANES {
                return Err(ConfigError::BadVerifyLanes { requested: lanes });
            }
        }
        if let Some(t) = self.bypass_threshold {
            if !t.is_finite() || !(0.0..=10.0).contains(&t) {
                return Err(ConfigError::BadBypassThreshold { value: t });
            }
        }
        if let Some(t) = self.memory_hard_above {
            if !t.is_finite() || !(0.0..=10.0).contains(&t) {
                return Err(ConfigError::BadRoutingThreshold { value: t });
            }
        }
        if let Some(mib) = self.memory_hard_arena_mib {
            if !aipow_crypto::memmix::validate_arena_mib(mib) {
                return Err(ConfigError::BadArenaMib { requested: mib });
            }
        }
        if self.trace_sample_rate > 0 && self.flight_recorder_capacity == 0 {
            return Err(ConfigError::ZeroCapacity {
                field: "flight recorder",
            });
        }
        if let Some(online) = &self.online {
            online.validate()?;
        }

        let mut builder = FrameworkBuilder::new()
            .policy_boxed(policy)
            .ttl_ms(self.ttl_ms)
            .replay_capacity(self.replay_capacity)
            .difficulty_cap(cap)
            .max_skew_ms(self.max_skew_ms)
            .audit_capacity(self.audit_capacity)
            .ledger_capacity(self.ledger_capacity)
            .eviction_max_scan(self.eviction_max_scan)
            .max_batch(self.max_batch);
        if let Some(t) = self.bypass_threshold {
            builder = builder.bypass_threshold(t);
        }
        if let Some(shards) = self.shard_count {
            builder = builder.shard_count(shards);
        }
        if let Some(lanes) = self.lanes {
            builder = builder.lanes(lanes);
        }
        if let Some(t) = self.memory_hard_above {
            builder = builder.route_memory_hard_above(t);
        }
        if let Some(mib) = self.memory_hard_arena_mib {
            builder = builder.memory_hard_arena_mib(mib);
        }
        if self.trace_sample_rate > 0 {
            builder = builder.tracer(Arc::new(Tracer::new(TraceConfig {
                sample_every: self.trace_sample_rate,
                ring_capacity: self.flight_recorder_capacity,
                ..TraceConfig::default()
            })));
        }
        Ok(builder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};
    use std::net::{IpAddr, Ipv4Addr};

    #[test]
    fn default_config_applies() {
        let fw = FrameworkConfig::default()
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert_eq!(fw.policy_name(), "policy2");
    }

    #[test]
    fn policy_spec_resolves_through_config() {
        let config = FrameworkConfig {
            policy_spec: "policy1".into(),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        let issued = fw
            .handle_request(IpAddr::V4(Ipv4Addr::LOCALHOST), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(issued.difficulty.bits(), 1);
    }

    #[test]
    fn dsl_policy_through_config() {
        let config = FrameworkConfig {
            policy_spec: "policy \"cfg\" { otherwise => difficulty 3; }".into(),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MAX))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert_eq!(fw.policy_name(), "cfg");
    }

    #[test]
    fn bad_policy_spec_rejected() {
        let config = FrameworkConfig {
            policy_spec: "not-a-policy".into(),
            ..Default::default()
        };
        assert!(matches!(config.apply(), Err(ConfigError::Policy(_))));
    }

    #[test]
    fn bad_cap_rejected() {
        let config = FrameworkConfig {
            difficulty_cap_bits: 65,
            ..Default::default()
        };
        assert_eq!(
            config.apply().unwrap_err(),
            ConfigError::BadDifficultyCap { bits: 65 }
        );
    }

    #[test]
    fn zero_capacities_rejected() {
        for (field, config) in [
            (
                "replay",
                FrameworkConfig {
                    replay_capacity: 0,
                    ..Default::default()
                },
            ),
            (
                "audit",
                FrameworkConfig {
                    audit_capacity: 0,
                    ..Default::default()
                },
            ),
            (
                "ledger",
                FrameworkConfig {
                    ledger_capacity: 0,
                    ..Default::default()
                },
            ),
        ] {
            assert_eq!(
                config.apply().unwrap_err(),
                ConfigError::ZeroCapacity { field },
            );
        }
    }

    #[test]
    fn shard_count_threads_through_config() {
        let config = FrameworkConfig {
            shard_count: Some(4),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert_eq!(fw.audit().shard_count(), 4);
        // The ledger raises the requested count so its eviction scan
        // stays under the default bound: 4096 / 512 = 8 shards minimum.
        assert_eq!(fw.ledger().shard_count(), 8);
        assert!(fw.ledger().per_shard_capacity() <= aipow_shard::DEFAULT_MAX_SCAN);
    }

    #[test]
    fn eviction_max_scan_threads_through_config() {
        let config = FrameworkConfig {
            ledger_capacity: 4_096,
            eviction_max_scan: 64,
            shard_count: Some(4),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert!(fw.ledger().per_shard_capacity() <= 64);
        assert!(fw.ledger().shard_count() >= 4_096 / 64);
    }

    #[test]
    fn max_batch_threads_through_config() {
        let config = FrameworkConfig {
            max_batch: 128,
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert_eq!(fw.max_batch(), 128);
        assert_eq!(FrameworkConfig::default().max_batch, 32);
    }

    #[test]
    fn lanes_threads_through_config() {
        let config = FrameworkConfig {
            lanes: Some(4),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert_eq!(fw.verifier().verify_lanes(), 4);
        // The default defers to hardware detection: always a valid width.
        assert_eq!(FrameworkConfig::default().lanes, None);
        let auto = FrameworkConfig::default()
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert!((1..=aipow_crypto::MAX_LANES).contains(&auto.verifier().verify_lanes()));
    }

    #[test]
    fn out_of_range_lanes_rejected() {
        for requested in [0, 9, 64] {
            let config = FrameworkConfig {
                lanes: Some(requested),
                ..Default::default()
            };
            assert_eq!(
                config.apply().unwrap_err(),
                ConfigError::BadVerifyLanes { requested },
                "lanes {requested} should be rejected"
            );
        }
        assert!(ConfigError::BadVerifyLanes { requested: 9 }
            .to_string()
            .contains("lane"));
    }

    #[test]
    fn memory_hard_routing_threads_through_config() {
        let config = FrameworkConfig {
            memory_hard_above: Some(6.0),
            memory_hard_arena_mib: Some(1),
            ..Default::default()
        };
        let fw = config
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MAX))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        // Score 10 ≥ 6: the issued challenge must be memory-hard, with
        // the configured arena parameter.
        let issued = fw
            .handle_request(IpAddr::V4(Ipv4Addr::LOCALHOST), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(
            issued.challenge.backend(),
            aipow_pow::BackendId::MEMORY_HARD
        );
        assert_eq!(issued.challenge.backend_param(), 1);
    }

    #[test]
    fn bad_routing_threshold_rejected() {
        for value in [-1.0, 11.0, f64::NAN] {
            let config = FrameworkConfig {
                memory_hard_above: Some(value),
                ..Default::default()
            };
            assert!(
                matches!(config.apply(), Err(ConfigError::BadRoutingThreshold { .. })),
                "threshold {value} should be rejected"
            );
        }
    }

    #[test]
    fn out_of_bounds_arena_mib_rejected() {
        for requested in [0, aipow_crypto::memmix::MAX_ARENA_MIB + 1, u8::MAX] {
            let config = FrameworkConfig {
                memory_hard_arena_mib: Some(requested),
                ..Default::default()
            };
            assert_eq!(
                config.apply().unwrap_err(),
                ConfigError::BadArenaMib { requested },
                "arena size {requested} should be rejected"
            );
        }
        // The bounds themselves are accepted.
        for requested in [
            aipow_crypto::memmix::MIN_ARENA_MIB,
            aipow_crypto::memmix::MAX_ARENA_MIB,
        ] {
            let config = FrameworkConfig {
                memory_hard_arena_mib: Some(requested),
                ..Default::default()
            };
            assert!(config.apply().is_ok(), "arena size {requested} is valid");
        }
        assert!(ConfigError::BadArenaMib { requested: 0 }
            .to_string()
            .contains("MiB"));
    }

    #[test]
    fn zero_max_batch_rejected() {
        let config = FrameworkConfig {
            max_batch: 0,
            ..Default::default()
        };
        assert_eq!(
            config.apply().unwrap_err(),
            ConfigError::BadMaxBatch { requested: 0 }
        );
        assert!(ConfigError::BadMaxBatch { requested: 0 }
            .to_string()
            .contains("batch"));
    }

    #[test]
    fn zero_max_scan_rejected() {
        let config = FrameworkConfig {
            eviction_max_scan: 0,
            ..Default::default()
        };
        assert_eq!(
            config.apply().unwrap_err(),
            ConfigError::BadMaxScan { requested: 0 }
        );
    }

    #[test]
    fn out_of_range_shard_counts_rejected() {
        for requested in [0, aipow_shard::MAX_SHARDS + 1, 1 << 40] {
            let config = FrameworkConfig {
                shard_count: Some(requested),
                ..Default::default()
            };
            assert_eq!(
                config.apply().unwrap_err(),
                ConfigError::BadShardCount { requested },
                "shard_count {requested} should be rejected"
            );
        }
    }

    #[test]
    fn bad_bypass_rejected() {
        for value in [-1.0, 11.0, f64::NAN] {
            let config = FrameworkConfig {
                bypass_threshold: Some(value),
                ..Default::default()
            };
            assert!(matches!(
                config.apply(),
                Err(ConfigError::BadBypassThreshold { .. })
            ));
        }
    }

    #[test]
    fn online_settings_validate_through_config() {
        let good = FrameworkConfig {
            online: Some(OnlineSettings::default()),
            ..Default::default()
        };
        assert!(good.apply().is_ok());

        for bad in [
            OnlineSettings {
                capacity: 0,
                ..Default::default()
            },
            OnlineSettings {
                half_life_ms: 0,
                ..Default::default()
            },
            OnlineSettings {
                decay_interval_ms: 0,
                ..Default::default()
            },
            OnlineSettings {
                shard_count: Some(0),
                ..Default::default()
            },
            OnlineSettings {
                max_scan: 0,
                ..Default::default()
            },
            OnlineSettings {
                prior_strength: f64::NAN,
                ..Default::default()
            },
            OnlineSettings {
                prune_below: -1.0,
                ..Default::default()
            },
            OnlineSettings {
                load_capacity_rps: Some(0.0),
                ..Default::default()
            },
        ] {
            let config = FrameworkConfig {
                online: Some(bad.clone()),
                ..Default::default()
            };
            assert!(
                config.apply().is_err(),
                "settings should be rejected: {bad:?}"
            );
        }
    }

    #[test]
    fn trace_sampling_threads_through_config() {
        // Default: off — no tracer attached, hot path pays nothing.
        let off = FrameworkConfig::default()
            .apply()
            .unwrap()
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .master_key([1u8; 32])
            .build()
            .unwrap();
        assert!(off.tracer().is_none());

        let on = FrameworkConfig {
            trace_sample_rate: 1,
            flight_recorder_capacity: 256,
            ..Default::default()
        }
        .apply()
        .unwrap()
        .model(FixedScoreModel::new(ReputationScore::MIN))
        .master_key([1u8; 32])
        .build()
        .unwrap();
        let tracer = on.tracer().expect("tracer attached via config");
        assert_eq!(tracer.sample_every(), 1);
        on.handle_request(IpAddr::V4(Ipv4Addr::LOCALHOST), &FeatureVector::zeros());
        assert!(tracer.recorded() > 0);
    }

    #[test]
    fn zero_flight_recorder_capacity_rejected_when_tracing() {
        let config = FrameworkConfig {
            trace_sample_rate: 64,
            flight_recorder_capacity: 0,
            ..Default::default()
        };
        assert_eq!(
            config.apply().unwrap_err(),
            ConfigError::ZeroCapacity {
                field: "flight recorder"
            }
        );
        // With tracing off the capacity field is inert.
        let off = FrameworkConfig {
            trace_sample_rate: 0,
            flight_recorder_capacity: 0,
            ..Default::default()
        };
        assert!(off.apply().is_ok());
    }

    #[test]
    fn errors_display() {
        assert!(!ConfigError::ZeroCapacity { field: "audit" }
            .to_string()
            .is_empty());
        assert!(ConfigError::BadOnlineWeight {
            field: "prior_strength",
            value: -1.0,
        }
        .to_string()
        .contains("prior_strength"));
    }
}
