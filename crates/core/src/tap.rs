//! Behavioral taps on the admission pipeline.
//!
//! The paper's AI model "inspects the features of the request as input" —
//! but a deployment has to *produce* those features from somewhere. The
//! [`BehaviorSink`] trait is the framework's outbound half of that loop:
//! [`Framework`](crate::Framework) reports every admission decision and
//! every verification outcome to an attached sink, and an online feature
//! extractor (see the `aipow-online` crate) turns the stream into live
//! per-client sketches that feed back into the model via
//! [`FeatureSource`](crate::FeatureSource).
//!
//! The tap is designed for the hot path:
//!
//! - the framework stores the sink in a [`std::sync::OnceLock`], so the
//!   per-request cost when no sink is attached is one atomic load and a
//!   branch — no lock, ever;
//! - sink implementations are expected to shard their own state (the
//!   `aipow-online` recorder is built on `aipow-shard`), so two clients
//!   never contend on a sink-global lock;
//! - events carry only `Copy` data plus a borrowed [`VerifyError`], so
//!   emitting one allocates nothing.

use aipow_pow::{Difficulty, VerifyError};
use aipow_reputation::ReputationScore;
use std::net::IpAddr;

/// One scored request, as delivered to
/// [`BehaviorSink::on_request_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestObservation {
    /// The client that requested.
    pub ip: IpAddr,
    /// The model's score for the client.
    pub score: ReputationScore,
    /// The issued puzzle difficulty, or `None` for a bypass admission.
    pub difficulty: Option<Difficulty>,
}

/// One verification outcome, as delivered to
/// [`BehaviorSink::on_solution_batch`].
#[derive(Debug, Clone, Copy)]
pub struct SolutionObservation<'a> {
    /// The client that submitted.
    pub ip: IpAddr,
    /// `Ok` with the solved difficulty, or the verifier's rejection.
    pub outcome: Result<Difficulty, &'a VerifyError>,
}

/// Observes admission events emitted by [`Framework`](crate::Framework).
///
/// Implementations must be cheap and non-blocking: the framework calls
/// them synchronously on the request and solution paths.
pub trait BehaviorSink: Send + Sync {
    /// A resource request was scored. `difficulty` is the issued puzzle
    /// difficulty, or `None` when the request was admitted via the bypass
    /// threshold.
    fn on_request(
        &self,
        ip: IpAddr,
        now_ms: u64,
        score: ReputationScore,
        difficulty: Option<Difficulty>,
    );

    /// A solution was verified: `Ok` with the solved difficulty, or the
    /// verifier's rejection.
    fn on_solution(&self, ip: IpAddr, now_ms: u64, outcome: Result<Difficulty, &VerifyError>);

    /// A resource request was rejected upstream of the framework (e.g.
    /// by the server's per-IP rate limiter) and never reached
    /// [`Framework::handle_request`](crate::Framework::handle_request).
    ///
    /// Default: no-op. Recorders should count these toward the client's
    /// arrival rate — the heaviest flooders are precisely the clients
    /// whose requests mostly die at the limiter, and a tap blind to them
    /// would score them *better* than moderate clients.
    fn on_rate_limited(&self, _ip: IpAddr, _now_ms: u64) {}

    /// A batch of scored requests, all observed at `now_ms` (the batch
    /// admission path reads the clock once per group). The default
    /// delivers each observation through [`on_request`](Self::on_request)
    /// in order, so sinks that never override see identical events from
    /// both paths; sinks with sharded state (the `aipow-online` recorder)
    /// override this to take each shard lock once per batch instead of
    /// once per event.
    fn on_request_batch(&self, now_ms: u64, batch: &[RequestObservation]) {
        for obs in batch {
            self.on_request(obs.ip, now_ms, obs.score, obs.difficulty);
        }
    }

    /// A batch of verification outcomes, all observed at `now_ms`. Same
    /// contract as [`on_request_batch`](Self::on_request_batch): the
    /// default loops over [`on_solution`](Self::on_solution) in order.
    fn on_solution_batch(&self, now_ms: u64, batch: &[SolutionObservation<'_>]) {
        for obs in batch {
            self.on_solution(obs.ip, now_ms, obs.outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        requests: AtomicU64,
        solutions: AtomicU64,
    }

    impl BehaviorSink for CountingSink {
        fn on_request(
            &self,
            _ip: IpAddr,
            _now_ms: u64,
            _score: ReputationScore,
            _difficulty: Option<Difficulty>,
        ) {
            self.requests.fetch_add(1, Ordering::Relaxed);
        }

        fn on_solution(
            &self,
            _ip: IpAddr,
            _now_ms: u64,
            _outcome: Result<Difficulty, &VerifyError>,
        ) {
            self.solutions.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn sink_is_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<std::sync::Arc<dyn BehaviorSink>>();
        let sink: Box<dyn BehaviorSink> = Box::<CountingSink>::default();
        sink.on_request("192.0.2.1".parse().unwrap(), 0, ReputationScore::MIN, None);
        sink.on_solution("192.0.2.1".parse().unwrap(), 0, Err(&VerifyError::BadMac));
    }

    #[test]
    fn default_batch_methods_deliver_every_observation() {
        let sink = CountingSink::default();
        let ip: IpAddr = "192.0.2.1".parse().unwrap();
        sink.on_request_batch(
            7,
            &[
                RequestObservation {
                    ip,
                    score: ReputationScore::MIN,
                    difficulty: None,
                },
                RequestObservation {
                    ip,
                    score: ReputationScore::MAX,
                    difficulty: aipow_pow::Difficulty::new(5).ok(),
                },
            ],
        );
        let err = VerifyError::BadMac;
        sink.on_solution_batch(
            7,
            &[SolutionObservation {
                ip,
                outcome: Err(&err),
            }],
        );
        sink.on_solution_batch(7, &[]);
        assert_eq!(sink.requests.load(Ordering::Relaxed), 2);
        assert_eq!(sink.solutions.load(Ordering::Relaxed), 1);
    }
}
