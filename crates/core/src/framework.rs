//! The admission pipeline: Figure 1 as a value.

use crate::audit::AuditLog;
use crate::cost::CostLedger;
use crate::metrics::FrameworkMetrics;
use crate::pipeline::{self, RequestCtx, SolutionCtx};
use crate::sync::{AtomicBool, AtomicU64, OnceLock, Ordering, RwLock};
use crate::tap::BehaviorSink;
use aipow_policy::{BackendRouter, Policy, Sha256Router, ThresholdRouter};
use aipow_pow::replay::ReplayGuard;
use aipow_pow::{
    BackendId, Challenge, Difficulty, Issuer, ManualClock, Solution, SystemClock, TimeSource,
    VerifiedToken, Verifier, VerifyError,
};
use aipow_reputation::{FeatureVector, ReputationModel, ReputationScore};
use aipow_trace::{Tracer, TriggerStats};
use core::fmt;
use std::net::IpAddr;
use std::sync::Arc;

/// A challenge issued by the pipeline, with its provenance.
#[derive(Debug, Clone)]
pub struct IssuedChallenge {
    /// The authenticated puzzle for the client.
    pub challenge: Challenge,
    /// The AI model's score that drove the decision.
    pub score: ReputationScore,
    /// The policy's difficulty decision.
    pub difficulty: Difficulty,
}

/// Outcome of [`Framework::handle_request`].
#[derive(Debug, Clone)]
pub enum AdmissionDecision {
    /// The client must solve a puzzle before being served.
    Challenge(IssuedChallenge),
    /// The request was admitted without a puzzle (score under the
    /// configured bypass threshold).
    Admit {
        /// The AI model's score for the client.
        score: ReputationScore,
    },
}

impl AdmissionDecision {
    /// The issued challenge, if the decision was to challenge.
    pub fn challenge(self) -> Option<IssuedChallenge> {
        match self {
            AdmissionDecision::Challenge(issued) => Some(issued),
            AdmissionDecision::Admit { .. } => None,
        }
    }

    /// Whether the request was admitted without work.
    pub fn is_bypass(&self) -> bool {
        matches!(self, AdmissionDecision::Admit { .. })
    }
}

/// Error from [`FrameworkBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No reputation model was provided.
    MissingModel,
    /// No policy was provided.
    MissingPolicy,
    /// No master key was provided.
    MissingMasterKey,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingModel => write!(f, "framework requires a reputation model"),
            BuildError::MissingPolicy => write!(f, "framework requires a policy"),
            BuildError::MissingMasterKey => write!(f, "framework requires a master key"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Framework`]; see the crate-level example.
pub struct FrameworkBuilder {
    model: Option<Arc<dyn ReputationModel>>,
    policy: Option<Box<dyn Policy>>,
    master_key: Option<[u8; 32]>,
    clock: Arc<dyn TimeSource>,
    ttl_ms: u64,
    replay_capacity: usize,
    difficulty_cap: Difficulty,
    max_skew_ms: u64,
    bypass_threshold: Option<f64>,
    audit_capacity: usize,
    ledger_capacity: usize,
    shard_count: Option<usize>,
    eviction_max_scan: usize,
    behavior_sink: Option<Arc<dyn BehaviorSink>>,
    max_batch: usize,
    lanes: Option<usize>,
    router: Option<Arc<dyn BackendRouter>>,
    memory_hard_arena_mib: Option<u8>,
    tracer: Option<Arc<Tracer>>,
}

/// Default ceiling on the group size the batch entry points process per
/// pipeline pass (see [`FrameworkBuilder::max_batch`]).
pub const DEFAULT_MAX_BATCH: usize = 32;

impl Default for FrameworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameworkBuilder {
    /// Starts a builder with production defaults: 30 s TTL, 2 s skew,
    /// difficulty cap 40, 1 Mi replay slots, no bypass.
    pub fn new() -> Self {
        FrameworkBuilder {
            model: None,
            policy: None,
            master_key: None,
            clock: Arc::new(SystemClock),
            ttl_ms: aipow_pow::issuer::DEFAULT_TTL_MS,
            replay_capacity: aipow_pow::replay::DEFAULT_CAPACITY,
            difficulty_cap: Difficulty::saturating(40),
            max_skew_ms: aipow_pow::verifier::DEFAULT_MAX_SKEW_MS,
            bypass_threshold: None,
            audit_capacity: 1_024,
            ledger_capacity: 4_096,
            shard_count: None,
            eviction_max_scan: aipow_shard::DEFAULT_MAX_SCAN,
            behavior_sink: None,
            max_batch: DEFAULT_MAX_BATCH,
            lanes: None,
            router: None,
            memory_hard_arena_mib: None,
            tracer: None,
        }
    }

    /// Sets the reputation model (required).
    pub fn model<M: ReputationModel + 'static>(mut self, model: M) -> Self {
        self.model = Some(Arc::new(model));
        self
    }

    /// Sets the reputation model from a shared handle.
    pub fn model_arc(mut self, model: Arc<dyn ReputationModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the policy (required).
    pub fn policy<P: Policy + 'static>(mut self, policy: P) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the policy from a boxed trait object.
    pub fn policy_boxed(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the 32-byte master key from which the challenge MAC key is
    /// derived (required; use [`random_master_key`] for ephemeral
    /// deployments).
    pub fn master_key(mut self, key: [u8; 32]) -> Self {
        self.master_key = Some(key);
        self
    }

    /// Uses an explicit time source (tests, simulation).
    pub fn clock(mut self, clock: Arc<dyn TimeSource>) -> Self {
        self.clock = clock;
        self
    }

    /// Convenience: a [`ManualClock`] starting at `ms`, returned for
    /// driving the test.
    pub fn manual_clock(mut self, ms: u64) -> (Self, ManualClock) {
        let clock = ManualClock::at(ms);
        self.clock = Arc::new(clock.clone());
        (self, clock)
    }

    /// Challenge TTL in milliseconds.
    pub fn ttl_ms(mut self, ttl: u64) -> Self {
        self.ttl_ms = ttl;
        self
    }

    /// Replay-guard capacity in entries.
    pub fn replay_capacity(mut self, capacity: usize) -> Self {
        self.replay_capacity = capacity;
        self
    }

    /// Maximum difficulty the verifier will accept.
    pub fn difficulty_cap(mut self, cap: Difficulty) -> Self {
        self.difficulty_cap = cap;
        self
    }

    /// Tolerated clock skew in milliseconds.
    pub fn max_skew_ms(mut self, skew: u64) -> Self {
        self.max_skew_ms = skew;
        self
    }

    /// Admits clients scoring strictly below `threshold` without a puzzle.
    ///
    /// Off by default: the paper's design has *every* client pay a cost.
    /// This extension trades that property for zero added latency on
    /// clearly trusted traffic.
    pub fn bypass_threshold(mut self, threshold: f64) -> Self {
        self.bypass_threshold = Some(threshold);
        self
    }

    /// Audit-log capacity in events.
    pub fn audit_capacity(mut self, capacity: usize) -> Self {
        self.audit_capacity = capacity;
        self
    }

    /// Cost-ledger capacity in clients.
    pub fn ledger_capacity(mut self, capacity: usize) -> Self {
        self.ledger_capacity = capacity;
        self
    }

    /// Shard count for every per-client structure (replay guard, audit
    /// log, cost ledger), rounded up to a power of two. Defaults to an
    /// automatic per-structure choice: a multiple of the machine's
    /// available parallelism, reduced for small capacities. The
    /// capacity-evicting structures (cost ledger) additionally raise the
    /// count so no eviction scan exceeds
    /// [`eviction_max_scan`](Self::eviction_max_scan).
    pub fn shard_count(mut self, shards: usize) -> Self {
        self.shard_count = Some(shards);
        self
    }

    /// Bound on the entries one capacity-eviction victim scan may visit
    /// (the worst-case hot-path cost of an insert at capacity). The
    /// ledger's shard count is raised as needed to honor it. Defaults to
    /// [`aipow_shard::DEFAULT_MAX_SCAN`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics (via the ledger constructor) if set
    /// to zero; [`crate::FrameworkConfig`] validates it instead.
    pub fn eviction_max_scan(mut self, max_scan: usize) -> Self {
        self.eviction_max_scan = max_scan;
        self
    }

    /// Ceiling on the group size the batch entry points
    /// ([`Framework::handle_request_batch`],
    /// [`Framework::handle_solution_batch`]) push through one pipeline
    /// pass. Larger inputs are processed in chunks of this size, which
    /// bounds how long one batch holds the policy read-lock, the DRBG
    /// lock, and each audit/ledger shard lock. Clamped to a minimum of 1.
    /// Defaults to [`DEFAULT_MAX_BATCH`].
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Lane width for the verifier's multi-buffer SHA-256 kernel: how
    /// many challenge MACs / work digests batched verification hashes
    /// per compression loop (clamped to 1..=8; 1 forces the scalar
    /// path). Purely a performance knob — every width computes identical
    /// outcomes. Defaults to auto-detection
    /// ([`aipow_crypto::auto_lanes`]): 8 where the build can use 256-bit
    /// vectors, else 4.
    ///
    /// `lanes` is the one name for this knob across the API surface
    /// (this builder, `FrameworkConfig::lanes`, `ServerConfig::lanes`,
    /// the `--lanes` CLI flag, `SolverOptions::lanes`); the former
    /// builder name survives as the deprecated
    /// [`verify_lanes`](Self::verify_lanes) alias.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes);
        self
    }

    /// Deprecated spelling of [`lanes`](Self::lanes).
    #[deprecated(note = "renamed to `lanes`; the knob has one name across the API surface")]
    pub fn verify_lanes(self, lanes: usize) -> Self {
        self.lanes(lanes)
    }

    /// Routes each client to a puzzle backend by reputation score (see
    /// [`aipow_policy::BackendRouter`]). Defaults to
    /// [`Sha256Router`]: every client gets the SHA-256 preimage puzzle,
    /// the pre-routing behavior.
    pub fn backend_router(mut self, router: Arc<dyn BackendRouter>) -> Self {
        self.router = Some(router);
        self
    }

    /// Convenience for the common routing rule: clients scoring at or
    /// above `threshold` (higher = more suspicious) get the memory-hard
    /// puzzle; everyone else keeps SHA-256. Equivalent to
    /// `backend_router(Arc::new(ThresholdRouter::new(threshold)))`.
    pub fn route_memory_hard_above(self, threshold: f64) -> Self {
        self.backend_router(Arc::new(ThresholdRouter::new(threshold)))
    }

    /// Arena size in MiB minted into memory-hard challenges. Defaults to
    /// the backend default
    /// ([`aipow_crypto::memmix::DEFAULT_ARENA_MIB`]).
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics (via the issuer) on an
    /// out-of-bounds size; [`crate::FrameworkConfig`] validates it with
    /// a typed error instead.
    pub fn memory_hard_arena_mib(mut self, mib: u8) -> Self {
        self.memory_hard_arena_mib = Some(mib);
        self
    }

    /// Attaches a behavioral tap that observes every admission decision
    /// and verification outcome (see [`crate::tap::BehaviorSink`]). A sink
    /// can alternatively be attached once after build with
    /// [`Framework::set_behavior_sink`].
    pub fn behavior_sink(mut self, sink: Arc<dyn BehaviorSink>) -> Self {
        self.behavior_sink = Some(sink);
        self
    }

    /// Attaches a request tracer: sampled requests get trace IDs and each
    /// pipeline stage emits a span (see [`aipow_trace::Tracer`]). Off by
    /// default. Can alternatively be attached once after build with
    /// [`Framework::set_tracer`].
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the framework.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the model, policy, or master key is
    /// missing.
    pub fn build(self) -> Result<Framework, BuildError> {
        let model = self.model.ok_or(BuildError::MissingModel)?;
        let policy = self.policy.ok_or(BuildError::MissingPolicy)?;
        let master_key = self.master_key.ok_or(BuildError::MissingMasterKey)?;

        let replay = match self.shard_count {
            Some(shards) => ReplayGuard::with_shards(self.replay_capacity, shards),
            None => ReplayGuard::new(self.replay_capacity),
        };
        let audit = match self.shard_count {
            Some(shards) => AuditLog::with_shards(self.audit_capacity, shards),
            None => AuditLog::new(self.audit_capacity),
        };
        let ledger = CostLedger::with_layout(
            self.ledger_capacity,
            self.shard_count,
            self.eviction_max_scan,
        );

        let mut issuer =
            Issuer::with_clock(&master_key, Arc::clone(&self.clock)).with_ttl_ms(self.ttl_ms);
        if let Some(mib) = self.memory_hard_arena_mib {
            issuer = issuer.with_backend_param(BackendId::MEMORY_HARD, mib);
        }
        let mut verifier = Verifier::with_clock(&master_key, Arc::clone(&self.clock))
            .with_replay_guard(replay)
            .with_difficulty_cap(self.difficulty_cap)
            .with_max_skew_ms(self.max_skew_ms);
        if let Some(lanes) = self.lanes {
            verifier = verifier.with_verify_lanes(lanes);
        }

        let metrics = FrameworkMetrics::new();
        metrics
            .replay_shards
            .set(verifier.replay_guard().shard_count() as i64);
        metrics.audit_shards.set(audit.shard_count() as i64);
        metrics.ledger_shards.set(ledger.shard_count() as i64);

        let sink = OnceLock::new();
        if let Some(s) = self.behavior_sink {
            let _ = sink.set(s);
        }
        let tracer = OnceLock::new();
        if let Some(t) = self.tracer {
            let _ = tracer.set(t);
        }

        Ok(Framework {
            model,
            policy: RwLock::new(policy),
            router: self.router.unwrap_or_else(|| Arc::new(Sha256Router)),
            issuer,
            verifier,
            metrics,
            audit,
            ledger,
            clock: self.clock,
            load_millis: AtomicU64::new(0),
            under_attack: AtomicBool::new(false),
            bypass_threshold: self.bypass_threshold,
            max_batch: self.max_batch.max(1),
            sink,
            tracer,
        })
    }
}

impl fmt::Debug for FrameworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameworkBuilder")
            .field("has_model", &self.model.is_some())
            .field("has_policy", &self.policy.is_some())
            .field("ttl_ms", &self.ttl_ms)
            .finish_non_exhaustive()
    }
}

/// Generates a random 32-byte master key (OS entropy).
pub fn random_master_key() -> [u8; 32] {
    rand::random()
}

/// The assembled AI-assisted PoW framework.
///
/// One instance serves all connections; every method takes `&self`.
pub struct Framework {
    pub(crate) model: Arc<dyn ReputationModel>,
    pub(crate) policy: RwLock<Box<dyn Policy>>,
    /// Per-score puzzle-backend routing; consulted by the issue stage
    /// alongside the difficulty policy.
    pub(crate) router: Arc<dyn BackendRouter>,
    pub(crate) issuer: Issuer,
    verifier: Verifier,
    metrics: FrameworkMetrics,
    audit: AuditLog,
    ledger: CostLedger,
    clock: Arc<dyn TimeSource>,
    /// Server load in thousandths, for lock-free updates.
    load_millis: AtomicU64,
    pub(crate) under_attack: AtomicBool,
    pub(crate) bypass_threshold: Option<f64>,
    /// Ceiling on the group size one batch pipeline pass processes.
    max_batch: usize,
    /// Behavioral tap. A `OnceLock` keeps the hot-path cost at one atomic
    /// load when unset, while still allowing post-build attachment (the
    /// TCP server wires the online recorder to an already-built
    /// framework).
    sink: OnceLock<Arc<dyn BehaviorSink>>,
    /// Request tracer, same write-once discipline as the tap: one atomic
    /// load on the hot path when unset.
    tracer: OnceLock<Arc<Tracer>>,
}

impl Framework {
    /// Steps 2–4 of Figure 1: score the request's features, map the score
    /// to a difficulty, and issue an authenticated challenge. Runs the
    /// request stage chain (Score → Bypass → Policy → Issue → Telemetry;
    /// see [`crate::pipeline`]) over a batch of one.
    pub fn handle_request(&self, client_ip: IpAddr, features: &FeatureVector) -> AdmissionDecision {
        let now_ms = self.clock.now_ms();
        let mut batch = [RequestCtx::new(client_ip, features)];
        if let Some(tracer) = self.tracer() {
            batch[0].trace_id = tracer.begin_trace();
        }
        pipeline::run_request_chain(self, now_ms, &mut batch);
        batch[0]
            .decision
            .take()
            .expect("pipeline invariant: the request chain settles every ctx")
    }

    /// The batched form of [`handle_request`](Self::handle_request):
    /// admits a group of requests through one pipeline pass per
    /// [`max_batch`](Self::max_batch)-sized chunk, amortizing the
    /// per-request fixed costs — one clock reading, one policy
    /// read-lock, one seed-DRBG lock, one audit shard-lock acquisition
    /// per shard, one batched sink delivery — across the group.
    /// Decisions are returned in request order and are the values the
    /// sequential path would produce *given the same inputs*: every
    /// request in a chunk observes the chunk's one clock reading and
    /// policy view, and the feature vectors are whatever the caller
    /// sampled — a caller serving features from live state (the online
    /// loop) that samples once per batch accepts that the batch is
    /// scored on pre-batch reputation (the batching invariants,
    /// documented in [`crate::pipeline`]).
    pub fn handle_request_batch(
        &self,
        requests: &[(IpAddr, &FeatureVector)],
    ) -> Vec<AdmissionDecision> {
        let mut decisions = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(self.max_batch) {
            let now_ms = self.clock.now_ms();
            let mut batch: Vec<RequestCtx<'_>> = chunk
                .iter()
                .map(|&(ip, features)| RequestCtx::new(ip, features))
                .collect();
            if let Some(tracer) = self.tracer() {
                for ctx in &mut batch {
                    ctx.trace_id = tracer.begin_trace();
                }
            }
            pipeline::run_request_chain(self, now_ms, &mut batch);
            decisions.extend(batch.into_iter().map(|ctx| {
                ctx.decision
                    .expect("pipeline invariant: the request chain settles every ctx")
            }));
        }
        decisions
    }

    /// Steps 5–6 of Figure 1: verify a returned solution. On success the
    /// caller releases the requested resource (step 7). Runs the
    /// solution stage chain (Verify → Charge → Telemetry) over a batch
    /// of one.
    ///
    /// # Errors
    ///
    /// Returns the verifier's [`VerifyError`]; the rejection is also
    /// recorded in metrics and the audit log.
    pub fn handle_solution(
        &self,
        solution: &Solution,
        claimed_ip: IpAddr,
    ) -> Result<VerifiedToken, VerifyError> {
        let now_ms = self.clock.now_ms();
        let mut batch = [SolutionCtx::new(solution, claimed_ip)];
        if let Some(tracer) = self.tracer() {
            batch[0].trace_id = tracer.begin_trace();
        }
        pipeline::run_solution_chain(self, now_ms, &mut batch);
        batch[0]
            .outcome
            .take()
            .expect("pipeline invariant: the verify stage settles every solution")
    }

    /// The batched form of [`handle_solution`](Self::handle_solution):
    /// verifies a group of submissions through one pipeline pass per
    /// [`max_batch`](Self::max_batch)-sized chunk — one clock reading
    /// and skew window for the whole chunk, ledger charges grouped by
    /// shard, audit appends grouped by shard, one batched sink delivery.
    /// Outcomes are returned in submission order; replay marking happens
    /// in that order too, so duplicate seeds inside a batch behave
    /// exactly as sequential submissions.
    pub fn handle_solution_batch(
        &self,
        submissions: &[(&Solution, IpAddr)],
    ) -> Vec<Result<VerifiedToken, VerifyError>> {
        let mut outcomes = Vec::with_capacity(submissions.len());
        for chunk in submissions.chunks(self.max_batch) {
            let now_ms = self.clock.now_ms();
            let mut batch: Vec<SolutionCtx<'_>> = chunk
                .iter()
                .map(|&(solution, ip)| SolutionCtx::new(solution, ip))
                .collect();
            if let Some(tracer) = self.tracer() {
                for ctx in &mut batch {
                    ctx.trace_id = tracer.begin_trace();
                }
            }
            pipeline::run_solution_chain(self, now_ms, &mut batch);
            outcomes.extend(batch.into_iter().map(|ctx| {
                ctx.outcome
                    .expect("pipeline invariant: the verify stage settles every solution")
            }));
        }
        outcomes
    }

    /// The ceiling on the group size one batch pipeline pass processes
    /// (see [`FrameworkBuilder::max_batch`]).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Publishes the current server load (`[0, 1]`) to adaptive policies.
    pub fn set_load(&self, load: f64) {
        let clamped = if load.is_nan() {
            0.0
        } else {
            load.clamp(0.0, 1.0)
        };
        self.load_millis
            // Release: publishes the gauge to concurrent admission reads
            .store((clamped * 1_000.0) as u64, Ordering::Release);
    }

    /// The last published load.
    pub fn load(&self) -> f64 {
        // Acquire: pairs with the Release in set_load()
        self.load_millis.load(Ordering::Acquire) as f64 / 1_000.0
    }

    /// Declares (or clears) an active attack for adaptive policies. The
    /// false→true flip also trips the attached tracer's flight recorder
    /// (if any): the ring contents at that moment are the forensic record
    /// of how the attack looked as it was recognized.
    pub fn set_under_attack(&self, attacked: bool) {
        // Release: publishes the flag to concurrent pipeline snapshots;
        // the swap also makes the flip edge-triggered for the recorder.
        let was = self.under_attack.swap(attacked, Ordering::AcqRel);
        if attacked && !was {
            if let Some(tracer) = self.tracer() {
                tracer.trip_flight_recorder("under_attack");
            }
        }
    }

    /// Replaces the policy at runtime (paper property 2: the inflicted
    /// work is tunable).
    pub fn swap_policy(&self, policy: Box<dyn Policy>) {
        // lint:allow(admission-lock) read-mostly global policy swap, not per-client state
        *self.policy.write() = policy;
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> String {
        // lint:allow(admission-lock) read-mostly global policy, not per-client state
        self.policy.read().name().to_string()
    }

    /// Name of the reputation model.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Name of the active backend router.
    pub fn router_name(&self) -> &str {
        self.router.name()
    }

    /// The pipeline's operational metrics.
    pub fn metrics(&self) -> &FrameworkMetrics {
        &self.metrics
    }

    /// A metrics snapshot with the saturation gauges freshly synced.
    /// [`handle_solution`](Self::handle_solution) already syncs the
    /// replay live-eviction gauge after every verification, so
    /// `metrics().snapshot()` is equally accurate; this method just
    /// guarantees freshness when no solution has arrived since.
    /// A snapshot also feeds the tracer's anomaly triggers: the derived
    /// rejection rate and worst stage p99 are handed to
    /// [`Tracer::check_triggers`], so whoever polls telemetry is also the
    /// heartbeat that can trip the flight recorder.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        self.metrics
            .replay_evicted_live
            .set(self.verifier.replay_guard().live_evictions() as i64);
        let snap = self.metrics.snapshot_at(self.clock.now_ms());
        if let Some(tracer) = self.tracer() {
            tracer.check_triggers(&TriggerStats {
                rejections_per_s: snap.rejections_per_s,
                worst_stage_p99_ns: snap
                    .stage_timings
                    .iter()
                    .map(|t| t.p99_ns)
                    .max()
                    .unwrap_or(0),
            });
        }
        snap
    }

    /// The admission audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The per-client cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The underlying verifier (for replay-guard diagnostics).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// The framework's time source (shared with issuer and verifier), so
    /// companion components — feature sources, decay workers — observe the
    /// same clock.
    pub fn clock(&self) -> Arc<dyn TimeSource> {
        Arc::clone(&self.clock)
    }

    /// The framework clock's current instant, without cloning the clock
    /// handle — for per-request call sites (e.g. the server's
    /// rate-limit rejection path) where a refcount bump per request
    /// would put a shared atomic on the flood hot path.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Attaches the behavioral tap after build. Returns `false` (leaving
    /// the existing sink in place) if one was already attached, either
    /// here or via [`FrameworkBuilder::behavior_sink`] — the tap is
    /// intentionally write-once so the hot path never takes a lock to
    /// read it.
    pub fn set_behavior_sink(&self, sink: Arc<dyn BehaviorSink>) -> bool {
        self.sink.set(sink).is_ok()
    }

    /// The attached behavioral tap, if any.
    pub fn behavior_sink(&self) -> Option<&Arc<dyn BehaviorSink>> {
        self.sink.get()
    }

    /// Attaches the request tracer after build. Same write-once
    /// discipline as the behavioral tap: returns `false` (keeping the
    /// existing tracer) if one was already attached, so the hot path
    /// reads it with a single atomic load and no lock.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) -> bool {
        self.tracer.set(tracer).is_ok()
    }

    /// The attached request tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get()
    }
}

impl fmt::Debug for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Framework")
            .field("model", &self.model.name())
            // lint:allow(admission-lock) read-mostly global policy, Debug only
            .field("policy", &self.policy.read().name())
            .field("load", &self.load())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditKind;
    use aipow_policy::{ErrorRangePolicy, LinearPolicy};
    use aipow_pow::solver::{self, SolverOptions};
    use aipow_reputation::model::FixedScoreModel;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    fn framework_with_score(score: f64) -> Framework {
        FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
            .policy(LinearPolicy::policy2())
            .build()
            .unwrap()
    }

    #[test]
    fn tracer_is_write_once_and_attaches_after_build() {
        use aipow_trace::{TraceConfig, Tracer};
        let fw = framework_with_score(3.0);
        assert!(fw.tracer().is_none());
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        assert!(fw.set_tracer(Arc::clone(&tracer)));
        assert!(!fw.set_tracer(Arc::clone(&tracer)), "second attach refused");
        fw.handle_request(ip(7), &FeatureVector::zeros());
        assert!(
            tracer.recorded() > 0,
            "a sampled request must emit pipeline spans"
        );
    }

    #[test]
    fn under_attack_flip_trips_flight_recorder_once() {
        use aipow_trace::{TraceConfig, Tracer};
        let fw = framework_with_score(3.0);
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        assert!(fw.set_tracer(Arc::clone(&tracer)));
        fw.handle_request(ip(8), &FeatureVector::zeros());
        fw.set_under_attack(false); // no-op: not a false→true edge
        assert!(!tracer.flight_tripped());
        fw.set_under_attack(true);
        let dump = tracer.flight_dump().expect("flip must freeze a dump");
        assert_eq!(dump.reason, "under_attack");
        assert!(dump.spans > 0, "dump should hold the pre-attack spans");
        fw.set_under_attack(true); // already attacked: edge-triggered, no re-trip
        assert!(tracer.flight_tripped());
    }

    #[test]
    fn snapshot_rejection_rate_feeds_triggers() {
        use aipow_trace::{TraceConfig, Tracer, TriggerConfig};
        let clock = ManualClock::at(5_000);
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .clock(Arc::new(clock.clone()) as Arc<dyn TimeSource>)
            .tracer(Arc::new(Tracer::new(TraceConfig {
                sample_every: 1,
                triggers: TriggerConfig {
                    max_rejections_per_s: 5.0,
                    max_stage_p99_ns: 0,
                },
                ..TraceConfig::default()
            })))
            .build()
            .unwrap();
        fw.metrics_snapshot(); // establish the rate window
        for _ in 0..20 {
            fw.metrics().rate_limited.inc();
        }
        clock.advance(1_000);
        let snap = fw.metrics_snapshot();
        assert!(
            snap.rejections_per_s >= 19.0,
            "rate was {}",
            snap.rejections_per_s
        );
        let tracer = fw.tracer().unwrap();
        assert!(tracer.flight_tripped(), "rate spike should trip recorder");
        assert_eq!(tracer.flight_dump().unwrap().reason, "rejection_rate");
    }

    #[test]
    fn full_pipeline_roundtrip() {
        let fw = framework_with_score(3.0);
        let issued = fw
            .handle_request(ip(1), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(issued.difficulty.bits(), 8); // 3 + 5
        let report = solver::solve(&issued.challenge, ip(1), &SolverOptions::default()).unwrap();
        let token = fw.handle_solution(&report.solution, ip(1)).unwrap();
        assert_eq!(token.difficulty.bits(), 8);

        let snap = fw.metrics().snapshot();
        assert_eq!(snap.challenges_issued, 1);
        assert_eq!(snap.solutions_accepted, 1);
        assert_eq!(snap.solutions_rejected, 0);
    }

    #[test]
    fn cost_ledger_charges_expected_work() {
        let fw = framework_with_score(0.0); // policy2 → 5 bits → 32 hashes
        let issued = fw
            .handle_request(ip(2), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let report = solver::solve(&issued.challenge, ip(2), &SolverOptions::default()).unwrap();
        fw.handle_solution(&report.solution, ip(2)).unwrap();
        assert_eq!(fw.ledger().total(ip(2)), 32.0);
    }

    #[test]
    fn worse_scores_pay_more() {
        // Paper property 1: cost increases with worsening score.
        let mut last_cost = 0.0;
        for score in [0.0, 5.0, 10.0] {
            let fw = framework_with_score(score);
            let issued = fw
                .handle_request(ip(3), &FeatureVector::zeros())
                .challenge()
                .unwrap();
            let report =
                solver::solve(&issued.challenge, ip(3), &SolverOptions::default()).unwrap();
            fw.handle_solution(&report.solution, ip(3)).unwrap();
            let cost = fw.ledger().total(ip(3));
            assert!(
                cost > last_cost,
                "score {score}: cost {cost} <= {last_cost}"
            );
            last_cost = cost;
        }
    }

    #[test]
    fn rejections_are_counted_and_audited() {
        let fw = framework_with_score(0.0);
        let issued = fw
            .handle_request(ip(4), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let report = solver::solve(&issued.challenge, ip(4), &SolverOptions::default()).unwrap();
        // Submit from the wrong IP.
        let err = fw.handle_solution(&report.solution, ip(5)).unwrap_err();
        assert_eq!(err, VerifyError::ClientMismatch);
        let snap = fw.metrics().snapshot();
        assert_eq!(snap.solutions_rejected, 1);
        assert_eq!(snap.rejected_by_reason["client_mismatch"], 1);
        let audit = fw.audit().snapshot();
        assert!(matches!(audit[0].kind, AuditKind::SolutionRejected { .. }));
    }

    #[test]
    fn replay_rejected_through_framework() {
        let fw = framework_with_score(0.0);
        let issued = fw
            .handle_request(ip(6), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let report = solver::solve(&issued.challenge, ip(6), &SolverOptions::default()).unwrap();
        fw.handle_solution(&report.solution, ip(6)).unwrap();
        assert_eq!(
            fw.handle_solution(&report.solution, ip(6)),
            Err(VerifyError::Replayed)
        );
    }

    #[test]
    fn bypass_admits_trusted_clients() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(1.0).unwrap()))
            .policy(LinearPolicy::policy1())
            .bypass_threshold(2.0)
            .build()
            .unwrap();
        let decision = fw.handle_request(ip(7), &FeatureVector::zeros());
        assert!(decision.is_bypass());
        assert_eq!(fw.metrics().snapshot().bypassed, 1);
    }

    #[test]
    fn bypass_threshold_excludes_higher_scores() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(2.0).unwrap()))
            .policy(LinearPolicy::policy1())
            .bypass_threshold(2.0)
            .build()
            .unwrap();
        let decision = fw.handle_request(ip(8), &FeatureVector::zeros());
        assert!(!decision.is_bypass());
    }

    #[test]
    fn policy_swap_takes_effect() {
        let fw = framework_with_score(0.0);
        assert_eq!(fw.policy_name(), "policy2");
        let d1 = fw
            .handle_request(ip(9), &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(d1.bits(), 5);
        fw.swap_policy(Box::new(LinearPolicy::policy1()));
        assert_eq!(fw.policy_name(), "policy1");
        let d2 = fw
            .handle_request(ip(9), &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(d2.bits(), 1);
    }

    #[test]
    fn adaptive_policy_reads_framework_load() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(aipow_policy::LoadAdaptivePolicy::new(
                LinearPolicy::policy1(),
                8,
                0,
            ))
            .build()
            .unwrap();
        let base = fw
            .handle_request(ip(10), &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(base.bits(), 1);
        fw.set_load(1.0);
        let loaded = fw
            .handle_request(ip(10), &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(loaded.bits(), 9);
        assert_eq!(fw.load(), 1.0);
    }

    #[test]
    fn error_range_policy_works_in_framework() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(5.0).unwrap()))
            .policy(ErrorRangePolicy::new(1.0, 3))
            .build()
            .unwrap();
        for _ in 0..50 {
            let issued = fw
                .handle_request(ip(11), &FeatureVector::zeros())
                .challenge()
                .unwrap();
            // d_i = 6, interval [5, 7].
            assert!((5..=7).contains(&issued.difficulty.bits()));
        }
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            FrameworkBuilder::new().build().unwrap_err(),
            BuildError::MissingModel
        );
        assert_eq!(
            FrameworkBuilder::new()
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .build()
                .unwrap_err(),
            BuildError::MissingPolicy
        );
        assert_eq!(
            FrameworkBuilder::new()
                .model(FixedScoreModel::new(ReputationScore::MIN))
                .policy(LinearPolicy::policy1())
                .build()
                .unwrap_err(),
            BuildError::MissingMasterKey
        );
    }

    #[test]
    fn manual_clock_drives_expiry() {
        let (builder, clock) = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(LinearPolicy::policy1())
            .ttl_ms(1_000)
            .manual_clock(50_000);
        let fw = builder.build().unwrap();
        let issued = fw
            .handle_request(ip(12), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let report = solver::solve(&issued.challenge, ip(12), &SolverOptions::default()).unwrap();
        clock.advance(2_000);
        assert!(matches!(
            fw.handle_solution(&report.solution, ip(12)),
            Err(VerifyError::Expired { .. })
        ));
    }

    #[test]
    fn shard_count_threads_through_builder_to_metrics() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(LinearPolicy::policy2())
            .shard_count(8)
            .build()
            .unwrap();
        let snap = fw.metrics_snapshot();
        assert_eq!(snap.replay_shards, 8);
        assert_eq!(snap.audit_shards, 8);
        assert_eq!(snap.ledger_shards, 8);
        assert_eq!(snap.replay_evicted_live, 0);
        assert_eq!(fw.verifier().replay_guard().shard_count(), 8);
        assert_eq!(fw.audit().shard_count(), 8);
        assert_eq!(fw.ledger().shard_count(), 8);
    }

    #[test]
    fn metrics_snapshot_surfaces_replay_live_evictions() {
        // A 1-seed replay guard: the second accepted solution evicts the
        // first (still-live) entry, which the snapshot must surface.
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(LinearPolicy::policy1())
            .replay_capacity(1)
            .build()
            .unwrap();
        for last in [1u8, 2] {
            let client = ip(last);
            let issued = fw
                .handle_request(client, &FeatureVector::zeros())
                .challenge()
                .unwrap();
            let report =
                solver::solve(&issued.challenge, client, &SolverOptions::default()).unwrap();
            fw.handle_solution(&report.solution, client).unwrap();
        }
        assert_eq!(fw.metrics_snapshot().replay_evicted_live, 1);
    }

    #[test]
    fn behavior_sink_sees_requests_and_solutions() {
        use std::sync::atomic::AtomicU64;

        #[derive(Default)]
        struct Recording {
            challenged: AtomicU64,
            bypassed: AtomicU64,
            accepted: AtomicU64,
            rejected: AtomicU64,
        }
        impl BehaviorSink for Recording {
            fn on_request(
                &self,
                _ip: IpAddr,
                _now_ms: u64,
                _score: ReputationScore,
                difficulty: Option<Difficulty>,
            ) {
                match difficulty {
                    Some(_) => self.challenged.fetch_add(1, Ordering::Relaxed),
                    None => self.bypassed.fetch_add(1, Ordering::Relaxed),
                };
            }
            fn on_solution(
                &self,
                _ip: IpAddr,
                _now_ms: u64,
                outcome: Result<Difficulty, &VerifyError>,
            ) {
                match outcome {
                    Ok(_) => self.accepted.fetch_add(1, Ordering::Relaxed),
                    Err(_) => self.rejected.fetch_add(1, Ordering::Relaxed),
                };
            }
        }

        let sink = Arc::new(Recording::default());
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy1())
            .bypass_threshold(2.0)
            .behavior_sink(Arc::clone(&sink) as Arc<dyn BehaviorSink>)
            .build()
            .unwrap();
        // A second attachment is refused: the tap is write-once.
        assert!(!fw.set_behavior_sink(Arc::clone(&sink) as Arc<dyn BehaviorSink>));
        assert!(fw.behavior_sink().is_some());

        let issued = fw
            .handle_request(ip(20), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        let report = solver::solve(&issued.challenge, ip(20), &SolverOptions::default()).unwrap();
        fw.handle_solution(&report.solution, ip(20)).unwrap();
        // Wrong-IP submission → rejection event.
        let _ = fw.handle_solution(&report.solution, ip(21));

        assert_eq!(sink.challenged.load(Ordering::Relaxed), 1);
        assert_eq!(sink.accepted.load(Ordering::Relaxed), 1);
        assert_eq!(sink.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(sink.bypassed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn behavior_sink_attaches_after_build() {
        use std::sync::atomic::AtomicU64;

        #[derive(Default)]
        struct CountReq(AtomicU64);
        impl BehaviorSink for CountReq {
            fn on_request(
                &self,
                _ip: IpAddr,
                _now_ms: u64,
                _score: ReputationScore,
                _difficulty: Option<Difficulty>,
            ) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn on_solution(
                &self,
                _ip: IpAddr,
                _now_ms: u64,
                _outcome: Result<Difficulty, &VerifyError>,
            ) {
            }
        }

        let fw = framework_with_score(1.0);
        // No sink yet: requests are simply not observed.
        let _ = fw.handle_request(ip(30), &FeatureVector::zeros());
        let sink = Arc::new(CountReq::default());
        assert!(fw.set_behavior_sink(Arc::clone(&sink) as Arc<dyn BehaviorSink>));
        let _ = fw.handle_request(ip(30), &FeatureVector::zeros());
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_request_path_matches_sequential_decisions() {
        // Two identically configured frameworks (shared manual clock
        // semantics: neither advances): the batch path must produce the
        // sequential path's decisions, metrics, and audit record order.
        let build = || {
            let (builder, clock) = FrameworkBuilder::new()
                .master_key([9u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
                .policy(LinearPolicy::policy2())
                .max_batch(4) // chunking exercised: 10 requests → 3 passes
                .manual_clock(77_000);
            (builder.build().unwrap(), clock)
        };
        let (seq, _) = build();
        let (batch, _) = build();

        let features = FeatureVector::zeros();
        let requests: Vec<(IpAddr, &FeatureVector)> =
            (0..10u8).map(|i| (ip(i), &features)).collect();
        let seq_decisions: Vec<AdmissionDecision> = requests
            .iter()
            .map(|&(client, f)| seq.handle_request(client, f))
            .collect();
        let batch_decisions = batch.handle_request_batch(&requests);

        assert_eq!(batch_decisions.len(), seq_decisions.len());
        for (a, b) in seq_decisions.iter().zip(&batch_decisions) {
            match (a, b) {
                (AdmissionDecision::Challenge(x), AdmissionDecision::Challenge(y)) => {
                    assert_eq!(x.difficulty, y.difficulty);
                    assert_eq!(x.score, y.score);
                    assert_eq!(x.challenge.client_ip(), y.challenge.client_ip());
                    assert_eq!(x.challenge.issued_at_ms(), y.challenge.issued_at_ms());
                }
                (AdmissionDecision::Admit { score: x }, AdmissionDecision::Admit { score: y }) => {
                    assert_eq!(x, y)
                }
                other => panic!("decision shape diverged: {other:?}"),
            }
        }
        let (s, b) = (seq.metrics_snapshot(), batch.metrics_snapshot());
        assert_eq!(s.challenges_issued, b.challenges_issued);
        assert_eq!(s.bypassed, b.bypassed);
        assert_eq!(s.median_issued_difficulty, b.median_issued_difficulty);
        let (sa, ba) = (seq.audit().snapshot(), batch.audit().snapshot());
        assert_eq!(sa, ba, "audit records must match in order");
    }

    #[test]
    fn batch_mixes_bypasses_and_challenges_in_order() {
        // Scores straddle the bypass threshold via two alternating
        // feature-driven scores — emulate with two frameworks? Simpler:
        // threshold sits above the fixed score for half the batch via
        // score model keyed on a feature lane.
        struct LaneModel;
        impl ReputationModel for LaneModel {
            fn score(&self, features: &FeatureVector) -> ReputationScore {
                ReputationScore::new(features.get(0)).unwrap()
            }
            fn name(&self) -> &'static str {
                "lane0"
            }
        }
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(LaneModel)
            .policy(LinearPolicy::policy1())
            .bypass_threshold(2.0)
            .build()
            .unwrap();
        let low = FeatureVector::zeros().with(0, 1.0); // bypassed
        let high = FeatureVector::zeros().with(0, 5.0); // challenged
        let requests: Vec<(IpAddr, &FeatureVector)> =
            vec![(ip(1), &low), (ip(2), &high), (ip(3), &low), (ip(4), &high)];
        let decisions = fw.handle_request_batch(&requests);
        assert!(decisions[0].is_bypass());
        assert!(!decisions[1].is_bypass());
        assert!(decisions[2].is_bypass());
        assert!(!decisions[3].is_bypass());
        let snap = fw.metrics_snapshot();
        assert_eq!(snap.bypassed, 2);
        assert_eq!(snap.challenges_issued, 2);
    }

    #[test]
    fn batch_solution_path_verifies_charges_and_audits() {
        let fw = framework_with_score(0.0); // policy2 → 5 bits → 32 hashes
        let mut solutions = Vec::new();
        for i in 0..3u8 {
            let issued = fw
                .handle_request(ip(i), &FeatureVector::zeros())
                .challenge()
                .unwrap();
            let report =
                solver::solve(&issued.challenge, ip(i), &SolverOptions::default()).unwrap();
            solutions.push(report.solution);
        }
        // Two valid, one wrong-IP, one intra-batch replay.
        let submissions: Vec<(&Solution, IpAddr)> = vec![
            (&solutions[0], ip(0)),
            (&solutions[1], ip(9)), // wrong ip
            (&solutions[2], ip(2)),
            (&solutions[0], ip(0)), // replay of the first
        ];
        let outcomes = fw.handle_solution_batch(&submissions);
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1], Err(VerifyError::ClientMismatch));
        assert!(outcomes[2].is_ok());
        assert_eq!(outcomes[3], Err(VerifyError::Replayed));
        assert_eq!(fw.ledger().total(ip(0)), 32.0);
        assert_eq!(fw.ledger().total(ip(2)), 32.0);
        assert_eq!(fw.ledger().total(ip(9)), 0.0);
        let snap = fw.metrics_snapshot();
        assert_eq!(snap.solutions_accepted, 2);
        assert_eq!(snap.solutions_rejected, 2);
        assert_eq!(snap.rejected_by_reason["client_mismatch"], 1);
        assert_eq!(snap.rejected_by_reason["replayed"], 1);
        // Audit order matches submission order (most recent first).
        let audit = fw.audit().snapshot();
        assert!(matches!(audit[0].kind, AuditKind::SolutionRejected { .. }));
        assert!(matches!(audit[1].kind, AuditKind::SolutionAccepted { .. }));
        // Empty batches are no-ops.
        assert!(fw.handle_solution_batch(&[]).is_empty());
        assert!(fw.handle_request_batch(&[]).is_empty());
    }

    #[test]
    fn batch_sink_delivery_matches_sequential_events() {
        use crate::tap::{RequestObservation, SolutionObservation};
        use parking_lot::Mutex;

        #[derive(Default)]
        struct Log {
            events: Mutex<Vec<String>>,
            batched_calls: AtomicU64,
        }
        impl BehaviorSink for Log {
            fn on_request(
                &self,
                ip: IpAddr,
                _now_ms: u64,
                _score: ReputationScore,
                difficulty: Option<Difficulty>,
            ) {
                self.events
                    .lock()
                    .push(format!("req {ip} {:?}", difficulty.map(|d| d.bits())));
            }
            fn on_solution(
                &self,
                ip: IpAddr,
                _now_ms: u64,
                outcome: Result<Difficulty, &VerifyError>,
            ) {
                self.events
                    .lock()
                    .push(format!("sol {ip} {}", outcome.is_ok()));
            }
            fn on_request_batch(&self, now_ms: u64, batch: &[RequestObservation]) {
                self.batched_calls.fetch_add(1, Ordering::Relaxed);
                for obs in batch {
                    self.on_request(obs.ip, now_ms, obs.score, obs.difficulty);
                }
            }
            fn on_solution_batch(&self, now_ms: u64, batch: &[SolutionObservation<'_>]) {
                self.batched_calls.fetch_add(1, Ordering::Relaxed);
                for obs in batch {
                    self.on_solution(obs.ip, now_ms, obs.outcome);
                }
            }
        }

        let sink = Arc::new(Log::default());
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(0.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .behavior_sink(Arc::clone(&sink) as Arc<dyn BehaviorSink>)
            .build()
            .unwrap();
        let features = FeatureVector::zeros();
        let requests: Vec<(IpAddr, &FeatureVector)> = vec![(ip(1), &features), (ip(2), &features)];
        let decisions = fw.handle_request_batch(&requests);
        let solved: Vec<Solution> = decisions
            .into_iter()
            .zip([ip(1), ip(2)])
            .map(|(d, client)| {
                let c = d.challenge().unwrap().challenge;
                solver::solve(&c, client, &SolverOptions::default())
                    .unwrap()
                    .solution
            })
            .collect();
        let submissions: Vec<(&Solution, IpAddr)> = solved.iter().zip([ip(1), ip(2)]).collect();
        let _ = fw.handle_solution_batch(&submissions);
        // One batched call per chain pass, events in request order.
        assert_eq!(sink.batched_calls.load(Ordering::Relaxed), 2);
        let events = sink.events.lock().clone();
        assert_eq!(
            events,
            vec![
                "req 198.51.100.1 Some(5)",
                "req 198.51.100.2 Some(5)",
                "sol 198.51.100.1 true",
                "sol 198.51.100.2 true",
            ]
        );
    }

    #[test]
    fn deprecated_lanes_alias_still_builds() {
        #[allow(deprecated)]
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(LinearPolicy::policy1())
            .verify_lanes(4)
            .build()
            .unwrap();
        assert_eq!(fw.verifier().verify_lanes(), 4);
        let canonical = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::MIN))
            .policy(LinearPolicy::policy1())
            .lanes(4)
            .build()
            .unwrap();
        assert_eq!(canonical.verifier().verify_lanes(), 4);
    }

    #[test]
    fn default_router_keeps_every_client_on_sha256() {
        let fw = framework_with_score(10.0);
        assert_eq!(fw.router_name(), "sha256");
        let issued = fw
            .handle_request(ip(40), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(issued.challenge.backend(), BackendId::SHA256);
    }

    #[test]
    fn threshold_routing_issues_memory_hard_to_suspicious_clients() {
        let build = |score: f64| {
            FrameworkBuilder::new()
                .master_key([9u8; 32])
                .model(FixedScoreModel::new(ReputationScore::new(score).unwrap()))
                .policy(LinearPolicy::policy1())
                .route_memory_hard_above(6.0)
                .memory_hard_arena_mib(1)
                .build()
                .unwrap()
        };
        let suspicious = build(8.0);
        assert_eq!(suspicious.router_name(), "memory-hard-above");
        let issued = suspicious
            .handle_request(ip(41), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(issued.challenge.backend(), BackendId::MEMORY_HARD);
        assert_eq!(issued.challenge.backend_param(), 1);
        // The routed challenge round-trips through solve and verify.
        let report = solver::solve(&issued.challenge, ip(41), &SolverOptions::default()).unwrap();
        suspicious
            .handle_solution(&report.solution, ip(41))
            .unwrap();

        let benign = build(3.0);
        let issued = benign
            .handle_request(ip(42), &FeatureVector::zeros())
            .challenge()
            .unwrap();
        assert_eq!(issued.challenge.backend(), BackendId::SHA256);
    }

    #[test]
    fn batch_requests_route_per_client_score() {
        struct LaneModel;
        impl ReputationModel for LaneModel {
            fn score(&self, features: &FeatureVector) -> ReputationScore {
                ReputationScore::new(features.get(0)).unwrap()
            }
            fn name(&self) -> &'static str {
                "lane0"
            }
        }
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(LaneModel)
            .policy(LinearPolicy::policy1())
            .route_memory_hard_above(6.0)
            .memory_hard_arena_mib(1)
            .build()
            .unwrap();
        let benign = FeatureVector::zeros().with(0, 2.0);
        let suspicious = FeatureVector::zeros().with(0, 9.0);
        let requests: Vec<(IpAddr, &FeatureVector)> = vec![
            (ip(1), &benign),
            (ip(2), &suspicious),
            (ip(3), &benign),
            (ip(4), &suspicious),
        ];
        let backends: Vec<BackendId> = fw
            .handle_request_batch(&requests)
            .into_iter()
            .map(|d| d.challenge().unwrap().challenge.backend())
            .collect();
        assert_eq!(
            backends,
            vec![
                BackendId::SHA256,
                BackendId::MEMORY_HARD,
                BackendId::SHA256,
                BackendId::MEMORY_HARD,
            ]
        );
    }

    #[test]
    fn random_master_keys_differ() {
        assert_ne!(random_master_key(), random_master_key());
    }

    #[test]
    fn framework_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Framework>();
    }

    #[test]
    fn debug_impls_nonempty() {
        let fw = framework_with_score(1.0);
        assert!(!format!("{fw:?}").is_empty());
        assert!(!format!("{:?}", FrameworkBuilder::new()).is_empty());
    }
}
