//! The AI-assisted PoW framework (the paper's primary contribution).
//!
//! This crate composes the five modular components of Figure 1 into one
//! admission pipeline:
//!
//! 1. an **AI model** ([`aipow_reputation::ReputationModel`]) scores the
//!    incoming request's IP attributes,
//! 2. a **policy** ([`aipow_policy::Policy`]) maps the score to a puzzle
//!    difficulty,
//! 3. the **puzzle generator** ([`aipow_pow::Issuer`]) mints an
//!    authenticated challenge,
//! 4. the client's **solver** works offline (it is the only component that
//!    does not live in this crate),
//! 5. the **verifier** ([`aipow_pow::Verifier`]) checks the returned
//!    solution, after which the server releases the resource.
//!
//! The paper's two framework properties are first-class here:
//! *every client pays a cost that grows with its reputation score* (tracked
//! by the [`cost::CostLedger`]) and *the inflicted work is adaptive and
//! tunable* (policies are swappable at runtime and may read live server
//! conditions).
//!
//! # Example
//!
//! ```
//! use aipow_core::{Framework, FrameworkBuilder};
//! use aipow_policy::LinearPolicy;
//! use aipow_reputation::model::FixedScoreModel;
//! use aipow_reputation::{FeatureVector, ReputationScore};
//! use aipow_pow::solver;
//! use std::net::{IpAddr, Ipv4Addr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let framework = FrameworkBuilder::new()
//!     .master_key([1u8; 32])
//!     .model(FixedScoreModel::new(ReputationScore::new(2.0)?))
//!     .policy(LinearPolicy::policy2())
//!     .build()?;
//!
//! let ip = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 7));
//! let issued = framework.handle_request(ip, &FeatureVector::zeros()).challenge()
//!     .expect("no bypass configured");
//! assert_eq!(issued.difficulty.bits(), 7); // score 2 → policy2 → 7 bits
//!
//! let report = solver::solve(&issued.challenge, ip, &Default::default())?;
//! let token = framework.handle_solution(&report.solution, ip)?;
//! assert_eq!(token.client_ip, ip);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod controller;
pub mod cost;
pub mod export;
pub mod features;
pub mod framework;
pub mod metrics;
pub mod pipeline;
/// Sharded concurrency primitives backing every per-client structure in
/// this crate (re-exported from `aipow-shard`, which sits below
/// `aipow-pow` so the replay guard can share the implementation).
pub mod sharded {
    pub use aipow_shard::{
        default_shard_count, floor_shards, round_shards, EvictionPolicy, ShardHandle, ShardLayout,
        Sharded, ShardedMap, DEFAULT_MAX_SCAN, MAX_AUTO_SHARDS, MAX_SHARDS,
    };
}
pub mod tap;
pub mod token_bucket;

/// The crate's synchronization primitives. Under the `loom-model`
/// feature (tests only, never production builds) they swap to the
/// vendored `loom` shims so the model checker can explore the
/// interleavings of the admission path's atomics, the policy
/// `RwLock`, and the write-once sink publication.
#[cfg(not(feature = "loom-model"))]
pub(crate) mod sync {
    pub(crate) use parking_lot::RwLock;
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    pub(crate) use std::sync::OnceLock;
}
#[cfg(feature = "loom-model")]
pub(crate) mod sync {
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    pub(crate) use loom::sync::{OnceLock, RwLock};
}

pub use audit::{AuditEvent, AuditKind, AuditLog};
pub use config::{FrameworkConfig, OnlineSettings};
pub use controller::{LoadController, LoadSignal};
pub use cost::{CostLedger, LowestCost};
pub use export::{snapshot_json, snapshot_prometheus};
pub use features::{FeatureSource, StaticFeatureSource, SyntheticFeatureSource};
pub use framework::{
    AdmissionDecision, BuildError, Framework, FrameworkBuilder, IssuedChallenge, DEFAULT_MAX_BATCH,
};
pub use metrics::{FrameworkMetrics, MetricsSnapshot, StageTiming};
pub use pipeline::{AdmissionStage, RequestCtx, SolutionCtx};
pub use sharded::{Sharded, ShardedMap};
pub use tap::{BehaviorSink, RequestObservation, SolutionObservation};
pub use token_bucket::{LeastRecentlyRefilled, RateLimiter, TokenBucket};
