//! The admission pipeline as an explicit, composable stage chain.
//!
//! The paper's Figure-1 loop (score → policy → issue → verify → charge)
//! used to live as two monolithic functions on [`Framework`], each paying
//! its fixed costs — a clock reading, a policy read-lock, an audit
//! append, a metrics update, a sink notification — once **per request**.
//! This module decomposes the loop into named [`AdmissionStage`]s over a
//! typed per-request context, with two consequences:
//!
//! - **Observability**: every stage records its wall-clock latency into
//!   [`crate::FrameworkMetrics`]'s per-stage counters (reported as
//!   [`crate::MetricsSnapshot::stage_timings`]), so an operator can see
//!   *where* admission time goes, not just that it went.
//! - **Amortization**: a stage runs over a *batch* of contexts (the
//!   sequential entry points pass a batch of one), so the batch entry
//!   points ([`Framework::handle_request_batch`],
//!   [`Framework::handle_solution_batch`]) pay each fixed cost once per
//!   group: one clock reading, one policy read-lock, one DRBG lock for
//!   all seeds, one audit-shard lock acquisition per shard, one grouped
//!   ledger charge, one batched sink notification.
//!
//! The chains are:
//!
//! ```text
//! request:  Score → Bypass → Policy → Issue → Telemetry
//! solution: Verify → Charge → Telemetry
//! ```
//!
//! A stage that settles a context (the bypass admit) simply fills its
//! `decision`; later stages skip settled contexts. The terminal telemetry
//! stage replaces the old triple audit+metrics+sink fan-out and observes
//! *every* context, settled or not.
//!
//! # Batching invariants
//!
//! Batched admission is equivalent to sequential admission with two
//! documented relaxations, both consequences of reading shared inputs
//! once per batch instead of once per request:
//!
//! 1. every context in a batch observes the same clock instant (the
//!    batch's one reading) — on a fixed clock the two paths are
//!    bit-equivalent, which is what `tests/batch_equivalence.rs` proves;
//! 2. every context in a batch observes the same policy, load, and
//!    attack flag (a concurrent [`Framework::swap_policy`] lands between
//!    batches, never inside one);
//! 3. callers that derive features from live state sample them once per
//!    batch — the TCP server looks features up once per pipelined run,
//!    so with the online loop attached a burst is scored on the
//!    client's pre-burst reputation and the burst's own tap events land
//!    *after* its decisions. A flooder can thereby defer its own
//!    difficulty escalation by at most one batch (≤ `max_batch`
//!    requests per connection wakeup) — bounded, and bounded precisely
//!    by the knob that controls batching.
//!
//! Under those inputs, decision *values*, issued tokens, ledger
//! balances, audit records, and their order are identical between the
//! two paths.

use crate::framework::{AdmissionDecision, Framework, IssuedChallenge};
use crate::sync::Ordering;
use crate::tap::{RequestObservation, SolutionObservation};
use crate::AuditKind;
use aipow_policy::PolicyContext;
use aipow_pow::{Difficulty, Solution, VerifiedToken, VerifyError};
use aipow_reputation::{FeatureVector, ReputationScore};
use aipow_trace::SpanEvent;
use std::net::IpAddr;
use std::time::Instant;

/// Slots into [`crate::metrics::STAGE_NAMES`] for the request chain.
const SLOT_SCORE: usize = 0;
const SLOT_BYPASS: usize = 1;
const SLOT_POLICY: usize = 2;
const SLOT_ISSUE: usize = 3;
const SLOT_REQUEST_TELEMETRY: usize = 4;
/// Slots for the solution chain.
const SLOT_VERIFY: usize = 5;
const SLOT_CHARGE: usize = 6;
const SLOT_SOLUTION_TELEMETRY: usize = 7;

/// One in-flight resource request, as it moves down the request chain.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    /// The requesting client.
    pub client_ip: IpAddr,
    /// The feature vector the model scores.
    pub features: &'a FeatureVector,
    /// The model's score (filled by the score stage).
    pub score: ReputationScore,
    /// The policy's difficulty decision (filled by the policy stage for
    /// contexts the bypass stage did not settle).
    pub difficulty: Option<Difficulty>,
    /// The final decision; a context is *settled* once this is filled.
    pub decision: Option<AdmissionDecision>,
    /// Request-scoped trace ID; 0 (the default) means unsampled, and the
    /// chain emits no spans for this context. The framework's entry
    /// points assign IDs from the attached tracer's sampler.
    pub trace_id: u64,
}

impl<'a> RequestCtx<'a> {
    /// A fresh, unsampled context at the head of the chain.
    pub fn new(client_ip: IpAddr, features: &'a FeatureVector) -> Self {
        RequestCtx {
            client_ip,
            features,
            score: ReputationScore::MIN,
            difficulty: None,
            decision: None,
            trace_id: 0,
        }
    }
}

/// One in-flight solution submission, as it moves down the solution
/// chain.
#[derive(Debug)]
pub struct SolutionCtx<'a> {
    /// The submitted solution.
    pub solution: &'a Solution,
    /// The address it was submitted from.
    pub claimed_ip: IpAddr,
    /// The verifier's outcome (filled by the verify stage).
    pub outcome: Option<Result<VerifiedToken, VerifyError>>,
    /// Request-scoped trace ID; 0 (the default) means unsampled.
    pub trace_id: u64,
}

impl<'a> SolutionCtx<'a> {
    /// A fresh, unsampled context at the head of the chain.
    pub fn new(solution: &'a Solution, claimed_ip: IpAddr) -> Self {
        SolutionCtx {
            solution,
            claimed_ip,
            outcome: None,
            trace_id: 0,
        }
    }
}

/// How a context presents itself to the tracer after each stage: who it
/// belongs to, what difficulty is attached so far, and the verdict as
/// known at this point in the chain.
pub(crate) trait Traceable {
    fn trace_id(&self) -> u64;
    fn trace_client_ip(&self) -> IpAddr;
    fn trace_difficulty_bits(&self) -> i16;
    fn trace_verdict(&self) -> &'static str;
}

impl Traceable for RequestCtx<'_> {
    fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn trace_client_ip(&self) -> IpAddr {
        self.client_ip
    }

    fn trace_difficulty_bits(&self) -> i16 {
        match (&self.decision, self.difficulty) {
            (Some(AdmissionDecision::Challenge(issued)), _) => issued.difficulty.bits() as i16,
            (_, Some(difficulty)) => difficulty.bits() as i16,
            _ => -1,
        }
    }

    fn trace_verdict(&self) -> &'static str {
        match &self.decision {
            None => "pending",
            Some(AdmissionDecision::Admit { .. }) => "bypass",
            Some(AdmissionDecision::Challenge(_)) => "challenge",
        }
    }
}

impl Traceable for SolutionCtx<'_> {
    fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn trace_client_ip(&self) -> IpAddr {
        self.claimed_ip
    }

    fn trace_difficulty_bits(&self) -> i16 {
        self.solution.challenge.difficulty().bits() as i16
    }

    fn trace_verdict(&self) -> &'static str {
        match &self.outcome {
            None => "pending",
            Some(Ok(_)) => "accept",
            Some(Err(err)) => reason_label(err),
        }
    }
}

/// One stage of an admission chain. Stages are stateless (per-request
/// state lives in the context); `run` processes the whole batch so
/// implementations can hoist per-batch work out of the item loop.
pub trait AdmissionStage<Ctx>: Send + Sync {
    /// The stage's name, as it appears in
    /// [`crate::metrics::STAGE_NAMES`].
    fn name(&self) -> &'static str;

    /// The stage's slot in the per-stage latency counters.
    fn slot(&self) -> usize;

    /// Processes the batch and returns how many contexts it actually
    /// worked on — settled contexts a stage skips (bypassed requests at
    /// the issue stage, rejected solutions at the charge stage) are
    /// excluded, so the recorded `total_ns / items` stays an honest
    /// amortized per-item cost. `now_ms` is the batch's one clock
    /// reading.
    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [Ctx]) -> usize;
}

/// Runs a chain over a batch, recording each stage's wall-clock latency.
/// One `Instant` reading per stage boundary (N+1 readings for N stages),
/// so the sequential path pays a fixed, small observability overhead and
/// the batch path amortizes it along with everything else.
///
/// When a tracer is attached, each stage additionally emits one span per
/// *sampled* context (`trace_id != 0`). The per-stage cost with nothing
/// sampled — the steady state at 1-in-N sampling — is one predictable
/// branch per context; span recording itself is a `try_lock` ring append
/// that drops on contention rather than blocking the admission path.
fn run_chain<Ctx: Traceable>(
    fw: &Framework,
    now_ms: u64,
    stages: &[&dyn AdmissionStage<Ctx>],
    batch: &mut [Ctx],
) {
    let tracer = fw.tracer();
    let mut boundary = Instant::now();
    for stage in stages {
        let items = stage.run(fw, now_ms, batch);
        let next = Instant::now();
        let nanos = (next - boundary).as_nanos() as u64;
        fw.metrics().record_stage(stage.slot(), items as u64, nanos);
        if let Some(tracer) = tracer {
            for ctx in batch.iter() {
                let trace_id = ctx.trace_id();
                if trace_id != 0 {
                    tracer.record(SpanEvent {
                        trace_id,
                        client_ip: ctx.trace_client_ip(),
                        stage: stage.name(),
                        slot: stage.slot() as u8,
                        batch_len: batch.len() as u32,
                        start_ns: tracer.ns_since_epoch(boundary),
                        duration_ns: nanos,
                        difficulty_bits: ctx.trace_difficulty_bits(),
                        verdict: ctx.trace_verdict(),
                    });
                }
            }
        }
        boundary = next;
    }
}

/// Runs the request chain (Score → Bypass → Policy → Issue → Telemetry)
/// over `batch`. Every context leaves settled.
pub(crate) fn run_request_chain(fw: &Framework, now_ms: u64, batch: &mut [RequestCtx<'_>]) {
    run_chain(
        fw,
        now_ms,
        &[
            &ScoreStage,
            &BypassStage,
            &PolicyStage,
            &IssueStage,
            &RequestTelemetryStage,
        ],
        batch,
    );
}

/// Runs the solution chain (Verify → Charge → Telemetry) over `batch`.
/// Every context leaves with an outcome.
pub(crate) fn run_solution_chain(fw: &Framework, now_ms: u64, batch: &mut [SolutionCtx<'_>]) {
    run_chain(
        fw,
        now_ms,
        &[&VerifyStage, &ChargeStage, &SolutionTelemetryStage],
        batch,
    );
}

/// Figure-1 step 2: the AI model scores each request's features.
struct ScoreStage;

impl AdmissionStage<RequestCtx<'_>> for ScoreStage {
    fn name(&self) -> &'static str {
        "score"
    }

    fn slot(&self) -> usize {
        SLOT_SCORE
    }

    fn run(&self, fw: &Framework, _now_ms: u64, batch: &mut [RequestCtx<'_>]) -> usize {
        for ctx in batch.iter_mut() {
            ctx.score = fw.model.score(ctx.features);
        }
        batch.len()
    }
}

/// The bypass extension: scores strictly under the configured threshold
/// are admitted without a puzzle (settling the context).
struct BypassStage;

impl AdmissionStage<RequestCtx<'_>> for BypassStage {
    fn name(&self) -> &'static str {
        "bypass"
    }

    fn slot(&self) -> usize {
        SLOT_BYPASS
    }

    fn run(&self, fw: &Framework, _now_ms: u64, batch: &mut [RequestCtx<'_>]) -> usize {
        let Some(threshold) = fw.bypass_threshold else {
            return 0;
        };
        for ctx in batch.iter_mut() {
            if ctx.score.value() < threshold {
                ctx.decision = Some(AdmissionDecision::Admit { score: ctx.score });
            }
        }
        batch.len()
    }
}

/// Figure-1 step 3: the policy maps scores to difficulties. The policy
/// read-lock is taken once and the policy context (load, attack flag,
/// clock) built once **per batch**.
struct PolicyStage;

impl AdmissionStage<RequestCtx<'_>> for PolicyStage {
    fn name(&self) -> &'static str {
        "policy"
    }

    fn slot(&self) -> usize {
        SLOT_POLICY
    }

    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [RequestCtx<'_>]) -> usize {
        if batch.iter().all(|ctx| ctx.decision.is_some()) {
            return 0;
        }
        let policy_ctx = PolicyContext {
            server_load: fw.load(),
            // Acquire: pairs with the Release in set_under_attack()
            under_attack: fw.under_attack.load(Ordering::Acquire),
            now_ms,
        };
        // lint:allow(admission-lock) one read of the read-mostly global policy per batch
        let policy = fw.policy.read();
        let mut evaluated = 0;
        for ctx in batch.iter_mut().filter(|ctx| ctx.decision.is_none()) {
            ctx.difficulty = Some(policy.difficulty_for(ctx.score, &policy_ctx));
            evaluated += 1;
        }
        evaluated
    }
}

/// Figure-1 step 4: the issuer mints authenticated challenges. The
/// framework's [`BackendRouter`](aipow_policy::BackendRouter) picks each
/// client's puzzle backend from its score (suspicious clients can be
/// routed to the memory-hard puzzle), then a batch takes the seed DRBG's
/// lock once for all seeds
/// ([`aipow_pow::Issuer::issue_batch_backend_at`]).
struct IssueStage;

impl AdmissionStage<RequestCtx<'_>> for IssueStage {
    fn name(&self) -> &'static str {
        "issue"
    }

    fn slot(&self) -> usize {
        SLOT_ISSUE
    }

    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [RequestCtx<'_>]) -> usize {
        let pending = batch.iter().filter(|ctx| ctx.decision.is_none()).count();
        if pending == 0 {
            return 0;
        }
        // One router context per batch, mirroring the policy stage's
        // one-lock-one-context discipline.
        let route_ctx = PolicyContext {
            server_load: fw.load(),
            // Acquire: pairs with the Release in set_under_attack()
            under_attack: fw.under_attack.load(Ordering::Acquire),
            now_ms,
        };
        match pending {
            // lint:allow(no-unwrap) staging invariant: the pending == 0
            // case returned before the policy lock was taken
            0 => unreachable!("handled above"),
            1 => {
                // The sequential path and nearly-all-bypassed batches:
                // no seed-buffer allocation, just the single mint.
                let ctx = batch
                    .iter_mut()
                    .find(|ctx| ctx.decision.is_none())
                    .expect("batch invariant: one pending context remains");
                let difficulty = ctx
                    .difficulty
                    .expect("stage-order invariant: the policy stage ran first");
                let backend = fw.router.route(ctx.score, &route_ctx);
                let challenge =
                    fw.issuer
                        .issue_backend_at(ctx.client_ip, difficulty, backend, now_ms);
                ctx.decision = Some(AdmissionDecision::Challenge(IssuedChallenge {
                    challenge,
                    score: ctx.score,
                    difficulty,
                }));
            }
            _ => {
                let requests: Vec<(IpAddr, Difficulty, aipow_pow::BackendId)> = batch
                    .iter()
                    .filter(|ctx| ctx.decision.is_none())
                    .map(|ctx| {
                        (
                            ctx.client_ip,
                            ctx.difficulty
                                .expect("stage-order invariant: the policy stage ran first"),
                            fw.router.route(ctx.score, &route_ctx),
                        )
                    })
                    .collect();
                let challenges = fw.issuer.issue_batch_backend_at(&requests, now_ms);
                let mut challenges = challenges.into_iter();
                for ctx in batch.iter_mut().filter(|ctx| ctx.decision.is_none()) {
                    let challenge = challenges
                        .next()
                        .expect("issuer invariant: one challenge per pending request");
                    let difficulty = ctx
                        .difficulty
                        .expect("stage-order invariant: the policy stage ran first");
                    ctx.decision = Some(AdmissionDecision::Challenge(IssuedChallenge {
                        challenge,
                        score: ctx.score,
                        difficulty,
                    }));
                }
            }
        }
        pending
    }
}

/// The one observation point of the request chain, replacing the old
/// per-request audit+metrics+sink fan-out. A batch aggregates the
/// metrics adds, appends all audit events with one shard-lock
/// acquisition per shard, and delivers one
/// [`BehaviorSink::on_request_batch`][crate::BehaviorSink::on_request_batch]
/// call.
struct RequestTelemetryStage;

impl AdmissionStage<RequestCtx<'_>> for RequestTelemetryStage {
    fn name(&self) -> &'static str {
        "request_telemetry"
    }

    fn slot(&self) -> usize {
        SLOT_REQUEST_TELEMETRY
    }

    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [RequestCtx<'_>]) -> usize {
        if let [ctx] = batch {
            // Sequential fast path: no observation buffers.
            match ctx
                .decision
                .as_ref()
                .expect("pipeline invariant: the request chain settles every ctx")
            {
                AdmissionDecision::Admit { score } => {
                    fw.metrics().bypassed.inc();
                    fw.audit()
                        .record(now_ms, ctx.client_ip, AuditKind::Bypassed { score: *score });
                    if let Some(sink) = fw.behavior_sink() {
                        sink.on_request(ctx.client_ip, now_ms, *score, None);
                    }
                }
                AdmissionDecision::Challenge(issued) => {
                    fw.metrics()
                        .record_issued_difficulty(issued.difficulty.bits());
                    fw.audit().record(
                        now_ms,
                        ctx.client_ip,
                        AuditKind::ChallengeIssued {
                            score: issued.score,
                            difficulty: issued.difficulty,
                        },
                    );
                    if let Some(sink) = fw.behavior_sink() {
                        sink.on_request(
                            ctx.client_ip,
                            now_ms,
                            issued.score,
                            Some(issued.difficulty),
                        );
                    }
                }
            }
            return 1;
        }

        let mut bypassed = 0u64;
        let mut audit_events = Vec::with_capacity(batch.len());
        let mut observations = Vec::with_capacity(batch.len());
        let mut issued_bits: Vec<u8> = Vec::with_capacity(batch.len());
        for ctx in batch.iter() {
            match ctx
                .decision
                .as_ref()
                .expect("pipeline invariant: the request chain settles every ctx")
            {
                AdmissionDecision::Admit { score } => {
                    bypassed += 1;
                    audit_events.push(crate::AuditEvent {
                        at_ms: now_ms,
                        client_ip: ctx.client_ip,
                        kind: AuditKind::Bypassed { score: *score },
                    });
                    observations.push(RequestObservation {
                        ip: ctx.client_ip,
                        score: *score,
                        difficulty: None,
                    });
                }
                AdmissionDecision::Challenge(issued) => {
                    issued_bits.push(issued.difficulty.bits());
                    audit_events.push(crate::AuditEvent {
                        at_ms: now_ms,
                        client_ip: ctx.client_ip,
                        kind: AuditKind::ChallengeIssued {
                            score: issued.score,
                            difficulty: issued.difficulty,
                        },
                    });
                    observations.push(RequestObservation {
                        ip: ctx.client_ip,
                        score: issued.score,
                        difficulty: Some(issued.difficulty),
                    });
                }
            }
        }
        if bypassed > 0 {
            fw.metrics().bypassed.add(bypassed);
        }
        fw.metrics().record_issued_difficulties(issued_bits);
        fw.audit().record_batch(audit_events);
        if let Some(sink) = fw.behavior_sink() {
            sink.on_request_batch(now_ms, &observations);
        }
        batch.len()
    }
}

/// Figure-1 step 6: the verifier checks each solution. The per-batch
/// fixed costs (clock reading, skew window) are hoisted through
/// [`aipow_pow::Verifier::prepare_at`]; the HMAC key schedule is hoisted
/// all the way to verifier construction; and the hash-bound checks run
/// through the multi-buffer SHA-256 kernel at the verifier's configured
/// lane width ([`aipow_pow::verifier::PreparedVerify::verify_many`]).
struct VerifyStage;

impl AdmissionStage<SolutionCtx<'_>> for VerifyStage {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn slot(&self) -> usize {
        SLOT_VERIFY
    }

    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [SolutionCtx<'_>]) -> usize {
        let prepared = fw.verifier().prepare_at(now_ms);
        let submissions: Vec<_> = batch
            .iter()
            .map(|ctx| (ctx.solution, ctx.claimed_ip))
            .collect();
        for (ctx, outcome) in batch.iter_mut().zip(prepared.verify_many(&submissions)) {
            ctx.outcome = Some(outcome);
        }
        // Keep the saturation alarm current once per batch; the guard's
        // counter is a plain atomic, so this is two relaxed atomic ops,
        // not a shard sweep.
        fw.metrics()
            .replay_evicted_live
            .set(fw.verifier().replay_guard().live_evictions() as i64);
        batch.len()
    }
}

/// Figure-1 step 7's accounting: accepted solutions charge the cost
/// ledger. A batch groups charges by shard
/// ([`crate::CostLedger::charge_batch`]), one lock acquisition per shard.
struct ChargeStage;

impl AdmissionStage<SolutionCtx<'_>> for ChargeStage {
    fn name(&self) -> &'static str {
        "charge"
    }

    fn slot(&self) -> usize {
        SLOT_CHARGE
    }

    fn run(&self, fw: &Framework, _now_ms: u64, batch: &mut [SolutionCtx<'_>]) -> usize {
        let mut accepted = batch.iter().filter_map(|ctx| {
            ctx.outcome
                .as_ref()
                .expect("pipeline invariant: the verify stage settles every solution")
                .as_ref()
                .ok()
                .map(|token| (ctx.claimed_ip, token.difficulty.expected_attempts()))
        });
        let Some(first) = accepted.next() else {
            return 0;
        };
        match accepted.next() {
            // Sequential fast path / single acceptance: no charge buffer.
            None => {
                fw.ledger().charge(first.0, first.1);
                1
            }
            Some(second) => {
                let mut charges = Vec::with_capacity(batch.len());
                charges.push(first);
                charges.push(second);
                charges.extend(accepted);
                let charged = charges.len();
                fw.ledger().charge_batch(charges);
                charged
            }
        }
    }
}

/// The one observation point of the solution chain: metrics, audit, and
/// sink delivery for every outcome, batched like the request telemetry.
struct SolutionTelemetryStage;

impl AdmissionStage<SolutionCtx<'_>> for SolutionTelemetryStage {
    fn name(&self) -> &'static str {
        "solution_telemetry"
    }

    fn slot(&self) -> usize {
        SLOT_SOLUTION_TELEMETRY
    }

    fn run(&self, fw: &Framework, now_ms: u64, batch: &mut [SolutionCtx<'_>]) -> usize {
        if let [ctx] = batch {
            match ctx
                .outcome
                .as_ref()
                .expect("pipeline invariant: the verify stage settles every solution")
            {
                Ok(token) => {
                    fw.metrics().solutions_accepted.inc();
                    fw.audit().record(
                        now_ms,
                        ctx.claimed_ip,
                        AuditKind::SolutionAccepted {
                            difficulty: token.difficulty,
                        },
                    );
                    if let Some(sink) = fw.behavior_sink() {
                        sink.on_solution(ctx.claimed_ip, now_ms, Ok(token.difficulty));
                    }
                }
                Err(err) => {
                    fw.metrics().record_rejection(reason_label(err));
                    fw.audit().record(
                        now_ms,
                        ctx.claimed_ip,
                        AuditKind::SolutionRejected {
                            reason: err.to_string(),
                        },
                    );
                    if let Some(sink) = fw.behavior_sink() {
                        sink.on_solution(ctx.claimed_ip, now_ms, Err(err));
                    }
                }
            }
            return 1;
        }

        let mut accepted = 0u64;
        let mut audit_events = Vec::with_capacity(batch.len());
        let mut observations = Vec::with_capacity(batch.len());
        for ctx in batch.iter() {
            match ctx
                .outcome
                .as_ref()
                .expect("pipeline invariant: the verify stage settles every solution")
            {
                Ok(token) => {
                    accepted += 1;
                    audit_events.push(crate::AuditEvent {
                        at_ms: now_ms,
                        client_ip: ctx.claimed_ip,
                        kind: AuditKind::SolutionAccepted {
                            difficulty: token.difficulty,
                        },
                    });
                    observations.push(SolutionObservation {
                        ip: ctx.claimed_ip,
                        outcome: Ok(token.difficulty),
                    });
                }
                Err(err) => {
                    fw.metrics().record_rejection(reason_label(err));
                    audit_events.push(crate::AuditEvent {
                        at_ms: now_ms,
                        client_ip: ctx.claimed_ip,
                        kind: AuditKind::SolutionRejected {
                            reason: err.to_string(),
                        },
                    });
                    observations.push(SolutionObservation {
                        ip: ctx.claimed_ip,
                        outcome: Err(err),
                    });
                }
            }
        }
        if accepted > 0 {
            fw.metrics().solutions_accepted.add(accepted);
        }
        fw.audit().record_batch(audit_events);
        if let Some(sink) = fw.behavior_sink() {
            sink.on_solution_batch(now_ms, &observations);
        }
        batch.len()
    }
}

/// Stable labels for rejection metrics.
pub(crate) fn reason_label(err: &VerifyError) -> &'static str {
    match err {
        VerifyError::UnsupportedVersion { .. } => "unsupported_version",
        VerifyError::DifficultyTooHigh { .. } => "difficulty_too_high",
        VerifyError::BadMac => "bad_mac",
        VerifyError::ClientMismatch => "client_mismatch",
        VerifyError::NotYetValid => "not_yet_valid",
        VerifyError::Expired { .. } => "expired",
        VerifyError::Replayed => "replayed",
        VerifyError::InsufficientWork { .. } => "insufficient_work",
        VerifyError::MalformedNonce => "malformed_nonce",
        VerifyError::UnknownBackend { .. } => "unknown_backend",
        VerifyError::BackendMismatch { .. } => "backend_mismatch",
        VerifyError::InvalidBackendParam { .. } => "invalid_backend_param",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkBuilder;
    use crate::metrics::STAGE_NAMES;
    use aipow_policy::LinearPolicy;
    use aipow_reputation::model::FixedScoreModel;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    #[test]
    fn stage_slots_agree_with_metric_names() {
        let request: [(&dyn AdmissionStage<RequestCtx<'_>>, usize); 5] = [
            (&ScoreStage, SLOT_SCORE),
            (&BypassStage, SLOT_BYPASS),
            (&PolicyStage, SLOT_POLICY),
            (&IssueStage, SLOT_ISSUE),
            (&RequestTelemetryStage, SLOT_REQUEST_TELEMETRY),
        ];
        for (stage, slot) in request {
            assert_eq!(stage.slot(), slot);
            assert_eq!(STAGE_NAMES[slot], stage.name());
        }
        let solution: [(&dyn AdmissionStage<SolutionCtx<'_>>, usize); 3] = [
            (&VerifyStage, SLOT_VERIFY),
            (&ChargeStage, SLOT_CHARGE),
            (&SolutionTelemetryStage, SLOT_SOLUTION_TELEMETRY),
        ];
        for (stage, slot) in solution {
            assert_eq!(stage.slot(), slot);
            assert_eq!(STAGE_NAMES[slot], stage.name());
        }
    }

    #[test]
    fn every_request_stage_records_latency() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .build()
            .unwrap();
        let _ = fw.handle_request(ip(1), &FeatureVector::zeros());
        let timings = fw.metrics_snapshot().stage_timings;
        let names: Vec<&str> = timings.iter().map(|t| t.stage.as_str()).collect();
        assert_eq!(
            names,
            ["score", "bypass", "policy", "issue", "request_telemetry"]
        );
        for t in &timings {
            assert_eq!(t.batches, 1, "{}", t.stage);
            // No bypass threshold is configured, so the bypass stage
            // examined nothing; every other stage processed the request.
            let expected_items = if t.stage == "bypass" { 0 } else { 1 };
            assert_eq!(t.items, expected_items, "{}", t.stage);
        }
    }

    #[test]
    fn stage_items_exclude_contexts_the_stage_skipped() {
        use aipow_reputation::ReputationModel;

        struct LaneModel;
        impl ReputationModel for LaneModel {
            fn score(&self, features: &FeatureVector) -> ReputationScore {
                ReputationScore::new(features.get(0)).unwrap()
            }
            fn name(&self) -> &'static str {
                "lane0"
            }
        }
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(LaneModel)
            .policy(LinearPolicy::policy1())
            .bypass_threshold(2.0)
            .build()
            .unwrap();
        let low = FeatureVector::zeros().with(0, 1.0); // bypassed
        let high = FeatureVector::zeros().with(0, 5.0); // challenged
        let requests: Vec<(IpAddr, &FeatureVector)> =
            vec![(ip(1), &low), (ip(2), &low), (ip(3), &low), (ip(4), &high)];
        let _ = fw.handle_request_batch(&requests);
        let timings = fw.metrics_snapshot().stage_timings;
        let items = |name: &str| timings.iter().find(|t| t.stage == name).unwrap().items;
        // Score and bypass examine all four; policy and issue only the
        // one context the bypass did not settle; telemetry observes all.
        assert_eq!(items("score"), 4);
        assert_eq!(items("bypass"), 4);
        assert_eq!(items("policy"), 1);
        assert_eq!(items("issue"), 1);
        assert_eq!(items("request_telemetry"), 4);
    }

    #[test]
    fn sampled_requests_emit_one_span_per_stage_in_order() {
        use aipow_trace::{TraceConfig, Tracer};
        use std::sync::Arc;

        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .tracer(Arc::clone(&tracer))
            .build()
            .unwrap();
        let _ = fw.handle_request(ip(1), &FeatureVector::zeros());
        let spans = tracer.spans();
        assert_eq!(spans.len(), 5, "one span per request stage");
        let slots: Vec<u8> = spans.iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        let ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
        assert!(ids.iter().all(|&id| id == ids[0] && id != 0));
        assert!(spans.iter().all(|s| s.client_ip == ip(1)));
        // Early stages saw no verdict; the chain's tail settled it.
        assert_eq!(spans[0].verdict, "pending");
        assert_eq!(spans[4].verdict, "challenge");
        assert!(spans[4].difficulty_bits >= 0);
    }

    #[test]
    fn untraced_framework_emits_nothing_and_sampling_skips() {
        use aipow_trace::{TraceConfig, Tracer};
        use std::sync::Arc;

        // No tracer attached: nothing to emit, trace IDs stay 0.
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .build()
            .unwrap();
        let _ = fw.handle_request(ip(1), &FeatureVector::zeros());

        // Tracer attached but sampling 1-in-1000: a single request is
        // sampled (the sampler's first tick), the following ones are not.
        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1_000,
            ..TraceConfig::default()
        }));
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .tracer(Arc::clone(&tracer))
            .build()
            .unwrap();
        for i in 0..10 {
            let _ = fw.handle_request(ip(i), &FeatureVector::zeros());
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 5, "only the first request was sampled");
        assert!(spans.iter().all(|s| s.client_ip == ip(0)));
    }

    #[test]
    fn solution_spans_carry_the_rejection_verdict() {
        use aipow_pow::NonceWidth;
        use aipow_trace::{TraceConfig, Tracer};
        use std::sync::Arc;

        let tracer = Arc::new(Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }));
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .tracer(Arc::clone(&tracer))
            .build()
            .unwrap();
        let decision = fw.handle_request(ip(1), &FeatureVector::zeros());
        let AdmissionDecision::Challenge(issued) = decision else {
            panic!("expected a challenge");
        };
        let bogus = Solution {
            backend: issued.challenge.backend(),
            challenge: issued.challenge,
            nonce: u64::MAX, // almost surely not a qualifying nonce
            width: NonceWidth::U64,
        };
        let outcome = fw.handle_solution(&bogus, ip(1));
        assert!(outcome.is_err());
        let spans = tracer.spans();
        let solution_spans: Vec<_> = spans.iter().filter(|s| s.slot >= 5).collect();
        assert_eq!(solution_spans.len(), 3, "verify, charge, telemetry");
        let tail = solution_spans.last().unwrap();
        assert_ne!(tail.verdict, "pending");
        assert_ne!(tail.verdict, "accept");
        assert!(tail.difficulty_bits >= 0, "challenge difficulty attached");
    }

    #[test]
    fn batched_stages_record_group_sizes() {
        let fw = FrameworkBuilder::new()
            .master_key([9u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(3.0).unwrap()))
            .policy(LinearPolicy::policy2())
            .build()
            .unwrap();
        let features = FeatureVector::zeros();
        let requests: Vec<(IpAddr, &FeatureVector)> = (0..8).map(|i| (ip(i), &features)).collect();
        let decisions = fw.handle_request_batch(&requests);
        assert_eq!(decisions.len(), 8);
        let timings = fw.metrics_snapshot().stage_timings;
        let issue = timings.iter().find(|t| t.stage == "issue").unwrap();
        assert_eq!(issue.batches, 1);
        assert_eq!(issue.items, 8);
    }
}
