//! Closed-loop load control for adaptive policies.
//!
//! The paper's second property — “the amount of work inflicted by a puzzle
//! is adaptive and can be tuned” — needs a feedback path in a deployment:
//! something has to observe demand and publish it to the policy layer. The
//! [`LoadController`] does exactly that: it counts request arrivals,
//! maintains an exponentially-weighted arrival rate, normalizes it by the
//! server's capacity into a load in `[0, 1]`, and drives the framework's
//! attack flag with hysteresis so a flapping rate does not flap puzzle
//! difficulties.

use crate::framework::Framework;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What the controller publishes each tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSignal {
    /// Smoothed load: EWMA arrival rate / capacity, clamped to `[0, 1]`.
    pub load: f64,
    /// Whether the attack flag is currently raised.
    pub under_attack: bool,
    /// The smoothed arrival rate (requests/second) behind the load value.
    pub arrival_rate_rps: f64,
}

#[derive(Debug)]
struct State {
    window_start_ms: u64,
    window_count: u64,
    ewma_rps: f64,
    under_attack: bool,
}

/// An arrival-rate → load/attack feedback controller.
///
/// Call [`record_arrival`](LoadController::record_arrival) on every
/// incoming request and [`apply`](LoadController::apply) on a periodic
/// tick (once per second is typical).
///
/// ```
/// use aipow_core::controller::LoadController;
/// let controller = LoadController::new(100.0); // capacity: 100 rps
/// for i in 0..50 {
///     controller.record_arrival(i * 10); // 50 arrivals in one second
/// }
/// let signal = controller.tick(1_000);
/// assert!(signal.load > 0.2 && signal.load <= 0.5 + 1e-9);
/// assert!(!signal.under_attack);
/// ```
#[derive(Debug)]
pub struct LoadController {
    capacity_rps: f64,
    attack_on: f64,
    attack_off: f64,
    alpha: f64,
    state: Mutex<State>,
}

impl LoadController {
    /// Creates a controller for a server sustaining `capacity_rps`, with
    /// default thresholds (attack on at load ≥ 0.9, off below 0.6) and
    /// smoothing `α = 0.5` per window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_rps` is not finite and positive.
    pub fn new(capacity_rps: f64) -> Self {
        assert!(
            capacity_rps.is_finite() && capacity_rps > 0.0,
            "capacity must be positive"
        );
        LoadController {
            capacity_rps,
            attack_on: 0.9,
            attack_off: 0.6,
            alpha: 0.5,
            state: Mutex::new(State {
                window_start_ms: 0,
                window_count: 0,
                ewma_rps: 0.0,
                under_attack: false,
            }),
        }
    }

    /// Sets the hysteresis thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ off < on`.
    pub fn with_thresholds(mut self, attack_on: f64, attack_off: f64) -> Self {
        assert!(
            attack_off >= 0.0 && attack_off < attack_on,
            "thresholds must satisfy 0 <= off < on"
        );
        self.attack_on = attack_on;
        self.attack_off = attack_off;
        self
    }

    /// Sets the EWMA smoothing factor in `(0, 1]` (1 = no smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Counts one arrival at `now_ms`.
    pub fn record_arrival(&self, now_ms: u64) {
        let mut state = self.state.lock();
        if state.window_count == 0 && state.window_start_ms == 0 {
            state.window_start_ms = now_ms;
        }
        state.window_count += 1;
    }

    /// Closes the current window at `now_ms`, updates the smoothed rate,
    /// and returns the signal. Windows shorter than 100 ms are folded into
    /// the next tick to avoid rate spikes from early ticks.
    pub fn tick(&self, now_ms: u64) -> LoadSignal {
        let mut state = self.state.lock();
        let elapsed_ms = now_ms.saturating_sub(state.window_start_ms);
        if elapsed_ms >= 100 {
            let rate = state.window_count as f64 * 1_000.0 / elapsed_ms as f64;
            state.ewma_rps = if state.ewma_rps == 0.0 {
                rate
            } else {
                self.alpha * rate + (1.0 - self.alpha) * state.ewma_rps
            };
            state.window_start_ms = now_ms;
            state.window_count = 0;
        }

        let load = (state.ewma_rps / self.capacity_rps).clamp(0.0, 1.0);
        if state.under_attack {
            if load < self.attack_off {
                state.under_attack = false;
            }
        } else if load >= self.attack_on {
            state.under_attack = true;
        }

        LoadSignal {
            load,
            under_attack: state.under_attack,
            arrival_rate_rps: state.ewma_rps,
        }
    }

    /// Ticks and publishes the signal to a framework (load + attack flag).
    pub fn apply(&self, framework: &Framework, now_ms: u64) -> LoadSignal {
        let signal = self.tick(now_ms);
        framework.set_load(signal.load);
        framework.set_under_attack(signal.under_attack);
        signal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkBuilder;
    use aipow_policy::{LinearPolicy, LoadAdaptivePolicy};
    use aipow_reputation::model::FixedScoreModel;
    use aipow_reputation::{FeatureVector, ReputationScore};
    use std::net::{IpAddr, Ipv4Addr};

    fn flood(controller: &LoadController, start_ms: u64, count: u64) {
        for i in 0..count {
            controller.record_arrival(start_ms + i);
        }
    }

    #[test]
    fn idle_is_zero_load() {
        let c = LoadController::new(100.0);
        let s = c.tick(1_000);
        assert_eq!(s.load, 0.0);
        assert!(!s.under_attack);
    }

    #[test]
    fn rate_estimation_tracks_arrivals() {
        let c = LoadController::new(100.0).with_alpha(1.0);
        flood(&c, 0, 50); // 50 arrivals over the first second
        let s = c.tick(1_000);
        assert!((s.arrival_rate_rps - 50.0).abs() < 1.0, "{s:?}");
        assert!((s.load - 0.5).abs() < 0.02);
    }

    #[test]
    fn attack_declared_with_hysteresis() {
        let c = LoadController::new(100.0).with_alpha(1.0);
        // Overload: 200 rps.
        flood(&c, 0, 200);
        let s = c.tick(1_000);
        assert!(s.under_attack, "{s:?}");

        // Drop to 70 rps: still above the off threshold (60) → attack holds.
        flood(&c, 1_000, 70);
        let s = c.tick(2_000);
        assert!(s.under_attack, "{s:?}");

        // Drop to 10 rps: released.
        flood(&c, 2_000, 10);
        let s = c.tick(3_000);
        assert!(!s.under_attack, "{s:?}");
    }

    #[test]
    fn smoothing_damps_spikes() {
        // The first window bootstraps the EWMA directly (fast convergence
        // from cold start); smoothing applies from the second window on.
        let c = LoadController::new(1_000.0).with_alpha(0.25);
        flood(&c, 0, 100); // baseline: 100 rps
        c.tick(1_000);
        flood(&c, 1_000, 1_000); // spike: 1000 rps
        let spiked = c.tick(2_000);
        // EWMA = 0.25·1000 + 0.75·100 = 325 rps → load 0.325, not 1.0.
        assert!((spiked.load - 0.325).abs() < 0.02, "{spiked:?}");
    }

    #[test]
    fn short_windows_are_deferred() {
        let c = LoadController::new(100.0);
        c.record_arrival(0);
        let s = c.tick(10); // 10 ms window: folded into the next tick
        assert_eq!(s.arrival_rate_rps, 0.0);
        let s = c.tick(1_000);
        assert!(s.arrival_rate_rps > 0.0);
    }

    #[test]
    fn load_clamped_at_one() {
        let c = LoadController::new(10.0).with_alpha(1.0);
        flood(&c, 0, 10_000);
        let s = c.tick(1_000);
        assert_eq!(s.load, 1.0);
    }

    #[test]
    fn apply_drives_adaptive_policy_end_to_end() {
        let framework = FrameworkBuilder::new()
            .master_key([6u8; 32])
            .model(FixedScoreModel::new(ReputationScore::new(0.0).unwrap()))
            .policy(LoadAdaptivePolicy::new(LinearPolicy::policy1(), 4, 3))
            .build()
            .unwrap();
        let controller = LoadController::new(100.0).with_alpha(1.0);
        let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 9));

        // Idle: base difficulty.
        controller.apply(&framework, 1_000);
        let d_idle = framework
            .handle_request(ip, &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(d_idle.bits(), 1);

        // Overload → attack: difficulty escalates without code changes.
        flood(&controller, 1_000, 500);
        let signal = controller.apply(&framework, 2_000);
        assert!(signal.under_attack);
        let d_attack = framework
            .handle_request(ip, &FeatureVector::zeros())
            .challenge()
            .unwrap()
            .difficulty;
        assert_eq!(d_attack.bits(), 1 + 4 + 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        LoadController::new(0.0);
    }

    #[test]
    #[should_panic(expected = "off < on")]
    fn inverted_thresholds_panic() {
        LoadController::new(10.0).with_thresholds(0.5, 0.9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        LoadController::new(10.0).with_alpha(0.0);
    }
}
