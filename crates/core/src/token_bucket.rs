//! Token-bucket rate limiting.
//!
//! PoW throttles *work*; the token bucket throttles *message volume*. The
//! TCP runtime applies a per-IP bucket in front of the framework so a
//! client cannot spam challenge requests it never intends to solve (each
//! issued challenge costs the server an HMAC plus a replay-cache slot).

use aipow_shard::ShardedMap;
use std::net::IpAddr;

/// A single token bucket over a millisecond clock.
///
/// ```
/// use aipow_core::TokenBucket;
/// let mut bucket = TokenBucket::new(2.0, 1.0); // burst 2, refill 1/s
/// assert!(bucket.try_acquire(0));
/// assert!(bucket.try_acquire(0));
/// assert!(!bucket.try_acquire(0));     // burst exhausted
/// assert!(bucket.try_acquire(1_000));  // one second refills one token
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_ms: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// Creates a full bucket holding up to `capacity` tokens, refilling at
    /// `refill_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `refill_per_sec` is not finite and positive.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        assert!(
            refill_per_sec.is_finite() && refill_per_sec > 0.0,
            "refill rate must be positive"
        );
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_ms: refill_per_sec / 1_000.0,
            last_ms: 0,
        }
    }

    /// Attempts to take one token at time `now_ms`; returns whether it was
    /// granted. Time may move backwards (clock adjustment): refill is then
    /// skipped rather than negative.
    pub fn try_acquire(&mut self, now_ms: u64) -> bool {
        if now_ms > self.last_ms {
            let elapsed = (now_ms - self.last_ms) as f64;
            self.tokens = (self.tokens + elapsed * self.refill_per_ms).min(self.capacity);
        }
        self.last_ms = self.last_ms.max(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostic).
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// Timestamp of the last acquisition attempt (the refill clock).
    /// Drives least-recently-refilled eviction in [`RateLimiter`].
    pub fn last_refill_ms(&self) -> u64 {
        self.last_ms
    }
}

/// Per-IP token buckets with bounded population.
///
/// The bucket table is sharded by IP hash, so concurrent admissions from
/// different clients take different locks; a single client's bucket is
/// always mutated under its shard lock, so token accounting is exact.
///
/// When the table is full, the least-recently-refilled bucket (the
/// stalest `last_refill_ms`) is evicted rather than the new client being
/// rejected or silently untracked; a returning evicted client simply
/// starts with a fresh, full bucket. Under concurrent insertion the
/// population may transiently exceed `max_clients` by at most the number
/// of racing threads before the next eviction restores the bound.
#[derive(Debug)]
pub struct RateLimiter {
    buckets: ShardedMap<IpAddr, TokenBucket>,
    capacity_per_client: f64,
    refill_per_sec: f64,
    max_clients: usize,
}

impl RateLimiter {
    /// Creates a limiter giving each client a bucket of
    /// `capacity_per_client` tokens refilled at `refill_per_sec`, tracking
    /// at most `max_clients` clients, with the machine-default shard
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(capacity_per_client: f64, refill_per_sec: f64, max_clients: usize) -> Self {
        Self::with_shards(
            capacity_per_client,
            refill_per_sec,
            max_clients,
            aipow_shard::default_shard_count(),
        )
    }

    /// Creates a limiter with an explicit shard count (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn with_shards(
        capacity_per_client: f64,
        refill_per_sec: f64,
        max_clients: usize,
        shard_count: usize,
    ) -> Self {
        assert!(max_clients > 0, "max clients must be positive");
        // Bucket constructor validates the rates.
        let _probe = TokenBucket::new(capacity_per_client, refill_per_sec);
        RateLimiter {
            buckets: ShardedMap::new(shard_count),
            capacity_per_client,
            refill_per_sec,
            max_clients,
        }
    }

    /// Number of shards the bucket table is split over.
    pub fn shard_count(&self) -> usize {
        self.buckets.shard_count()
    }

    /// Maximum number of tracked clients before eviction kicks in.
    pub fn max_clients(&self) -> usize {
        self.max_clients
    }

    /// Whether `ip` may proceed at `now_ms`. A full table evicts the
    /// least-recently-refilled bucket (never `ip`'s own — see
    /// [`ShardedMap::update_or_insert_evicting`]) to make room.
    pub fn allow(&self, ip: IpAddr, now_ms: u64) -> bool {
        self.buckets.update_or_insert_evicting(
            ip,
            self.max_clients,
            |b| b.last_refill_ms(),
            || TokenBucket::new(self.capacity_per_client, self.refill_per_sec),
            |b| b.try_acquire(now_ms),
        )
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(172, 16, 0, last))
    }

    #[test]
    fn burst_then_refill() {
        let mut b = TokenBucket::new(3.0, 2.0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0));
        // 2 tokens/s → one token after 500 ms.
        assert!(b.try_acquire(500));
        assert!(!b.try_acquire(500));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2.0, 10.0);
        assert!(b.try_acquire(0));
        // A long sleep must not overfill the bucket.
        let _ = b.try_acquire(1_000_000);
        assert!(b.available() <= 2.0);
    }

    #[test]
    fn clock_regression_is_tolerated() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_acquire(10_000));
        assert!(!b.try_acquire(5_000)); // going backwards grants nothing
        assert!(b.try_acquire(11_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refill_panics() {
        TokenBucket::new(1.0, 0.0);
    }

    #[test]
    fn limiter_isolates_clients() {
        let limiter = RateLimiter::new(1.0, 0.001, 100);
        assert!(limiter.allow(ip(1), 0));
        assert!(!limiter.allow(ip(1), 0));
        assert!(limiter.allow(ip(2), 0)); // other clients unaffected
    }

    #[test]
    fn limiter_evicts_stalest_at_capacity() {
        let limiter = RateLimiter::new(5.0, 1.0, 2);
        assert!(limiter.allow(ip(1), 0));
        assert!(limiter.allow(ip(2), 100));
        assert!(limiter.allow(ip(3), 200)); // evicts ip(1), the stalest
        assert_eq!(limiter.len(), 2);
        // ip(1) returns with a fresh bucket (full burst again).
        assert!(limiter.allow(ip(1), 300));
    }

    #[test]
    fn limiter_shard_count_is_configurable() {
        let limiter = RateLimiter::with_shards(1.0, 1.0, 100, 6);
        assert_eq!(limiter.shard_count(), 8);
        assert_eq!(limiter.max_clients(), 100);
        assert!(RateLimiter::new(1.0, 1.0, 100).shard_count() >= 1);
    }

    #[test]
    fn limiter_eviction_works_across_shards() {
        // Clients land on different shards; eviction must still find the
        // globally least-recently-refilled bucket.
        let limiter = RateLimiter::with_shards(5.0, 1.0, 16, 8);
        for i in 0..16 {
            assert!(limiter.allow(ip(i), i as u64 * 10));
        }
        assert_eq!(limiter.len(), 16);
        // ip(0) (refilled at t=0) is the stalest; a 17th client evicts it.
        assert!(limiter.allow(ip(200), 1_000));
        assert_eq!(limiter.len(), 16);
        // ip(0) comes back with a fresh full bucket.
        for _ in 0..5 {
            assert!(limiter.allow(ip(0), 2_000));
        }
    }

    #[test]
    fn limiter_concurrent_access() {
        use std::sync::Arc;
        let limiter = Arc::new(RateLimiter::new(1_000.0, 1.0, 100));
        let granted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let limiter = Arc::clone(&limiter);
                let granted = Arc::clone(&granted);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if limiter.allow(ip(1), 0) {
                            granted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Exactly the burst capacity is granted across all threads.
        assert_eq!(granted.load(std::sync::atomic::Ordering::Relaxed), 1_000);
    }
}
