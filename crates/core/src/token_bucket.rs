//! Token-bucket rate limiting.
//!
//! PoW throttles *work*; the token bucket throttles *message volume*. The
//! TCP runtime applies a per-IP bucket in front of the framework so a
//! client cannot spam challenge requests it never intends to solve (each
//! issued challenge costs the server an HMAC plus a replay-cache slot).

use crate::sync::{AtomicU64, Ordering};
use aipow_shard::{EvictionPolicy, ShardLayout, ShardedMap, DEFAULT_MAX_SCAN};
use std::net::IpAddr;

/// A single token bucket over a millisecond clock.
///
/// ```
/// use aipow_core::TokenBucket;
/// let mut bucket = TokenBucket::new(2.0, 1.0); // burst 2, refill 1/s
/// assert!(bucket.try_acquire(0));
/// assert!(bucket.try_acquire(0));
/// assert!(!bucket.try_acquire(0));     // burst exhausted
/// assert!(bucket.try_acquire(1_000));  // one second refills one token
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_ms: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// Creates a full bucket holding up to `capacity` tokens, refilling at
    /// `refill_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `refill_per_sec` is not finite and positive.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        assert!(
            refill_per_sec.is_finite() && refill_per_sec > 0.0,
            "refill rate must be positive"
        );
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_ms: refill_per_sec / 1_000.0,
            last_ms: 0,
        }
    }

    /// Attempts to take one token at time `now_ms`; returns whether it was
    /// granted. Time may move backwards (clock adjustment): refill is then
    /// skipped rather than negative.
    pub fn try_acquire(&mut self, now_ms: u64) -> bool {
        if now_ms > self.last_ms {
            let elapsed = (now_ms - self.last_ms) as f64;
            self.tokens = (self.tokens + elapsed * self.refill_per_ms).min(self.capacity);
        }
        self.last_ms = self.last_ms.max(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostic).
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// Timestamp of the last acquisition attempt (the refill clock).
    /// Drives least-recently-refilled eviction in [`RateLimiter`].
    pub fn last_refill_ms(&self) -> u64 {
        self.last_ms
    }
}

/// The limiter's eviction policy: the stalest refill clock goes first.
///
/// A bucket whose `last_refill_ms` is old belongs to a client that has
/// not attempted an admission recently — the cheapest history to lose.
/// Shared (via [`EvictionPolicy`]) with the ledger's lowest-cost and the
/// behavior recorder's least-recently-seen policies.
#[derive(Debug, Clone, Copy)]
pub struct LeastRecentlyRefilled;

impl EvictionPolicy<TokenBucket> for LeastRecentlyRefilled {
    type Score = u64;

    fn score(&self, bucket: &TokenBucket) -> u64 {
        bucket.last_refill_ms()
    }
}

/// Per-IP token buckets with bounded population.
///
/// The bucket table is sharded by IP hash, so concurrent admissions from
/// different clients take different locks; a single client's bucket is
/// always mutated under its shard lock, so token accounting is exact.
///
/// The population bound is enforced **per shard**
/// ([`ShardLayout::bounded`] keeps each shard at
/// `max_clients / shard_count` buckets, raising the shard count so no
/// shard holds more than the configured scan bound): an insert into a
/// full shard evicts that shard's least-recently-refilled bucket
/// ([`LeastRecentlyRefilled`]) under the same single lock acquisition as
/// the insert and the token debit. A returning evicted client simply
/// starts with a fresh, full bucket. Because scan, eviction, insert, and
/// the refill-timestamp update are one critical section, the worst-case
/// admission cost is a bounded shard scan — independent of `max_clients`
/// — and an address-cycling flood can no longer drive the O(capacity)
/// all-shard victim scan the retired global protocol performed. The
/// population can never exceed `max_clients`, even transiently.
#[derive(Debug)]
pub struct RateLimiter {
    buckets: ShardedMap<IpAddr, TokenBucket>,
    capacity_per_client: f64,
    refill_per_sec: f64,
    max_clients: usize,
    per_shard_clients: usize,
    evicted: AtomicU64,
}

impl RateLimiter {
    /// Creates a limiter giving each client a bucket of
    /// `capacity_per_client` tokens refilled at `refill_per_sec`, tracking
    /// at most `max_clients` clients, with the machine-default shard
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(capacity_per_client: f64, refill_per_sec: f64, max_clients: usize) -> Self {
        Self::with_layout(
            capacity_per_client,
            refill_per_sec,
            max_clients,
            None,
            DEFAULT_MAX_SCAN,
        )
    }

    /// Creates a limiter with an explicit shard count. The count is
    /// adjusted on both sides by [`ShardLayout::bounded`]: raised so no
    /// eviction scan exceeds the default scan bound, capped at
    /// `max_clients`, and floored to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn with_shards(
        capacity_per_client: f64,
        refill_per_sec: f64,
        max_clients: usize,
        shard_count: usize,
    ) -> Self {
        Self::with_layout(
            capacity_per_client,
            refill_per_sec,
            max_clients,
            Some(shard_count),
            DEFAULT_MAX_SCAN,
        )
    }

    /// Creates a limiter with full control over the eviction layout:
    /// requested shard count (`None` = machine default) and the maximum
    /// entries one eviction victim scan may visit.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients`, `max_scan`, or either rate is
    /// non-positive.
    pub fn with_layout(
        capacity_per_client: f64,
        refill_per_sec: f64,
        max_clients: usize,
        shard_count: Option<usize>,
        max_scan: usize,
    ) -> Self {
        assert!(max_clients > 0, "max clients must be positive");
        assert!(max_scan > 0, "eviction scan bound must be positive");
        // Bucket constructor validates the rates.
        let _probe = TokenBucket::new(capacity_per_client, refill_per_sec);
        let layout = ShardLayout::bounded(max_clients, shard_count, max_scan);
        RateLimiter {
            buckets: ShardedMap::new(layout.shard_count),
            capacity_per_client,
            refill_per_sec,
            // The enforced bound, not the requested one (see
            // `max_clients()` for how the two can differ).
            max_clients: layout.population_bound(),
            per_shard_clients: layout.per_shard_capacity,
            evicted: AtomicU64::new(0),
        }
    }

    /// Number of shards the bucket table is split over.
    pub fn shard_count(&self) -> usize {
        self.buckets.shard_count()
    }

    /// The population bound the table actually enforces
    /// (`per_shard_clients × shard_count`). At most the `max_clients`
    /// the limiter was constructed with; per-shard flooring can make it
    /// slightly lower, and pathological requests beyond
    /// `MAX_SHARDS × max_scan` are clamped to that product.
    pub fn max_clients(&self) -> usize {
        self.max_clients
    }

    /// The per-shard bucket bound — also the worst-case entries one
    /// admission's eviction scan visits.
    pub fn per_shard_clients(&self) -> usize {
        self.per_shard_clients
    }

    /// Buckets evicted by the capacity bound since construction.
    pub fn evictions(&self) -> u64 {
        // relaxed: monitoring read of a stats counter; freshness not
        // required
        self.evicted.load(Ordering::Relaxed)
    }

    /// Entries examined by eviction victim scans since construction
    /// (diagnostic; grows by at most
    /// [`per_shard_clients`](Self::per_shard_clients) per admission).
    pub fn eviction_scan_steps(&self) -> u64 {
        self.buckets.eviction_scan_steps()
    }

    /// Whole-table victim folds since construction. Always zero: the
    /// limiter only uses the bounded per-shard eviction path. Exposed so
    /// tests and the flood scenario can assert the retired global scan
    /// stays retired.
    pub fn global_eviction_folds(&self) -> u64 {
        self.buckets.global_eviction_folds()
    }

    /// Whether `ip` may proceed at `now_ms`. A full shard evicts its
    /// least-recently-refilled bucket — never `ip`'s own, and never by
    /// scanning other shards (see
    /// [`ShardedMap::update_or_insert_evicting_in_shard`]) — to make
    /// room. The token debit and the refill-timestamp (eviction score)
    /// update happen under the same shard lock as the upsert, so a
    /// racing admission on the same shard can neither evict this bucket
    /// mid-charge nor observe its stale score.
    pub fn allow(&self, ip: IpAddr, now_ms: u64) -> bool {
        let (granted, evicted) = self.buckets.update_or_insert_evicting_in_shard(
            ip,
            self.per_shard_clients,
            LeastRecentlyRefilled,
            || TokenBucket::new(self.capacity_per_client, self.refill_per_sec),
            |b| b.try_acquire(now_ms),
        );
        if evicted {
            // relaxed: monotonic stats counter; incremented under the
            // shard lock
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        granted
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(172, 16, 0, last))
    }

    #[test]
    fn burst_then_refill() {
        let mut b = TokenBucket::new(3.0, 2.0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0));
        // 2 tokens/s → one token after 500 ms.
        assert!(b.try_acquire(500));
        assert!(!b.try_acquire(500));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2.0, 10.0);
        assert!(b.try_acquire(0));
        // A long sleep must not overfill the bucket.
        let _ = b.try_acquire(1_000_000);
        assert!(b.available() <= 2.0);
    }

    #[test]
    fn clock_regression_is_tolerated() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_acquire(10_000));
        assert!(!b.try_acquire(5_000)); // going backwards grants nothing
        assert!(b.try_acquire(11_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refill_panics() {
        TokenBucket::new(1.0, 0.0);
    }

    #[test]
    fn limiter_isolates_clients() {
        let limiter = RateLimiter::new(1.0, 0.001, 100);
        assert!(limiter.allow(ip(1), 0));
        assert!(!limiter.allow(ip(1), 0));
        assert!(limiter.allow(ip(2), 0)); // other clients unaffected
    }

    #[test]
    fn limiter_evicts_stalest_at_capacity() {
        // One shard makes placement deterministic: the shard-local
        // minimum is the global minimum.
        let limiter = RateLimiter::with_layout(5.0, 1.0, 2, Some(1), DEFAULT_MAX_SCAN);
        assert_eq!(limiter.shard_count(), 1);
        assert!(limiter.allow(ip(1), 0));
        assert!(limiter.allow(ip(2), 100));
        assert!(limiter.allow(ip(3), 200)); // evicts ip(1), the stalest
        assert_eq!(limiter.len(), 2);
        assert_eq!(limiter.evictions(), 1);
        // ip(1) returns with a fresh bucket (full burst again).
        assert!(limiter.allow(ip(1), 300));
    }

    #[test]
    fn limiter_victim_is_the_shard_local_minimum() {
        // Single shard, three buckets with distinct refill stamps: the
        // victim must be the minimum, not merely any resident.
        let limiter = RateLimiter::with_layout(5.0, 1.0, 3, Some(1), DEFAULT_MAX_SCAN);
        assert!(limiter.allow(ip(1), 500));
        assert!(limiter.allow(ip(2), 100)); // the minimum
        assert!(limiter.allow(ip(3), 900));
        assert!(limiter.allow(ip(4), 1_000));
        assert_eq!(limiter.len(), 3);
        // ip(2) was evicted; the others retain their debited buckets.
        for spent in [ip(1), ip(3)] {
            for _ in 0..4 {
                assert!(limiter.allow(spent, 1_000));
            }
            assert!(!limiter.allow(spent, 1_000), "{spent}: bucket was reset");
        }
    }

    #[test]
    fn limiter_shard_count_is_configurable() {
        // 6 requested → floored to 4 (capacity-bounded structures floor,
        // so the per-shard bound never shrinks below capacity/shards).
        let limiter = RateLimiter::with_shards(1.0, 1.0, 100, 6);
        assert_eq!(limiter.shard_count(), 4);
        assert_eq!(limiter.max_clients(), 100);
        assert_eq!(limiter.per_shard_clients(), 25);
        assert!(RateLimiter::new(1.0, 1.0, 100).shard_count() >= 1);
    }

    #[test]
    fn limiter_raises_shards_to_bound_the_eviction_scan() {
        // 64 Ki clients over 2 requested shards would mean a 32 Ki-entry
        // victim scan per insert; the layout raises the count instead.
        let limiter = RateLimiter::with_shards(1.0, 1.0, 1 << 16, 2);
        assert!(limiter.per_shard_clients() <= DEFAULT_MAX_SCAN);
        assert!(limiter.shard_count() >= (1 << 16) / DEFAULT_MAX_SCAN);
        // An explicit tighter scan bound is honored too.
        let tight = RateLimiter::with_layout(1.0, 1.0, 1 << 12, Some(1), 64);
        assert!(tight.per_shard_clients() <= 64);
    }

    #[test]
    fn limiter_population_never_exceeds_capacity_under_address_cycling() {
        // The flood worst case: every request a fresh address, table at
        // capacity. The per-shard bound is hard (enforced under the
        // shard lock), so the population can never exceed max_clients —
        // not even transiently — and no admission ever folds over the
        // whole table.
        let limiter = RateLimiter::with_shards(5.0, 1.0, 64, 8);
        for i in 0..4_096u32 {
            limiter.allow(ip((i % 250) as u8), i as u64); // reuse 250 addrs
            limiter.allow(
                IpAddr::V4(Ipv4Addr::new(192, (i >> 16) as u8, (i >> 8) as u8, i as u8)),
                i as u64,
            );
        }
        assert!(
            limiter.len() <= 64,
            "population {} over max_clients",
            limiter.len()
        );
        assert_eq!(limiter.global_eviction_folds(), 0);
        // Each admission scanned at most one shard's worth of entries.
        assert!(limiter.eviction_scan_steps() <= 8_192 * limiter.per_shard_clients() as u64);
    }

    #[test]
    fn limiter_concurrent_access() {
        use std::sync::Arc;
        let limiter = Arc::new(RateLimiter::new(1_000.0, 1.0, 100));
        let granted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let limiter = Arc::clone(&limiter);
                let granted = Arc::clone(&granted);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if limiter.allow(ip(1), 0) {
                            granted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Exactly the burst capacity is granted across all threads.
        assert_eq!(granted.load(std::sync::atomic::Ordering::Relaxed), 1_000);
    }
}
