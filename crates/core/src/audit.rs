//! Bounded audit log of admission decisions.
//!
//! Operators tuning a policy need to see *why* clients were charged what
//! they were. The log keeps the most recent `capacity` events in memory;
//! persistence is the embedder's concern.

use crate::sync::{AtomicU64, Ordering};
use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use aipow_shard::{default_shard_count, floor_shards, round_shards, Sharded};
use std::collections::VecDeque;
use std::net::IpAddr;

/// What happened in one admission step.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditKind {
    /// A challenge was issued (Figure 1, steps 2–4).
    ChallengeIssued {
        /// The model's score for the client.
        score: ReputationScore,
        /// The policy's difficulty decision.
        difficulty: Difficulty,
    },
    /// A solution verified successfully (steps 6–7).
    SolutionAccepted {
        /// The difficulty that was paid.
        difficulty: Difficulty,
    },
    /// A solution was rejected.
    SolutionRejected {
        /// The verifier's reason, as text.
        reason: String,
    },
    /// The request was admitted without a puzzle (bypass threshold).
    Bypassed {
        /// The model's score for the client.
        score: ReputationScore,
    },
}

/// One audit event.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// When it happened, ms since the Unix epoch.
    pub at_ms: u64,
    /// The client concerned.
    pub client_ip: IpAddr,
    /// What happened.
    pub kind: AuditKind,
}

/// A bounded, thread-safe, most-recent-first audit log.
///
/// Internally a *sharded ring*: a global atomic sequence number assigns
/// each event to a shard round-robin (`seq mod shards`), and each shard
/// keeps the most recent `ceil(capacity / shards)` of its events in a
/// ring buffer. Because assignment is round-robin, any window of
/// `capacity` consecutive sequence numbers places at most the per-shard
/// quota on each shard — so the union of the shard rings always contains
/// the last `capacity` events exactly, and [`snapshot`](AuditLog::snapshot)
/// reconstructs global order by merging on the sequence number.
/// Concurrent recorders therefore contend only 1-in-`shards` of the time
/// instead of on every event.
///
/// ```
/// use aipow_core::{AuditLog, AuditKind};
/// # use std::net::{IpAddr, Ipv4Addr};
/// let log = AuditLog::new(2);
/// let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
/// for i in 0..3 {
///     log.record(i, ip, AuditKind::SolutionRejected { reason: format!("r{i}") });
/// }
/// let events = log.snapshot();
/// assert_eq!(events.len(), 2); // oldest evicted
/// assert_eq!(events[0].at_ms, 2); // most recent first
/// ```
#[derive(Debug)]
pub struct AuditLog {
    shards: Sharded<VecDeque<(u64, AuditEvent)>>,
    /// Next event sequence number; also the total ever recorded.
    seq: AtomicU64,
    capacity: usize,
    per_shard: usize,
}

impl AuditLog {
    /// Creates a log retaining at most `capacity` events, with an
    /// automatically chosen shard count (never more shards than
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "audit log capacity must be positive");
        let auto = default_shard_count().min(capacity);
        Self::with_shards(capacity, floor_shards(auto))
    }

    /// Creates a log with an explicit shard count (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_shards(capacity: usize, shard_count: usize) -> Self {
        assert!(capacity > 0, "audit log capacity must be positive");
        let shard_count = round_shards(shard_count);
        let per_shard = capacity.div_ceil(shard_count);
        AuditLog {
            shards: Sharded::new(shard_count, |_| VecDeque::with_capacity(per_shard)),
            seq: AtomicU64::new(0),
            capacity,
            per_shard,
        }
    }

    /// Number of shards the ring is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// Appends an event, evicting the oldest if full.
    ///
    /// Under contention two recorders may land in the same shard with
    /// their sequence numbers reversed, in which case a full ring can
    /// evict an event one slot newer than the strict global oldest; the
    /// merge in [`snapshot`](AuditLog::snapshot) restores exact order for
    /// everything retained.
    pub fn record(&self, at_ms: u64, client_ip: IpAddr, kind: AuditKind) {
        // AcqRel: reservations form one total order; pairs with the
        // Acquire in recorded() so a observed count covers its events
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        let event = AuditEvent {
            at_ms,
            client_ip,
            kind,
        };
        self.shards.with_index(seq as usize, |ring| {
            if ring.len() == self.per_shard {
                ring.pop_front();
            }
            ring.push_back((seq, event));
        });
    }

    /// Appends a batch of events in order, reserving the whole sequence
    /// range with **one** atomic add and taking each shard's lock **once**
    /// for the batch. Round-robin assignment places consecutive sequence
    /// numbers on consecutive shards, so a batch of `n` events touches
    /// `min(n, shards)` shards with `⌈n / shards⌉` appends each — the
    /// per-event lock acquisition the sequential path pays is amortized
    /// away. Retention and ordering semantics are identical to `n` calls
    /// to [`record`](AuditLog::record).
    pub fn record_batch(&self, events: Vec<AuditEvent>) {
        let n = events.len();
        if n == 0 {
            return;
        }
        // AcqRel: see record() — one RMW reserves the whole batch range
        let base = self.seq.fetch_add(n as u64, Ordering::AcqRel);
        let shards = self.shards.shard_count();
        let mut events: Vec<Option<AuditEvent>> = events.into_iter().map(Some).collect();
        for offset in 0..shards.min(n) {
            self.shards
                .with_index((base as usize).wrapping_add(offset), |ring| {
                    let mut i = offset;
                    while i < n {
                        if ring.len() == self.per_shard {
                            ring.pop_front();
                        }
                        let event = events[i]
                            .take()
                            .expect("batch invariant: each slot is visited exactly once");
                        ring.push_back((base + i as u64, event));
                        i += shards;
                    }
                });
        }
    }

    /// The retained events, most recent first: shard rings are merged by
    /// sequence number, restoring the exact global record order.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        let mut merged: Vec<(u64, AuditEvent)> = self.shards.fold(Vec::new(), |mut acc, ring| {
            acc.extend(ring.iter().cloned());
            acc
        });
        merged.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        merged.truncate(self.capacity);
        merged.into_iter().map(|(_, event)| event).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        let total = self.shards.fold(0, |acc, ring| acc + ring.len());
        total.min(self.capacity)
    }

    /// Number of events ever recorded (retained or evicted).
    pub fn recorded(&self) -> u64 {
        // Acquire: pairs with the AcqRel seq reservations
        self.seq.load(Ordering::Acquire)
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    #[test]
    fn records_and_snapshots_most_recent_first() {
        let log = AuditLog::new(10);
        log.record(
            1,
            ip(),
            AuditKind::Bypassed {
                score: ReputationScore::MIN,
            },
        );
        log.record(
            2,
            ip(),
            AuditKind::SolutionAccepted {
                difficulty: Difficulty::new(5).unwrap(),
            },
        );
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ms, 2);
        assert_eq!(events[1].at_ms, 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let log = AuditLog::new(3);
        for i in 0..5u64 {
            log.record(i, ip(), AuditKind::SolutionRejected { reason: "x".into() });
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at_ms, 4);
        assert_eq!(events[2].at_ms, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        AuditLog::new(0);
    }

    #[test]
    fn sharded_ring_preserves_global_order_on_read() {
        let log = AuditLog::with_shards(16, 4);
        assert_eq!(log.shard_count(), 4);
        for i in 0..40u64 {
            log.record(i, ip(), AuditKind::SolutionRejected { reason: "x".into() });
        }
        assert_eq!(log.len(), 16);
        assert_eq!(log.recorded(), 40);
        let events = log.snapshot();
        // Exactly the last 16 events, most recent first, in exact order.
        let got: Vec<u64> = events.iter().map(|e| e.at_ms).collect();
        let want: Vec<u64> = (24..40).rev().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn record_batch_matches_sequential_records_exactly() {
        // Same events through both paths: identical retention, order,
        // and sequence accounting.
        let single = AuditLog::with_shards(16, 4);
        let batched = AuditLog::with_shards(16, 4);
        let events: Vec<AuditEvent> = (0..40u64)
            .map(|i| AuditEvent {
                at_ms: i,
                client_ip: ip(),
                kind: AuditKind::SolutionRejected {
                    reason: format!("r{i}"),
                },
            })
            .collect();
        for e in &events {
            single.record(e.at_ms, e.client_ip, e.kind.clone());
        }
        // Mixed batch sizes covering n < shards, n == shards, n > shards.
        let mut rest = events;
        for take in [1usize, 3, 4, 9, 23] {
            let chunk: Vec<AuditEvent> = rest.drain(..take).collect();
            batched.record_batch(chunk);
        }
        batched.record_batch(Vec::new()); // no-op
        assert_eq!(batched.recorded(), single.recorded());
        assert_eq!(batched.len(), single.len());
        assert_eq!(batched.snapshot(), single.snapshot());
    }

    #[test]
    fn record_batch_larger_than_capacity_keeps_the_tail() {
        let log = AuditLog::with_shards(4, 2);
        let events: Vec<AuditEvent> = (0..10u64)
            .map(|i| AuditEvent {
                at_ms: i,
                client_ip: ip(),
                kind: AuditKind::SolutionRejected { reason: "x".into() },
            })
            .collect();
        log.record_batch(events);
        let got: Vec<u64> = log.snapshot().iter().map(|e| e.at_ms).collect();
        assert_eq!(got, vec![9, 8, 7, 6]);
    }

    #[test]
    fn shard_count_never_exceeds_capacity() {
        assert_eq!(AuditLog::new(1).shard_count(), 1);
        assert!(AuditLog::new(2).shard_count() <= 2);
        assert!(AuditLog::new(1_024).shard_count() >= 1);
    }

    #[test]
    fn concurrent_records_are_all_kept_up_to_capacity() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::new(1_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(
                            t * 1_000 + i,
                            ip(),
                            AuditKind::Bypassed {
                                score: ReputationScore::MIN,
                            },
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }
}
