//! Bounded audit log of admission decisions.
//!
//! Operators tuning a policy need to see *why* clients were charged what
//! they were. The log keeps the most recent `capacity` events in memory;
//! persistence is the embedder's concern.

use aipow_pow::Difficulty;
use aipow_reputation::ReputationScore;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::IpAddr;

/// What happened in one admission step.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditKind {
    /// A challenge was issued (Figure 1, steps 2–4).
    ChallengeIssued {
        /// The model's score for the client.
        score: ReputationScore,
        /// The policy's difficulty decision.
        difficulty: Difficulty,
    },
    /// A solution verified successfully (steps 6–7).
    SolutionAccepted {
        /// The difficulty that was paid.
        difficulty: Difficulty,
    },
    /// A solution was rejected.
    SolutionRejected {
        /// The verifier's reason, as text.
        reason: String,
    },
    /// The request was admitted without a puzzle (bypass threshold).
    Bypassed {
        /// The model's score for the client.
        score: ReputationScore,
    },
}

/// One audit event.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// When it happened, ms since the Unix epoch.
    pub at_ms: u64,
    /// The client concerned.
    pub client_ip: IpAddr,
    /// What happened.
    pub kind: AuditKind,
}

/// A bounded, thread-safe, most-recent-first audit log.
///
/// ```
/// use aipow_core::{AuditLog, AuditKind};
/// # use std::net::{IpAddr, Ipv4Addr};
/// let log = AuditLog::new(2);
/// let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
/// for i in 0..3 {
///     log.record(i, ip, AuditKind::SolutionRejected { reason: format!("r{i}") });
/// }
/// let events = log.snapshot();
/// assert_eq!(events.len(), 2); // oldest evicted
/// assert_eq!(events[0].at_ms, 2); // most recent first
/// ```
#[derive(Debug)]
pub struct AuditLog {
    inner: Mutex<VecDeque<AuditEvent>>,
    capacity: usize,
}

impl AuditLog {
    /// Creates a log retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "audit log capacity must be positive");
        AuditLog {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn record(&self, at_ms: u64, client_ip: IpAddr, kind: AuditKind) {
        let mut log = self.inner.lock();
        if log.len() == self.capacity {
            log.pop_front();
        }
        log.push_back(AuditEvent {
            at_ms,
            client_ip,
            kind,
        });
    }

    /// The retained events, most recent first.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        self.inner.lock().iter().rev().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    #[test]
    fn records_and_snapshots_most_recent_first() {
        let log = AuditLog::new(10);
        log.record(
            1,
            ip(),
            AuditKind::Bypassed {
                score: ReputationScore::MIN,
            },
        );
        log.record(
            2,
            ip(),
            AuditKind::SolutionAccepted {
                difficulty: Difficulty::new(5).unwrap(),
            },
        );
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ms, 2);
        assert_eq!(events[1].at_ms, 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let log = AuditLog::new(3);
        for i in 0..5u64 {
            log.record(
                i,
                ip(),
                AuditKind::SolutionRejected {
                    reason: "x".into(),
                },
            );
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at_ms, 4);
        assert_eq!(events[2].at_ms, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        AuditLog::new(0);
    }

    #[test]
    fn concurrent_records_are_all_kept_up_to_capacity() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::new(1_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(
                            t * 1_000 + i,
                            ip(),
                            AuditKind::Bypassed {
                                score: ReputationScore::MIN,
                            },
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }
}
