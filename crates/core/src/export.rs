//! Telemetry exposition: rendering a [`MetricsSnapshot`] as JSON and as
//! Prometheus text format.
//!
//! Both renderers are hand-rolled — the workspace's vendored `serde` is
//! derive-only (no JSON backend), and the exposition formats are small
//! enough that a dependency would cost more than it saves. Output is
//! deterministic: map-backed sections are emitted in sorted key order so
//! two snapshots with equal contents render byte-identically.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Renders a snapshot as a single JSON object.
///
/// The shape mirrors [`MetricsSnapshot`] field-for-field:
/// `rejected_by_reason` becomes a nested object (sorted by reason) and
/// `stage_timings` an array of per-stage objects, in pipeline order.
///
/// ```
/// use aipow_core::{export, FrameworkMetrics};
/// let json = export::snapshot_json(&FrameworkMetrics::new().snapshot());
/// assert!(json.starts_with('{') && json.ends_with('}'));
/// assert!(json.contains("\"challenges_issued\":0"));
/// ```
pub fn snapshot_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1_024);
    out.push('{');
    let mut first = true;
    let mut field = |out: &mut String, key: &str, value: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{key}\":{value}");
    };

    field(
        &mut out,
        "challenges_issued",
        &snap.challenges_issued.to_string(),
    );
    field(
        &mut out,
        "solutions_accepted",
        &snap.solutions_accepted.to_string(),
    );
    field(
        &mut out,
        "solutions_rejected",
        &snap.solutions_rejected.to_string(),
    );
    field(&mut out, "bypassed", &snap.bypassed.to_string());

    let mut reasons: Vec<(&String, &u64)> = snap.rejected_by_reason.iter().collect();
    reasons.sort_by_key(|(reason, _)| reason.as_str());
    let mut reason_obj = String::from("{");
    for (i, (reason, count)) in reasons.iter().enumerate() {
        if i > 0 {
            reason_obj.push(',');
        }
        let _ = write!(reason_obj, "\"{}\":{}", escape_json(reason), count);
    }
    reason_obj.push('}');
    field(&mut out, "rejected_by_reason", &reason_obj);

    field(
        &mut out,
        "median_issued_difficulty",
        &snap.median_issued_difficulty.to_string(),
    );
    field(
        &mut out,
        "max_issued_difficulty",
        &snap.max_issued_difficulty.to_string(),
    );
    field(&mut out, "replay_shards", &snap.replay_shards.to_string());
    field(&mut out, "audit_shards", &snap.audit_shards.to_string());
    field(&mut out, "ledger_shards", &snap.ledger_shards.to_string());
    field(
        &mut out,
        "replay_evicted_live",
        &snap.replay_evicted_live.to_string(),
    );
    field(
        &mut out,
        "behavior_tracked",
        &snap.behavior_tracked.to_string(),
    );
    field(
        &mut out,
        "behavior_sweeps",
        &snap.behavior_sweeps.to_string(),
    );
    field(
        &mut out,
        "behavior_pruned",
        &snap.behavior_pruned.to_string(),
    );
    field(&mut out, "accept_errors", &snap.accept_errors.to_string());
    field(
        &mut out,
        "accept_backoff_ms",
        &snap.accept_backoff_ms.to_string(),
    );
    field(&mut out, "rate_limited", &snap.rate_limited.to_string());
    field(
        &mut out,
        "open_connections",
        &snap.open_connections.to_string(),
    );
    field(&mut out, "accepted_total", &snap.accepted_total.to_string());
    field(&mut out, "reaped_idle", &snap.reaped_idle.to_string());
    field(
        &mut out,
        "per_ip_cap_rejections",
        &snap.per_ip_cap_rejections.to_string(),
    );
    field(
        &mut out,
        "max_conn_rejections",
        &snap.max_conn_rejections.to_string(),
    );
    field(
        &mut out,
        "outbound_overflow_closes",
        &snap.outbound_overflow_closes.to_string(),
    );
    field(
        &mut out,
        "reactor_wakeups",
        &snap.reactor_wakeups.to_string(),
    );
    field(
        &mut out,
        "reactor_ready_events",
        &snap.reactor_ready_events.to_string(),
    );
    field(
        &mut out,
        "ready_events_per_wakeup",
        &json_f64(snap.ready_events_per_wakeup),
    );
    field(
        &mut out,
        "replay_rejects_per_s",
        &json_f64(snap.replay_rejects_per_s),
    );
    field(
        &mut out,
        "rate_limited_per_s",
        &json_f64(snap.rate_limited_per_s),
    );
    field(
        &mut out,
        "rejections_per_s",
        &json_f64(snap.rejections_per_s),
    );
    field(&mut out, "accepts_per_s", &json_f64(snap.accepts_per_s));

    let mut stages = String::from("[");
    for (i, t) in snap.stage_timings.iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        let _ = write!(
            stages,
            "{{\"stage\":\"{}\",\"batches\":{},\"items\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            escape_json(&t.stage),
            t.batches,
            t.items,
            t.total_ns,
            t.p50_ns,
            t.p99_ns
        );
    }
    stages.push(']');
    field(&mut out, "stage_timings", &stages);

    out.push('}');
    out
}

/// Renders a snapshot in the Prometheus text exposition format: one
/// `# TYPE` comment per family, `aipow_`-prefixed metric names,
/// `{label="value"}` selectors for the per-reason and per-stage series.
///
/// ```
/// use aipow_core::{export, FrameworkMetrics};
/// let text = export::snapshot_prometheus(&FrameworkMetrics::new().snapshot());
/// assert!(text.contains("# TYPE aipow_challenges_issued counter"));
/// assert!(text.lines().all(|l| !l.trim_end().is_empty()));
/// ```
pub fn snapshot_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2_048);
    let counter = |out: &mut String, name: &str, value: u64| {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    };
    counter(&mut out, "aipow_challenges_issued", snap.challenges_issued);
    counter(
        &mut out,
        "aipow_solutions_accepted",
        snap.solutions_accepted,
    );
    counter(
        &mut out,
        "aipow_solutions_rejected",
        snap.solutions_rejected,
    );
    counter(&mut out, "aipow_bypassed", snap.bypassed);

    let mut reasons: Vec<(&String, &u64)> = snap.rejected_by_reason.iter().collect();
    reasons.sort_by_key(|(reason, _)| reason.as_str());
    let _ = writeln!(out, "# TYPE aipow_rejections counter");
    for (reason, count) in reasons {
        let _ = writeln!(out, "aipow_rejections{{reason=\"{reason}\"}} {count}");
    }

    let gauge = |out: &mut String, name: &str, value: u64| {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    };
    gauge(
        &mut out,
        "aipow_median_issued_difficulty",
        snap.median_issued_difficulty,
    );
    gauge(
        &mut out,
        "aipow_max_issued_difficulty",
        snap.max_issued_difficulty,
    );
    gauge(&mut out, "aipow_replay_shards", snap.replay_shards);
    gauge(&mut out, "aipow_audit_shards", snap.audit_shards);
    gauge(&mut out, "aipow_ledger_shards", snap.ledger_shards);
    gauge(
        &mut out,
        "aipow_replay_evicted_live",
        snap.replay_evicted_live,
    );
    gauge(&mut out, "aipow_behavior_tracked", snap.behavior_tracked);
    counter(&mut out, "aipow_behavior_sweeps", snap.behavior_sweeps);
    counter(&mut out, "aipow_behavior_pruned", snap.behavior_pruned);
    counter(&mut out, "aipow_accept_errors", snap.accept_errors);
    gauge(&mut out, "aipow_accept_backoff_ms", snap.accept_backoff_ms);
    counter(&mut out, "aipow_rate_limited", snap.rate_limited);
    gauge(&mut out, "aipow_open_connections", snap.open_connections);
    counter(&mut out, "aipow_accepted_total", snap.accepted_total);
    counter(&mut out, "aipow_reaped_idle", snap.reaped_idle);
    counter(
        &mut out,
        "aipow_per_ip_cap_rejections",
        snap.per_ip_cap_rejections,
    );
    counter(
        &mut out,
        "aipow_max_conn_rejections",
        snap.max_conn_rejections,
    );
    counter(
        &mut out,
        "aipow_outbound_overflow_closes",
        snap.outbound_overflow_closes,
    );
    counter(&mut out, "aipow_reactor_wakeups", snap.reactor_wakeups);
    counter(
        &mut out,
        "aipow_reactor_ready_events",
        snap.reactor_ready_events,
    );

    let rate = |out: &mut String, name: &str, value: f64| {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", prom_f64(value));
    };
    rate(
        &mut out,
        "aipow_replay_rejects_per_s",
        snap.replay_rejects_per_s,
    );
    rate(
        &mut out,
        "aipow_rate_limited_per_s",
        snap.rate_limited_per_s,
    );
    rate(&mut out, "aipow_rejections_per_s", snap.rejections_per_s);
    rate(&mut out, "aipow_accepts_per_s", snap.accepts_per_s);
    rate(
        &mut out,
        "aipow_ready_events_per_wakeup",
        snap.ready_events_per_wakeup,
    );

    for (name, pick) in [
        ("aipow_stage_batches", 0usize),
        ("aipow_stage_items", 1),
        ("aipow_stage_total_ns", 2),
        ("aipow_stage_p50_ns", 3),
        ("aipow_stage_p99_ns", 4),
    ] {
        let kind = if pick < 3 { "counter" } else { "gauge" };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for t in &snap.stage_timings {
            let value = [t.batches, t.items, t.total_ns, t.p50_ns, t.p99_ns][pick];
            let _ = writeln!(out, "{name}{{stage=\"{}\"}} {value}", t.stage);
        }
    }
    out
}

/// JSON-escapes the characters that can legally appear in a metric label
/// (reason/stage names are static snake_case strings, but the renderer
/// stays safe if that ever loosens).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite f64 as a JSON number (NaN/infinity have no JSON
/// representation; rates are always finite, so clamp defensively).
fn json_f64(v: f64) -> String {
    let v = if v.is_finite() { v } else { 0.0 };
    // `{:?}` always includes a decimal point or exponent, so the output
    // round-trips as a float rather than collapsing to an int.
    format!("{v:?}")
}

fn prom_f64(v: f64) -> String {
    json_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FrameworkMetrics;

    fn populated_snapshot() -> MetricsSnapshot {
        let m = FrameworkMetrics::new();
        m.record_issued_difficulties([8u8, 8, 9]);
        m.solutions_accepted.inc();
        m.record_rejection("bad_mac");
        m.record_stage(0, 4, 4_000);
        m.accept_errors.inc();
        m.accept_backoff_ms.set(128);
        m.rate_limited.add(2);
        m.snapshot()
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = snapshot_json(&populated_snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced braces/brackets — a cheap structural check that still
        // catches missed separators and truncation.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in {json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"challenges_issued\":3"));
        assert!(json.contains("\"bad_mac\":1"));
        assert!(json.contains("\"rate_limited\":2"));
        assert!(json.contains("\"stage\":\"score\""));
        assert!(!json.contains(",,"), "no empty fields");
    }

    #[test]
    fn json_floats_stay_floats() {
        let mut snap = populated_snapshot();
        snap.rejections_per_s = 2.0;
        let json = snapshot_json(&snap);
        assert!(
            json.contains("\"rejections_per_s\":2.0"),
            "whole-valued rate must render as a float: {json}"
        );
        snap.rejections_per_s = f64::NAN;
        assert!(snapshot_json(&snap).contains("\"rejections_per_s\":0.0"));
    }

    #[test]
    fn prometheus_parses_line_by_line() {
        let text = snapshot_prometheus(&populated_snapshot());
        let mut samples = 0;
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines");
            if let Some(comment) = line.strip_prefix("# TYPE ") {
                let mut parts = comment.split_whitespace();
                let name = parts.next().expect("family name");
                let kind = parts.next().expect("family kind");
                assert!(name.starts_with("aipow_"), "bad family {name}");
                assert!(matches!(kind, "counter" | "gauge"), "bad kind {kind}");
                assert_eq!(parts.next(), None);
                continue;
            }
            // Sample line: `name[{label="value"}] value`.
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line}");
            let name = series.split('{').next().unwrap();
            assert!(name.starts_with("aipow_"), "bad metric name {name}");
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(
                        rest.starts_with('{') && rest.ends_with('}'),
                        "bad labels {rest}"
                    );
                    let inner = &rest[1..rest.len() - 1];
                    let (label, val) = inner.split_once('=').expect("label=value");
                    assert!(label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
                    assert!(val.starts_with('"') && val.ends_with('"'));
                }
            }
            samples += 1;
        }
        assert!(
            samples >= 25,
            "expected a full exposition, got {samples} samples"
        );
        assert!(text.contains("aipow_rejections{reason=\"bad_mac\"} 1"));
        assert!(text.contains("aipow_stage_p99_ns{stage=\"score\"}"));
        assert!(text.contains("aipow_accept_errors 1"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = populated_snapshot();
        assert_eq!(snapshot_json(&snap), snapshot_json(&snap.clone()));
        assert_eq!(
            snapshot_prometheus(&snap),
            snapshot_prometheus(&snap.clone())
        );
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain_reason"), "plain_reason");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
