//! Sources of per-IP traffic attributes for the AI model.
//!
//! The paper's AI model “inspects the features of the request as input”.
//! Where those features come from is deployment-specific — a flow monitor,
//! a WAF, an IDS feed — so the framework abstracts it behind
//! [`FeatureSource`]. Two implementations ship with the workspace:
//!
//! - [`StaticFeatureSource`] — an explicit per-IP table with a default,
//!   used by tests and the TCP demo server;
//! - [`SyntheticFeatureSource`] — deterministic pseudo-features derived
//!   from the IP itself, useful for load tests where any stable feature
//!   assignment suffices.

use aipow_reputation::FeatureVector;
use aipow_shard::ShardedMap;
use std::net::IpAddr;

/// Provides the attribute vector the AI model sees for a client.
pub trait FeatureSource: Send + Sync {
    /// The current attribute vector for `ip`.
    fn features_for(&self, ip: IpAddr) -> FeatureVector;
}

/// A table of per-IP features with a fallback default.
///
/// The table is sharded by IP hash, so concurrent lookups and updates for
/// different clients do not contend on a single table lock.
///
/// ```
/// use aipow_core::{FeatureSource, StaticFeatureSource};
/// use aipow_reputation::FeatureVector;
/// # use std::net::{IpAddr, Ipv4Addr};
/// let source = StaticFeatureSource::new(FeatureVector::zeros());
/// let bot = IpAddr::V4(Ipv4Addr::new(10, 9, 9, 9));
/// source.insert(bot, FeatureVector::zeros().with(0, 50.0));
/// assert_eq!(source.features_for(bot).get(0), 50.0);
/// ```
#[derive(Debug)]
pub struct StaticFeatureSource {
    default: FeatureVector,
    table: ShardedMap<IpAddr, FeatureVector>,
}

impl StaticFeatureSource {
    /// Creates a source returning `default` for unregistered IPs, with
    /// the machine-default shard count.
    pub fn new(default: FeatureVector) -> Self {
        StaticFeatureSource {
            default,
            table: ShardedMap::with_default_shards(),
        }
    }

    /// Creates a source with an explicit shard count (rounded up to a
    /// power of two).
    pub fn with_shards(default: FeatureVector, shard_count: usize) -> Self {
        StaticFeatureSource {
            default,
            table: ShardedMap::new(shard_count),
        }
    }

    /// Number of shards the table is split over.
    pub fn shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// Registers (or replaces) the features for `ip`.
    pub fn insert(&self, ip: IpAddr, features: FeatureVector) {
        self.table.insert(ip, features);
    }

    /// Removes the registration for `ip`, if any.
    pub fn remove(&self, ip: IpAddr) -> Option<FeatureVector> {
        self.table.remove(&ip)
    }

    /// Number of registered IPs.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no IPs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FeatureSource for StaticFeatureSource {
    fn features_for(&self, ip: IpAddr) -> FeatureVector {
        self.table.get_cloned(&ip).unwrap_or(self.default)
    }
}

/// Deterministic pseudo-features keyed by the IP bits: the same IP always
/// maps to the same plausible-looking attribute vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticFeatureSource;

impl FeatureSource for SyntheticFeatureSource {
    fn features_for(&self, ip: IpAddr) -> FeatureVector {
        // Mix the address bits into stable pseudo-random lanes via
        // splitmix64, then shape each lane into its feature's range.
        let seed = match ip {
            IpAddr::V4(v4) => u32::from(v4) as u64,
            IpAddr::V6(v6) => {
                let o = v6.octets();
                u64::from_be_bytes(o[..8].try_into().expect("slice-length invariant: 8 bytes"))
                    ^ u64::from_be_bytes(
                        o[8..].try_into().expect("slice-length invariant: 8 bytes"),
                    )
            }
        };
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut lane = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 // uniform [0, 1)
        };
        FeatureVector::new([
            lane() * 10.0,          // request_rate
            lane() * 0.3,           // syn_ratio
            lane() * 8.0,           // unique_ports
            3.0 + lane() * 3.0,     // payload_entropy
            lane() * 0.5,           // geo_risk
            lane() * 0.5,           // asn_risk
            (lane() * 2.0).floor(), // blacklist_hits
            lane() * 0.2,           // tls_anomaly
            lane() * 200.0,         // interarrival_jitter
            lane() * 0.1,           // failed_auth_ratio
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, last))
    }

    #[test]
    fn static_source_returns_registered_or_default() {
        let source = StaticFeatureSource::new(FeatureVector::zeros());
        assert_eq!(source.features_for(ip(1)), FeatureVector::zeros());
        let custom = FeatureVector::zeros().with(3, 7.0);
        source.insert(ip(1), custom);
        assert_eq!(source.features_for(ip(1)), custom);
        assert_eq!(source.features_for(ip(2)), FeatureVector::zeros());
    }

    #[test]
    fn static_source_remove() {
        let source = StaticFeatureSource::new(FeatureVector::zeros());
        let custom = FeatureVector::zeros().with(0, 1.0);
        source.insert(ip(1), custom);
        assert_eq!(source.remove(ip(1)), Some(custom));
        assert_eq!(source.remove(ip(1)), None);
        assert!(source.is_empty());
    }

    #[test]
    fn synthetic_source_is_deterministic_and_varied() {
        let source = SyntheticFeatureSource;
        let a1 = source.features_for(ip(1));
        let a2 = source.features_for(ip(1));
        let b = source.features_for(ip(2));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn synthetic_features_within_physical_ranges() {
        let source = SyntheticFeatureSource;
        for last in 0..=255u8 {
            let f = source.features_for(ip(last));
            assert!((0.0..10.0).contains(&f.get(0)));
            assert!((0.0..=1.0).contains(&f.get(1)));
            assert!((0.0..=8.0).contains(&f.get(3)));
            assert!((0.0..=1.0).contains(&f.get(9)));
        }
    }

    #[test]
    fn synthetic_handles_ipv6() {
        let source = SyntheticFeatureSource;
        let v6: IpAddr = "2001:db8::1".parse().unwrap();
        let f1 = source.features_for(v6);
        let f2 = source.features_for(v6);
        assert_eq!(f1, f2);
    }

    #[test]
    fn sharded_table_behaves_like_flat_table() {
        let source = StaticFeatureSource::with_shards(FeatureVector::zeros(), 8);
        assert_eq!(source.shard_count(), 8);
        for last in 0..=255u8 {
            source.insert(ip(last), FeatureVector::zeros().with(0, last as f64));
        }
        assert_eq!(source.len(), 256);
        for last in 0..=255u8 {
            assert_eq!(source.features_for(ip(last)).get(0), last as f64);
        }
    }

    #[test]
    fn trait_object_usable() {
        let source: Box<dyn FeatureSource> = Box::new(SyntheticFeatureSource);
        let _ = source.features_for(ip(9));
    }
}
