//! Per-client cost accounting (paper property 1).
//!
//! “First, each client pays a cost for utilizing the system, and this cost
//! increases as the client's reputation score worsens.” The ledger tracks
//! the cumulative *expected work* (hash evaluations) each client has been
//! charged, which is the quantity the DDoS experiment (claim C5) reports.

use crate::sync::{AtomicU64, Ordering};
use aipow_shard::{EvictionPolicy, ShardLayout, ShardedMap, DEFAULT_MAX_SCAN};
use std::net::IpAddr;

/// The ledger's eviction policy: the cheapest account goes first, so
/// heavy hitters — the clients the DDoS experiment reports on — are
/// retained. Shared (via [`EvictionPolicy`]) with the limiter's
/// least-recently-refilled and the recorder's least-recently-seen
/// policies.
#[derive(Debug, Clone, Copy)]
pub struct LowestCost;

impl EvictionPolicy<f64> for LowestCost {
    type Score = f64;

    fn score(&self, cost: &f64) -> f64 {
        *cost
    }
}

/// Thread-safe per-IP cumulative work ledger, bounded in entries.
///
/// The ledger is sharded by IP hash: charges for different clients take
/// different locks, and a single client's account is only ever mutated
/// under its shard lock, so concurrent charges sum exactly.
///
/// The capacity is enforced **per shard** ([`ShardLayout::bounded`]
/// keeps each shard at `capacity / shard_count` accounts, raising the
/// shard count so no shard exceeds the scan bound): a charge landing in
/// a full shard evicts that shard's cheapest account ([`LowestCost`])
/// under the same single lock acquisition as the charge itself, so a
/// solution-path flood of fresh addresses costs one bounded shard scan
/// per charge — never the all-shard fold the retired global protocol
/// performed — and the population can never exceed the capacity, even
/// transiently.
///
/// ```
/// use aipow_core::CostLedger;
/// # use std::net::{IpAddr, Ipv4Addr};
/// let ledger = CostLedger::new(100);
/// let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
/// ledger.charge(ip, 32.0); // a 5-difficult puzzle: 2^5 expected hashes
/// ledger.charge(ip, 32.0);
/// assert_eq!(ledger.total(ip), 64.0);
/// ```
#[derive(Debug)]
pub struct CostLedger {
    costs: ShardedMap<IpAddr, f64>,
    capacity: usize,
    per_shard_capacity: usize,
    evicted: AtomicU64,
}

impl CostLedger {
    /// Creates a ledger tracking at most `capacity` clients, with the
    /// machine-default shard count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_layout(capacity, None, DEFAULT_MAX_SCAN)
    }

    /// Creates a ledger with an explicit shard count. The count is
    /// adjusted on both sides by [`ShardLayout::bounded`]: raised so no
    /// eviction scan exceeds the default scan bound, capped at
    /// `capacity`, and floored to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_shards(capacity: usize, shard_count: usize) -> Self {
        Self::with_layout(capacity, Some(shard_count), DEFAULT_MAX_SCAN)
    }

    /// Creates a ledger with full control over the eviction layout:
    /// requested shard count (`None` = machine default) and the maximum
    /// entries one eviction victim scan may visit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `max_scan == 0`.
    pub fn with_layout(capacity: usize, shard_count: Option<usize>, max_scan: usize) -> Self {
        assert!(capacity > 0, "cost ledger capacity must be positive");
        assert!(max_scan > 0, "eviction scan bound must be positive");
        let layout = ShardLayout::bounded(capacity, shard_count, max_scan);
        CostLedger {
            costs: ShardedMap::new(layout.shard_count),
            // The enforced bound, not the requested one (see
            // `capacity()` for how the two can differ).
            capacity: layout.population_bound(),
            per_shard_capacity: layout.per_shard_capacity,
            evicted: AtomicU64::new(0),
        }
    }

    /// Number of shards the ledger is split over.
    pub fn shard_count(&self) -> usize {
        self.costs.shard_count()
    }

    /// The population bound the table actually enforces
    /// (`per_shard_capacity × shard_count`). At most the capacity the
    /// ledger was constructed with; per-shard flooring can make it
    /// slightly lower, and pathological requests beyond
    /// `MAX_SHARDS × max_scan` are clamped to that product.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-shard account bound — also the worst-case entries one
    /// charge's eviction scan visits.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    /// Accounts evicted by the capacity bound since construction.
    pub fn evictions(&self) -> u64 {
        // relaxed: monitoring read of a stats counter; freshness not
        // required
        self.evicted.load(Ordering::Relaxed)
    }

    /// Entries examined by eviction victim scans since construction
    /// (diagnostic; grows by at most
    /// [`per_shard_capacity`](Self::per_shard_capacity) per charge).
    pub fn eviction_scan_steps(&self) -> u64 {
        self.costs.eviction_scan_steps()
    }

    /// Whole-table victim folds since construction. Always zero: the
    /// ledger only uses the bounded per-shard eviction path. Exposed so
    /// tests and the flood scenario can assert the retired global scan
    /// stays retired.
    pub fn global_eviction_folds(&self) -> u64 {
        self.costs.global_eviction_folds()
    }

    /// Adds `expected_work` (hash evaluations) to `ip`'s account.
    ///
    /// # Panics
    ///
    /// Panics if `expected_work` is negative or NaN.
    pub fn charge(&self, ip: IpAddr, expected_work: f64) {
        assert!(
            expected_work.is_finite() && expected_work >= 0.0,
            "expected work must be finite and non-negative"
        );
        // A full shard evicts its cheapest account — never `ip`'s own,
        // and never by scanning other shards (see
        // `ShardedMap::update_or_insert_evicting_in_shard`) — to stay
        // bounded.
        let (_, evicted) = self.costs.update_or_insert_evicting_in_shard(
            ip,
            self.per_shard_capacity,
            LowestCost,
            || 0.0,
            |cost| *cost += expected_work,
        );
        if evicted {
            // relaxed: monotonic stats counter; incremented under the
            // shard lock
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charges a batch of `(ip, expected_work)` entries, taking each
    /// touched shard's lock **once per batch** instead of once per charge
    /// ([`ShardedMap::with_shards_grouped`]). Eviction and accumulation
    /// semantics are identical to calling [`charge`](Self::charge) per
    /// entry in order: same-key charges apply in batch order, and a full
    /// shard evicts its cheapest account per inserted key.
    ///
    /// # Panics
    ///
    /// Panics if any `expected_work` is negative or NaN.
    pub fn charge_batch(&self, charges: Vec<(IpAddr, f64)>) {
        for &(_, work) in &charges {
            assert!(
                work.is_finite() && work >= 0.0,
                "expected work must be finite and non-negative"
            );
        }
        let mut evictions = 0u64;
        self.costs.with_shards_grouped(charges, |shard, ip, work| {
            let (_, evicted) = shard.update_or_insert_evicting(
                ip,
                self.per_shard_capacity,
                LowestCost,
                || 0.0,
                |cost| *cost += work,
            );
            if evicted {
                evictions += 1;
            }
        });
        if evictions > 0 {
            // relaxed: monotonic stats counter; incremented under the
            // shard lock
            self.evicted.fetch_add(evictions, Ordering::Relaxed);
        }
    }

    /// Cumulative expected work charged to `ip` (0.0 if unknown).
    pub fn total(&self, ip: IpAddr) -> f64 {
        self.costs.get_cloned(&ip).unwrap_or(0.0)
    }

    /// The `n` clients with the highest cumulative cost, descending.
    pub fn top(&self, n: usize) -> Vec<(IpAddr, f64)> {
        let mut entries: Vec<(IpAddr, f64)> = self.costs.fold(Vec::new(), |mut acc, k, v| {
            acc.push((*k, *v));
            acc
        });
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("cost invariant: ledger costs are never NaN")
        });
        entries.truncate(n);
        entries
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all tracked costs.
    pub fn grand_total(&self) -> f64 {
        self.costs.fold(0.0, |acc, _, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn charges_accumulate() {
        let ledger = CostLedger::new(8);
        ledger.charge(ip(1), 10.0);
        ledger.charge(ip(1), 5.0);
        ledger.charge(ip(2), 1.0);
        assert_eq!(ledger.total(ip(1)), 15.0);
        assert_eq!(ledger.total(ip(2)), 1.0);
        assert_eq!(ledger.total(ip(3)), 0.0);
        assert_eq!(ledger.grand_total(), 16.0);
    }

    #[test]
    fn top_orders_descending() {
        let ledger = CostLedger::new(8);
        ledger.charge(ip(1), 5.0);
        ledger.charge(ip(2), 50.0);
        ledger.charge(ip(3), 0.5);
        let top = ledger.top(2);
        assert_eq!(top, vec![(ip(2), 50.0), (ip(1), 5.0)]);
    }

    #[test]
    fn eviction_drops_cheapest() {
        // One shard makes placement deterministic: the shard-local
        // cheapest account is the global cheapest.
        let ledger = CostLedger::with_shards(2, 1);
        assert_eq!(ledger.shard_count(), 1);
        ledger.charge(ip(1), 100.0);
        ledger.charge(ip(2), 1.0);
        ledger.charge(ip(3), 10.0); // evicts ip(2)
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.evictions(), 1);
        assert_eq!(ledger.total(ip(2)), 0.0);
        assert_eq!(ledger.total(ip(1)), 100.0);
        assert_eq!(ledger.total(ip(3)), 10.0);
    }

    #[test]
    fn population_never_exceeds_capacity_under_address_cycling() {
        // Solution-path flood: every charge a fresh address, ledger at
        // capacity. The per-shard bound is hard, so the population can
        // never exceed the capacity and no charge folds the whole table.
        let ledger = CostLedger::with_shards(64, 8);
        for i in 0..4_096u32 {
            ledger.charge(
                IpAddr::V4(Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8)),
                32.0,
            );
        }
        assert!(
            ledger.len() <= 64,
            "population {} over capacity",
            ledger.len()
        );
        assert_eq!(ledger.evictions() + ledger.len() as u64, 4_096);
        assert_eq!(ledger.global_eviction_folds(), 0);
        assert!(ledger.eviction_scan_steps() <= 4_096 * ledger.per_shard_capacity() as u64);
    }

    #[test]
    fn layout_raises_shards_to_bound_the_scan() {
        // 64 Ki accounts over 2 requested shards would mean a 32 Ki-entry
        // victim scan per charge; the layout raises the count instead.
        let ledger = CostLedger::with_shards(1 << 16, 2);
        assert!(ledger.per_shard_capacity() <= aipow_shard::DEFAULT_MAX_SCAN);
        assert!(ledger.shard_count() >= (1 << 16) / aipow_shard::DEFAULT_MAX_SCAN);
        // An explicit tighter scan bound is honored too.
        let tight = CostLedger::with_layout(1 << 12, Some(1), 64);
        assert!(tight.per_shard_capacity() <= 64);
    }

    #[test]
    fn batch_charges_match_sequential_charges_exactly() {
        let single = CostLedger::with_shards(64, 8);
        let batched = CostLedger::with_shards(64, 8);
        let charges: Vec<(IpAddr, f64)> = (0..50u8)
            .flat_map(|i| [(ip(i % 10), i as f64), (ip(i % 10), 1.0)])
            .collect();
        for &(client, work) in &charges {
            single.charge(client, work);
        }
        batched.charge_batch(charges.clone());
        batched.charge_batch(Vec::new()); // no-op
        assert_eq!(batched.len(), single.len());
        assert_eq!(batched.grand_total(), single.grand_total());
        for i in 0..10u8 {
            assert_eq!(batched.total(ip(i)), single.total(ip(i)), "client {i}");
        }
    }

    #[test]
    fn batch_charges_evict_at_capacity_and_count_evictions() {
        let ledger = CostLedger::with_shards(2, 1);
        ledger.charge_batch(vec![(ip(1), 100.0), (ip(2), 1.0), (ip(3), 10.0)]);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.evictions(), 1);
        assert_eq!(ledger.total(ip(2)), 0.0, "cheapest account evicted");
        assert_eq!(ledger.total(ip(1)), 100.0);
        assert_eq!(ledger.global_eviction_folds(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn batch_negative_charge_panics_before_mutating() {
        CostLedger::new(4).charge_batch(vec![(ip(1), 1.0), (ip(2), -1.0)]);
    }

    #[test]
    fn existing_clients_never_evicted_by_their_own_charge() {
        let ledger = CostLedger::new(1);
        ledger.charge(ip(1), 1.0);
        ledger.charge(ip(1), 1.0);
        assert_eq!(ledger.total(ip(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_charge_panics() {
        CostLedger::new(2).charge(ip(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        CostLedger::new(0);
    }

    #[test]
    fn sharded_ledger_keeps_exact_totals_across_shards() {
        let ledger = CostLedger::with_shards(256, 8);
        assert_eq!(ledger.shard_count(), 8);
        for i in 0..100 {
            ledger.charge(ip(i), i as f64);
        }
        assert_eq!(ledger.len(), 100);
        assert_eq!(ledger.grand_total(), (0..100).map(f64::from).sum::<f64>());
        assert_eq!(ledger.top(1), vec![(ip(99), 99.0)]);
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        use std::sync::Arc;
        let ledger = Arc::new(CostLedger::new(64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        ledger.charge(ip(1), 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.total(ip(1)), 8_000.0);
    }
}
