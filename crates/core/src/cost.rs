//! Per-client cost accounting (paper property 1).
//!
//! “First, each client pays a cost for utilizing the system, and this cost
//! increases as the client's reputation score worsens.” The ledger tracks
//! the cumulative *expected work* (hash evaluations) each client has been
//! charged, which is the quantity the DDoS experiment (claim C5) reports.

use aipow_shard::ShardedMap;
use std::net::IpAddr;

/// Thread-safe per-IP cumulative work ledger, bounded in entries.
///
/// The ledger is sharded by IP hash: charges for different clients take
/// different locks, and a single client's account is only ever mutated
/// under its shard lock, so concurrent charges sum exactly.
///
/// When full, the entry with the smallest accumulated cost is evicted —
/// heavy hitters (the interesting clients) are retained. The eviction
/// scan visits shards one at a time; under concurrent insertion the
/// population may transiently exceed the capacity by at most the number
/// of racing threads.
///
/// ```
/// use aipow_core::CostLedger;
/// # use std::net::{IpAddr, Ipv4Addr};
/// let ledger = CostLedger::new(100);
/// let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
/// ledger.charge(ip, 32.0); // a 5-difficult puzzle: 2^5 expected hashes
/// ledger.charge(ip, 32.0);
/// assert_eq!(ledger.total(ip), 64.0);
/// ```
#[derive(Debug)]
pub struct CostLedger {
    costs: ShardedMap<IpAddr, f64>,
    capacity: usize,
}

impl CostLedger {
    /// Creates a ledger tracking at most `capacity` clients, with the
    /// machine-default shard count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, aipow_shard::default_shard_count())
    }

    /// Creates a ledger with an explicit shard count (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_shards(capacity: usize, shard_count: usize) -> Self {
        assert!(capacity > 0, "cost ledger capacity must be positive");
        CostLedger {
            costs: ShardedMap::new(shard_count),
            capacity,
        }
    }

    /// Number of shards the ledger is split over.
    pub fn shard_count(&self) -> usize {
        self.costs.shard_count()
    }

    /// Adds `expected_work` (hash evaluations) to `ip`'s account.
    ///
    /// # Panics
    ///
    /// Panics if `expected_work` is negative or NaN.
    pub fn charge(&self, ip: IpAddr, expected_work: f64) {
        assert!(
            expected_work.is_finite() && expected_work >= 0.0,
            "expected work must be finite and non-negative"
        );
        // A full ledger evicts the cheapest account (never `ip`'s own —
        // see `ShardedMap::update_or_insert_evicting`) to stay bounded.
        self.costs.update_or_insert_evicting(
            ip,
            self.capacity,
            |cost| *cost,
            || 0.0,
            |cost| *cost += expected_work,
        );
    }

    /// Cumulative expected work charged to `ip` (0.0 if unknown).
    pub fn total(&self, ip: IpAddr) -> f64 {
        self.costs.get_cloned(&ip).unwrap_or(0.0)
    }

    /// The `n` clients with the highest cumulative cost, descending.
    pub fn top(&self, n: usize) -> Vec<(IpAddr, f64)> {
        let mut entries: Vec<(IpAddr, f64)> =
            self.costs.fold(Vec::new(), |mut acc, k, v| {
                acc.push((*k, *v));
                acc
            });
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN costs"));
        entries.truncate(n);
        entries
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all tracked costs.
    pub fn grand_total(&self) -> f64 {
        self.costs.fold(0.0, |acc, _, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn charges_accumulate() {
        let ledger = CostLedger::new(8);
        ledger.charge(ip(1), 10.0);
        ledger.charge(ip(1), 5.0);
        ledger.charge(ip(2), 1.0);
        assert_eq!(ledger.total(ip(1)), 15.0);
        assert_eq!(ledger.total(ip(2)), 1.0);
        assert_eq!(ledger.total(ip(3)), 0.0);
        assert_eq!(ledger.grand_total(), 16.0);
    }

    #[test]
    fn top_orders_descending() {
        let ledger = CostLedger::new(8);
        ledger.charge(ip(1), 5.0);
        ledger.charge(ip(2), 50.0);
        ledger.charge(ip(3), 0.5);
        let top = ledger.top(2);
        assert_eq!(top, vec![(ip(2), 50.0), (ip(1), 5.0)]);
    }

    #[test]
    fn eviction_drops_cheapest() {
        let ledger = CostLedger::new(2);
        ledger.charge(ip(1), 100.0);
        ledger.charge(ip(2), 1.0);
        ledger.charge(ip(3), 10.0); // evicts ip(2)
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.total(ip(2)), 0.0);
        assert_eq!(ledger.total(ip(1)), 100.0);
        assert_eq!(ledger.total(ip(3)), 10.0);
    }

    #[test]
    fn existing_clients_never_evicted_by_their_own_charge() {
        let ledger = CostLedger::new(1);
        ledger.charge(ip(1), 1.0);
        ledger.charge(ip(1), 1.0);
        assert_eq!(ledger.total(ip(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_charge_panics() {
        CostLedger::new(2).charge(ip(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        CostLedger::new(0);
    }

    #[test]
    fn sharded_ledger_keeps_exact_totals_across_shards() {
        let ledger = CostLedger::with_shards(256, 8);
        assert_eq!(ledger.shard_count(), 8);
        for i in 0..100 {
            ledger.charge(ip(i), i as f64);
        }
        assert_eq!(ledger.len(), 100);
        assert_eq!(ledger.grand_total(), (0..100).map(f64::from).sum::<f64>());
        assert_eq!(ledger.top(1), vec![(ip(99), 99.0)]);
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        use std::sync::Arc;
        let ledger = Arc::new(CostLedger::new(64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        ledger.charge(ip(1), 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.total(ip(1)), 8_000.0);
    }
}
