//! Shared fixtures for the benchmark harness.
//!
//! Every bench target and the `reproduce` binary build their workloads
//! through these helpers so that benchmark inputs stay consistent across
//! experiments (same keys, same client IP, same dataset spec).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aipow_pow::{Challenge, Difficulty, Issuer, Verifier};
use aipow_reputation::synth::DatasetSpec;
use aipow_reputation::{dabr::DabrModel, Dataset};
use std::net::{IpAddr, Ipv4Addr};

/// The master key every benchmark issuer/verifier derives from.
pub const BENCH_MASTER_KEY: [u8; 32] = [0xB7; 32];

/// The client IP used in solver benchmarks.
pub fn bench_client_ip() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(203, 0, 113, 77))
}

/// An issuer over [`BENCH_MASTER_KEY`].
pub fn bench_issuer() -> Issuer {
    Issuer::new(&BENCH_MASTER_KEY)
}

/// A verifier over [`BENCH_MASTER_KEY`].
pub fn bench_verifier() -> Verifier {
    Verifier::new(&BENCH_MASTER_KEY)
}

/// Issues a challenge at the given difficulty for the bench client.
///
/// # Panics
///
/// Panics if `bits > 64`.
pub fn issued_challenge(bits: u8) -> Challenge {
    bench_issuer().issue(
        bench_client_ip(),
        Difficulty::new(bits).expect("difficulty within range"),
    )
}

/// The dataset + fitted DAbR model used by reputation benchmarks:
/// `(train, test, model)`.
pub fn fitted_dabr(seed: u64) -> (Dataset, Dataset, DabrModel) {
    let dataset = DatasetSpec::default().with_seed(seed).generate();
    let (train, test) = dataset.split(0.8, seed);
    let model = DabrModel::fit(&train, &Default::default());
    (train, test, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipow_pow::solver;

    #[test]
    fn fixtures_compose() {
        let c = issued_challenge(4);
        let report = solver::solve(&c, bench_client_ip(), &Default::default()).unwrap();
        assert!(bench_verifier()
            .verify(&report.solution, bench_client_ip())
            .is_ok());
    }

    #[test]
    fn dabr_fixture_is_fitted() {
        let (train, test, model) = fitted_dabr(1);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        assert_eq!(model.centroids().len(), 3);
    }
}
