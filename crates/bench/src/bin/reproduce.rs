//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p aipow-bench --bin reproduce -- [COMMAND]
//!
//! COMMANDS
//!   all            run everything (default)
//!   fig2           Figure 2: latency vs reputation score, Policies 1-3
//!   solve-scaling  claim C1: solve time vs difficulty
//!   reputation     claim C2: DAbR accuracy ≈ 80 % (+ baselines)
//!   ddos           claim C5: throttling under attack
//!   epsilon-sweep  ablation A2: Policy 3 ϵ sensitivity
//!   calibration    the Testbed2022 profile vs this machine
//! ```
//!
//! Artifacts are written under `experiments/` (override with the
//! `AIPOW_EXPERIMENTS_DIR` environment variable); EXPERIMENTS.md quotes
//! them.

use aipow_metrics::TrialSet;
use aipow_netsim::fig2::{run_paper_policies, Fig2Config};
use aipow_netsim::profile::SolverProfile;
use aipow_netsim::report;
use aipow_netsim::scenario::{self, AttackStrategy, DdosConfig};
use aipow_policy::{ErrorRangePolicy, LinearPolicy, Policy, PolicyContext};
use aipow_pow::solver::{self, measure_hash_rate, SolverOptions};
use aipow_pow::{Difficulty, Issuer};
use aipow_reputation::baseline::{BlocklistHeuristic, KnnScorer};
use aipow_reputation::dabr::DabrModel;
use aipow_reputation::eval::{evaluate, EvalReport};
use aipow_reputation::synth::DatasetSpec;
use aipow_reputation::ReputationScore;
use std::fs;
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    let dir = std::env::var("AIPOW_EXPERIMENTS_DIR").unwrap_or_else(|_| "experiments".into());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create experiments directory");
    path
}

fn write(name: &str, content: &str) {
    let path = out_dir().join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

fn main() {
    let command = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match command.as_str() {
        "all" => {
            calibration();
            fig2();
            solve_scaling();
            reputation();
            ddos();
            epsilon_sweep();
        }
        "fig2" => fig2(),
        "solve-scaling" => solve_scaling(),
        "reputation" => reputation(),
        "ddos" => ddos(),
        "epsilon-sweep" => epsilon_sweep(),
        "calibration" => calibration(),
        other => {
            eprintln!("unknown command `{other}`; see --help in the module docs");
            std::process::exit(2);
        }
    }
}

/// Measured native hash rate, reused across experiments.
fn native_profile() -> SolverProfile {
    let rate = measure_hash_rate(2_000_000);
    SolverProfile::native(rate)
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

fn calibration() {
    println!("== calibration: Testbed2022 profile vs this machine ==");
    let testbed = SolverProfile::testbed_2022();
    let native = native_profile();

    let mut md = String::from(
        "# Calibration\n\n\
         The paper's testbed is pinned by two anchors: 31 ms mean for a\n\
         1-difficult puzzle (§III.A) and ≈ 900 ms median for Policy 2 at\n\
         reputation 10 (Figure 2). Those imply ≈ 30 ms fixed overhead and\n\
         ≈ 26 kH/s effective solver rate.\n\n\
         | quantity | paper / calibrated | native (this machine) |\n|---|---|---|\n",
    );
    md.push_str(&format!(
        "| solver hash rate (H/s) | {:.0} | {:.0} |\n",
        testbed.hash_rate_hz, native.hash_rate_hz
    ));
    md.push_str(&format!(
        "| fixed overhead (ms) | {:.1} | {:.1} |\n",
        testbed.overhead_ms, native.overhead_ms
    ));
    md.push_str(&format!(
        "| 1-difficult mean latency (ms) | {:.1} (paper: 31) | {:.4} |\n",
        testbed.expected_latency_ms(1),
        native.expected_latency_ms(1)
    ));
    md.push_str(&format!(
        "| 15-difficult median latency (ms) | {:.0} (Figure 2: ≈ 900) | {:.3} |\n",
        testbed.median_latency_ms(15),
        native.median_latency_ms(15)
    ));
    println!("{md}");
    write("calibration.md", &md);
}

// ---------------------------------------------------------------------------
// F2 — Figure 2
// ---------------------------------------------------------------------------

fn fig2() {
    println!("== F2: Figure 2 — median latency vs reputation score ==");
    let calibrated = run_paper_policies(&Fig2Config::default());
    write("fig2_testbed2022.csv", &report::fig2_to_csv(&calibrated));

    let native = run_paper_policies(&Fig2Config {
        profile: native_profile(),
        ..Default::default()
    });
    write("fig2_native.csv", &report::fig2_to_csv(&native));

    let mut md = String::from("# Figure 2 (Testbed2022 calibration, median of 30 trials)\n\n");
    md.push_str(&report::fig2_to_markdown(&calibrated));
    md.push_str("\n## Shape checks\n\n| check | paper | measured |\n|---|---|---|\n");
    md.push_str(&format!(
        "| Policy 1 at R=0 (ms) | ≈ 31 | {:.1} |\n",
        calibrated.median_ms("policy1", 0).unwrap()
    ));
    md.push_str(&format!(
        "| Policy 2 at R=10 (ms) | ≈ 900 | {:.0} |\n",
        calibrated.median_ms("policy2", 10).unwrap()
    ));
    md.push_str(&format!(
        "| Policy 1 growth ×(R10/R0) | small | {:.1}× |\n",
        calibrated.growth_factor("policy1").unwrap()
    ));
    md.push_str(&format!(
        "| Policy 2 growth ×(R10/R0) | large | {:.1}× |\n",
        calibrated.growth_factor("policy2").unwrap()
    ));
    md.push_str(&format!(
        "| Policy 3 rate between 1 and 2 (mean scale) | yes | p1 {:.1} < p3 {:.1} < p2 {:.1} ms/band |\n",
        calibrated.mean_slope_ms_per_band("policy1").unwrap(),
        calibrated.mean_slope_ms_per_band("policy3").unwrap(),
        calibrated.mean_slope_ms_per_band("policy2").unwrap(),
    ));
    md.push_str(&format!(
        "| Policy 3 median tracks Policy 1 (formula-faithful) | — | p1 {:.1} vs p3 {:.1} ms/band |\n",
        calibrated.slope_ms_per_band("policy1").unwrap(),
        calibrated.slope_ms_per_band("policy3").unwrap(),
    ));
    md.push_str("\n# Figure 2 (native hash rate, same shape, ms scale shrinks)\n\n");
    md.push_str(&report::fig2_to_markdown(&native));
    println!("{md}");
    write("fig2.md", &md);
}

// ---------------------------------------------------------------------------
// C1 — solve time vs difficulty
// ---------------------------------------------------------------------------

fn solve_scaling() {
    println!("== C1: solve time vs difficulty (native measurements) ==");
    let issuer = Issuer::new(&[0xC1; 32]);
    let ip = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 77));
    let testbed = SolverProfile::testbed_2022();

    let mut csv = String::from(
        "difficulty_bits,native_median_ms,native_mean_ms,native_mean_attempts,\
         calibrated_mean_ms,paper_anchor_ms\n",
    );
    let mut md = String::from(
        "# Solve time vs difficulty (30 trials per point)\n\n\
         | d | native median (ms) | native mean (ms) | mean attempts | calibrated mean (ms) | paper |\n\
         |---|---|---|---|---|---|\n",
    );

    for bits in [1u8, 2, 4, 6, 8, 10, 12, 14, 15, 16, 18] {
        let mut times = TrialSet::new();
        let mut attempts_total = 0u64;
        for _ in 0..30 {
            let challenge = issuer.issue(ip, Difficulty::new(bits).unwrap());
            let report = solver::solve(&challenge, ip, &SolverOptions::default())
                .expect("solvable difficulty");
            times.record(report.elapsed.as_secs_f64() * 1_000.0);
            attempts_total += report.attempts;
        }
        let median = times.median().unwrap();
        let mean = times.mean().unwrap();
        let mean_attempts = attempts_total as f64 / 30.0;
        let calibrated = testbed.expected_latency_ms(bits);
        let paper = if bits == 1 { "31 ms" } else { "—" };
        csv.push_str(&format!(
            "{bits},{median:.4},{mean:.4},{mean_attempts:.0},{calibrated:.1},{}\n",
            if bits == 1 { "31" } else { "" }
        ));
        md.push_str(&format!(
            "| {bits} | {median:.4} | {mean:.4} | {mean_attempts:.0} | {calibrated:.1} | {paper} |\n"
        ));
    }
    println!("{md}");
    write("solve_scaling.csv", &csv);
    write("solve_scaling.md", &md);
}

// ---------------------------------------------------------------------------
// C2 — DAbR accuracy
// ---------------------------------------------------------------------------

fn reputation() {
    println!("== C2: reputation model quality (paper: DAbR ≈ 80 % accuracy) ==");
    let seeds = [11u64, 23, 37, 53, 71];

    let mut csv = String::from("model,seed,accuracy,precision,recall,f1,score_mae_epsilon\n");
    let mut rows: Vec<(String, Vec<EvalReport>)> = Vec::new();

    for model_name in ["dabr", "knn", "heuristic"] {
        let mut reports = Vec::new();
        for &seed in &seeds {
            let dataset = DatasetSpec::default().with_seed(seed).generate();
            let (train, test) = dataset.split(0.8, seed);
            let report = match model_name {
                "dabr" => evaluate(&DabrModel::fit(&train, &Default::default()), &test),
                "knn" => evaluate(&KnnScorer::fit(&train, 5), &test),
                _ => evaluate(&BlocklistHeuristic, &test),
            };
            csv.push_str(&format!(
                "{model_name},{seed},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                report.accuracy, report.precision, report.recall, report.f1, report.score_mae
            ));
            reports.push(report);
        }
        rows.push((model_name.to_string(), reports));
    }

    let mut md = String::from(
        "# Reputation model quality (5 seeds, 4000 train / 1000 test)\n\n\
         | model | accuracy (mean ± sd) | precision | recall | f1 | ϵ (score MAE) | paper |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for (name, reports) in &rows {
        let acc: Vec<f64> = reports.iter().map(|r| r.accuracy).collect();
        let mean = acc.iter().sum::<f64>() / acc.len() as f64;
        let sd = (acc.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>()
            / (acc.len() - 1) as f64)
            .sqrt();
        let avg =
            |f: fn(&EvalReport) -> f64| reports.iter().map(f).sum::<f64>() / reports.len() as f64;
        let paper = if name == "dabr" { "≈ 0.80" } else { "—" };
        md.push_str(&format!(
            "| {name} | {mean:.3} ± {sd:.3} | {:.3} | {:.3} | {:.3} | {:.2} | {paper} |\n",
            avg(|r| r.precision),
            avg(|r| r.recall),
            avg(|r| r.f1),
            avg(|r| r.score_mae),
        ));
    }
    println!("{md}");
    write("reputation.csv", &csv);
    write("reputation.md", &md);
}

// ---------------------------------------------------------------------------
// C5 — DDoS throttling
// ---------------------------------------------------------------------------

fn ddos() {
    println!("== C5: throttling untrustworthy traffic under attack ==");
    let base = DdosConfig::default();
    let policy2 = LinearPolicy::policy2();
    let policy1 = LinearPolicy::policy1();
    let policy3 = ErrorRangePolicy::new(2.0, base.seed);

    let outcomes = vec![
        (
            "undefended".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    pow_enabled: false,
                    ..base
                },
            ),
        ),
        ("policy1".to_string(), scenario::run(&policy1, &base)),
        ("policy2".to_string(), scenario::run(&policy2, &base)),
        ("policy3_eps2".to_string(), scenario::run(&policy3, &base)),
        (
            "policy2_flood_bots".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    strategy: AttackStrategy::Flood,
                    ..base
                },
            ),
        ),
        (
            "policy2_bots_64x_hash".to_string(),
            scenario::run(
                &policy2,
                &DdosConfig {
                    bot_hash_multiplier: 64.0,
                    ..base
                },
            ),
        ),
        (
            "adaptive_bots_64x_hash".to_string(),
            scenario::run(
                &aipow_policy::LoadAdaptivePolicy::new(LinearPolicy::policy2(), 3, 4),
                &DdosConfig {
                    bot_hash_multiplier: 64.0,
                    declare_attack: true,
                    ..base
                },
            ),
        ),
    ];

    let mut md = String::from(
        "# DDoS throttling (50 benign @0.5 rps, 50 bots @20 rps, 200 rps capacity, 60 s)\n\n",
    );
    md.push_str(&report::ddos_to_markdown(&outcomes));
    println!("{md}");
    write("ddos.csv", &report::ddos_to_csv(&outcomes));
    write("ddos.md", &md);
}

// ---------------------------------------------------------------------------
// A2 — Policy 3 ϵ sensitivity
// ---------------------------------------------------------------------------

fn epsilon_sweep() {
    println!("== A2: Policy 3 ϵ sensitivity ==");
    let profile = SolverProfile::testbed_2022();
    let ctx = PolicyContext::default();

    let mut csv = String::from("epsilon,reputation,median_ms,iqr_ms,min_d,max_d\n");
    let mut md = String::from(
        "# Policy 3 ϵ sweep (median ms / difficulty interval at each band)\n\n\
         | ϵ | R=0 | R=5 | R=10 |\n|---|---|---|---|\n",
    );

    for eps in [0.0f64, 0.5, 1.0, 2.0, 3.0] {
        let policy = ErrorRangePolicy::new(eps, 99);
        let mut cells = Vec::new();
        for band in [0u8, 5, 10] {
            let score = ReputationScore::new(band as f64).unwrap();
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                1_000 + (eps * 10.0) as u64 + band as u64,
            );
            let mut trials = TrialSet::new();
            for _ in 0..200 {
                let d = policy.difficulty_for(score, &ctx);
                trials.record(profile.sample_latency_ms(&mut rng, d.bits()));
            }
            let (lo, hi) = policy.interval(score);
            let median = trials.median().unwrap();
            let iqr = trials.iqr().unwrap();
            csv.push_str(&format!("{eps},{band},{median:.1},{iqr:.1},{lo},{hi}\n"));
            cells.push(format!("{median:.0} ms (d∈[{lo},{hi}])"));
        }
        md.push_str(&format!(
            "| {eps} | {} | {} | {} |\n",
            cells[0], cells[1], cells[2]
        ));
    }
    println!("{md}");
    write("epsilon_sweep.csv", &csv);
    write("epsilon_sweep.md", &md);
}
