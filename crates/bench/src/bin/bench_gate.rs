//! The CI performance-regression gate.
//!
//! Runs the hot-path throughput benches (`contended_admission`,
//! `eviction_flood`, `admission_batch`, `verify_kernel`, and
//! `connection_scaling`) with
//! `AIPOW_BENCH_JSON` pointed at a scratch file, then compares every
//! measured median throughput against the committed baselines
//! (`BENCH_contended.json`, `BENCH_flood.json`, `BENCH_batch.json`,
//! `BENCH_verify.json`, `BENCH_net.json` at the repo
//! root). A benchmark whose `per_sec` falls more than the tolerance
//! below its baseline fails the gate (exit code 1), so a throughput
//! regression on the admission or eviction hot path cannot merge
//! silently. Groups whose name ends in `_global` measure the retired
//! global-scan protocol: they ride in the baselines as the recorded
//! contrast but are reported only, never gated.
//!
//! Knobs (environment):
//!
//! - `AIPOW_BENCH_TOLERANCE` — allowed fractional regression, default
//!   `0.25` (fail under 75 % of baseline). CI sets this looser than the
//!   default because its runners differ from the machine that recorded
//!   the baselines.
//! - `AIPOW_GATE_MIN_RATIO` — floor on the within-run bounded/global
//!   eviction throughput ratio, default `10`. Unlike the absolute
//!   comparison this is machine-independent: the recorded gap is
//!   200-340x and a reintroduced global scan collapses it to ~1 on any
//!   host, so this check stays meaningful however the runner hardware
//!   drifts.
//! - `AIPOW_GATE_MIN_BATCH_SPEEDUP` — floor on the within-run
//!   batch=32-over-sequential admission throughput ratio at 4 threads,
//!   default `1.5`. Machine-independent like the eviction ratio: the
//!   recorded amortization gap is ~3x, and losing it (a per-request
//!   fixed cost reintroduced inside the batch loop) collapses the ratio
//!   toward 1 on any host.
//! - `AIPOW_GATE_MAX_TRACE_OVERHEAD` — ceiling on the within-run
//!   fractional throughput cost of running `admission_batch` at
//!   batch=32 / 4 threads with a tracer attached at default sampling,
//!   default `0.05` (traced must stay within 5 % of untraced).
//!   Machine-independent like the other ratios: the steady-state cost
//!   of 1-in-64 sampling is one predictable branch per context, and a
//!   blocking lock or allocation smuggled onto the emission path shows
//!   up as a collapse of this ratio on any host.
//! - `AIPOW_GATE_MIN_WIDE_SPEEDUP` — floor on the within-run
//!   wide-over-scalar `verify_batch` throughput ratio at batch=32,
//!   default `2`. Machine-independent: the multi-buffer kernel's
//!   recorded gap is 3-5x with vector units engaged, and a kernel that
//!   stops vectorizing (or a verifier that stops batching MAC/work
//!   digests through it) collapses the ratio toward 1 on any host.
//! - `AIPOW_GATE_MAX_MEMHARD_VERIFY_RATIO` — ceiling on the within-run
//!   SHA-256-over-memory-hard scalar `verify_batch` throughput ratio at
//!   batch=32, default `2`. The memory-hard puzzle only works as a
//!   routing target if *verification* stays cheap: the router sends
//!   suspected flooders there precisely because the server pays nearly
//!   nothing extra to check their stamps. A memory-hard verify that
//!   drifts past 2x the SHA-256 cost would let a flood tax the verifier
//!   through the very backend meant to tax the flooder.
//! - `AIPOW_GATE_MIN_MEMHARD_SOLVE_RATIO` — floor on the within-run
//!   memory-hard-over-SHA-256 per-attempt *solve* cost ratio, default
//!   `10`. This is the other half of the asymmetry: one memory-hard
//!   attempt (arena fill + mix walk) must cost at least 10x a SHA-256
//!   attempt, or routing a flooder to the memory-hard backend stops
//!   being punitive. The recorded gap is orders of magnitude; a
//!   shortcut that skips the arena work collapses it on any host.
//! - `AIPOW_GATE_MAX_CONN_SLOWDOWN` — ceiling on the within-run ratio
//!   of request throughput at 1k resident connections over 50k resident
//!   connections, default `2`. Machine-independent like the other
//!   ratios: the reactor keys per-connection state through a slab and
//!   never scans the connection table on the exchange path, so the
//!   honest ratio is ~1; an O(connections) walk reintroduced on the hot
//!   path (table scan, eager wheel sweep, per-event iteration over all
//!   peers) collapses 50k-resident throughput on any host.
//! - `AIPOW_BENCH_TARGET_CPU` — the `-C target-cpu` value appended to
//!   `RUSTFLAGS` for the bench run, default `native`. The portable wide
//!   kernel only reaches full width when the compiler may use the host's
//!   vector ISA (baseline x86-64 SSE2 caps it around 1.5x). Set to the
//!   empty string to benchmark at the default target.
//! - `AIPOW_BENCH_BASELINE_DIR` — where the `BENCH_*.json` baselines
//!   live; defaults to the workspace root.
//!
//! Usage:
//!
//! - `cargo run --release -p aipow-bench --bin bench_gate` — run + gate;
//! - `... --bin bench_gate -- --update` — run and rewrite the committed
//!   baselines from this machine's measurements (do this when a change
//!   *intentionally* shifts throughput, and commit the result);
//! - `... --bin bench_gate -- --check-only <json>` — skip running the
//!   benches and gate an existing JSON-lines file.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One benchmark's identity → median throughput (elements/sec).
type Results = BTreeMap<String, f64>;

/// Which baseline file each bench group belongs to.
fn baseline_file_for(group: &str) -> &'static str {
    if group.starts_with("eviction_flood") {
        "BENCH_flood.json"
    } else if group.starts_with("admission_batch") {
        "BENCH_batch.json"
    } else if group.starts_with("verify_kernel") {
        "BENCH_verify.json"
    } else if group.starts_with("connection_scaling") {
        "BENCH_net.json"
    } else {
        "BENCH_contended.json"
    }
}

/// Whether a benchmark guards a production hot path. The
/// `*_global` groups measure the *retired* global-scan protocol — kept
/// in the baselines as the contrast the migration is judged against,
/// but not gated: they are pathological lock contention by design and
/// their medians flap far beyond any useful tolerance.
fn is_gated(key: &str) -> bool {
    !key.split('/')
        .next()
        .unwrap_or_default()
        .ends_with("_global")
}

/// Extracts `"field":"value"` (string) from one JSON-lines record. The
/// records are written by the vendored criterion's single-line writer,
/// so field-scanning is exact for the values it can produce.
fn json_str_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"field":number` from one JSON-lines record.
fn json_num_field(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a JSON-lines bench file into `group/id → per_sec`. Later
/// lines win (the writer appends, so reruns supersede).
fn parse_bench_json(content: &str) -> Results {
    let mut out = Results::new();
    for line in content.lines() {
        let (Some(group), Some(id)) = (json_str_field(line, "group"), json_str_field(line, "id"))
        else {
            continue;
        };
        let Some(per_sec) = json_num_field(line, "per_sec") else {
            continue;
        };
        out.insert(format!("{group}/{id}"), per_sec);
    }
    out
}

fn read_results(path: &Path) -> Results {
    match std::fs::read_to_string(path) {
        Ok(content) => parse_bench_json(&content),
        Err(_) => Results::new(),
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("AIPOW_BENCH_BASELINE_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Runs the gated benches with `AIPOW_BENCH_JSON` pointed at `out`.
///
/// The bench subprocess gets `-C target-cpu=<AIPOW_BENCH_TARGET_CPU>`
/// (default `native`) appended to `RUSTFLAGS`: the wide-kernel gate
/// measures what the verifier can do with the host's vector ISA, not
/// the portable baseline. Note this recompiles the workspace under a
/// distinct codegen fingerprint from a plain `cargo bench`.
fn run_benches(out: &Path) {
    let _ = std::fs::remove_file(out);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.args([
        "bench",
        "-p",
        "aipow-bench",
        "--bench",
        "contended_admission",
        "--bench",
        "eviction_flood",
        "--bench",
        "admission_batch",
        "--bench",
        "verify_kernel",
        "--bench",
        "connection_scaling",
    ])
    .env("AIPOW_BENCH_JSON", out);
    let cpu = std::env::var("AIPOW_BENCH_TARGET_CPU").unwrap_or_else(|_| "native".to_string());
    if !cpu.is_empty() {
        let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str(&format!("-C target-cpu={cpu}"));
        cmd.env("RUSTFLAGS", rustflags);
    }
    let status = cmd.status().expect("failed to spawn cargo bench");
    assert!(status.success(), "cargo bench failed");
}

fn tolerance() -> f64 {
    std::env::var("AIPOW_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| t.is_finite() && (0.0..1.0).contains(t))
        .unwrap_or(0.25)
}

fn min_ratio() -> f64 {
    std::env::var("AIPOW_GATE_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(10.0)
}

fn min_batch_speedup() -> f64 {
    std::env::var("AIPOW_GATE_MIN_BATCH_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(1.5)
}

fn max_trace_overhead() -> f64 {
    std::env::var("AIPOW_GATE_MAX_TRACE_OVERHEAD")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && (0.0..1.0).contains(r))
        .unwrap_or(0.05)
}

fn min_wide_speedup() -> f64 {
    std::env::var("AIPOW_GATE_MIN_WIDE_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(2.0)
}

fn max_memhard_verify_ratio() -> f64 {
    std::env::var("AIPOW_GATE_MAX_MEMHARD_VERIFY_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(2.0)
}

fn min_memhard_solve_ratio() -> f64 {
    std::env::var("AIPOW_GATE_MIN_MEMHARD_SOLVE_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(10.0)
}

fn max_conn_slowdown() -> f64 {
    std::env::var("AIPOW_GATE_MAX_CONN_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r >= 1.0)
        .unwrap_or(2.0)
}

/// The connection-scaling acceptance bar, checked within this run like
/// the batch gate: request throughput with 50k connections resident
/// must hold at least `1 / max_slowdown` of the 1k-resident
/// throughput. Per-connection reactor state is slab-keyed and the
/// exchange path never walks the connection table, so the honest ratio
/// is ~1; an O(connections) scan reintroduced on the hot path
/// collapses it on any host.
fn gate_conn_slowdown(measured: &Results, max_slowdown: f64) -> Vec<String> {
    let small_key = "connection_scaling_request/conns/1000";
    let large_key = "connection_scaling_request/conns/50000";
    match (measured.get(small_key), measured.get(large_key)) {
        (Some(&small), Some(&large)) => {
            let slowdown = if large > 0.0 {
                small / large
            } else {
                f64::INFINITY
            };
            let ok = slowdown <= max_slowdown;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.2}  {}",
                "request slowdown, 1k -> 50k resident conns",
                small,
                large,
                slowdown,
                if ok { "ok" } else { "REGRESSION" }
            );
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "{large_key}: request throughput {slowdown:.2}x slower with 50k resident \
                     connections than with 1k (ceiling {max_slowdown:.2}x) — something on \
                     the exchange path scales with the connection population"
                )]
            }
        }
        (None, None) => Vec::new(), // pre-reactor JSON via --check-only
        _ => vec![format!(
            "connection-scaling gate needs both {small_key} and {large_key}; \
             only one was measured"
        )],
    }
}

/// The batching acceptance bar, checked within this run (so it is
/// machine-independent like the eviction ratio): `handle_request_batch`
/// at batch=32 must beat the sequential path by at least
/// `min_speedup` at 4 threads. The recorded gap is ~3x; losing the
/// amortization (a reintroduced per-request clock read, policy lock, or
/// audit lock inside the batch loop) collapses it toward 1 on any host.
fn gate_batch_speedup(measured: &Results, min_speedup: f64) -> Vec<String> {
    let seq_key = "admission_batch_seq/threads/4";
    let batch_key = "admission_batch/batch32/threads/4";
    match (measured.get(seq_key), measured.get(batch_key)) {
        (Some(&seq), Some(&batch)) => {
            let speedup = if seq > 0.0 {
                batch / seq
            } else {
                f64::INFINITY
            };
            let ok = speedup >= min_speedup;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.2}  {}",
                "batch32/sequential speedup (4 threads)",
                seq,
                batch,
                speedup,
                if ok { "ok" } else { "REGRESSION" }
            );
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "{batch_key}: only {speedup:.2}x the sequential path within this run \
                     (floor {min_speedup:.2}x) — the batch amortization has regressed"
                )]
            }
        }
        (None, None) => Vec::new(), // pre-batching JSON via --check-only
        _ => vec![format!(
            "batch speedup gate needs both {seq_key} and {batch_key}; only one was measured"
        )],
    }
}

/// The tracing acceptance bar, checked within this run like the batch
/// gate: `admission_batch_traced` (tracer attached, default 1-in-64
/// sampling) at batch=32 / 4 threads must hold at least
/// `1 - max_overhead` of the untraced throughput. The untraced side is
/// the `batch32_untraced` twin measured immediately before the traced
/// cell in the same group — ratioing adjacent cells keeps clock and
/// thermal drift across the long four-binary bench run out of a 5 %
/// bar. Observability that taxes the admission path more than a few
/// percent is not "always-on" — it gets turned off, and then nobody
/// has data when the flood arrives.
fn gate_trace_overhead(measured: &Results, max_overhead: f64) -> Vec<String> {
    let untraced_key = "admission_batch_traced/batch32_untraced/threads/4";
    let traced_key = "admission_batch_traced/batch32/threads/4";
    match (measured.get(untraced_key), measured.get(traced_key)) {
        (Some(&untraced), Some(&traced)) => {
            let retained = if untraced > 0.0 {
                traced / untraced
            } else {
                f64::INFINITY
            };
            let ok = retained >= 1.0 - max_overhead;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.3}  {}",
                "traced/untraced admission (batch 32, 4T)",
                untraced,
                traced,
                retained,
                if ok { "ok" } else { "REGRESSION" }
            );
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "{traced_key}: tracing retains only {:.1}% of untraced throughput within \
                     this run (floor {:.1}%) — the sampled-off emission path has grown a cost",
                    retained * 100.0,
                    (1.0 - max_overhead) * 100.0
                )]
            }
        }
        (None, None) => Vec::new(), // pre-tracing JSON via --check-only
        _ => vec![format!(
            "trace overhead gate needs both {untraced_key} and {traced_key}; \
             only one was measured"
        )],
    }
}

/// The wide-kernel acceptance bar, checked within this run like the
/// batch gate: `verify_batch` at batch=32 with `verify_lanes=8` must
/// beat the scalar (`verify_lanes=1`) path by at least `min_speedup`.
/// With the vector ISA engaged (see `AIPOW_BENCH_TARGET_CPU`) the
/// recorded gap is ~3x end-to-end; a kernel that silently stops
/// vectorizing, or a verifier that stops routing MAC/work digests
/// through the multi-buffer path, collapses it toward 1 on any host.
fn gate_wide_speedup(measured: &Results, min_speedup: f64) -> Vec<String> {
    let scalar_key = "verify_kernel_batch/scalar/32";
    let wide_key = "verify_kernel_batch/wide/32";
    match (measured.get(scalar_key), measured.get(wide_key)) {
        (Some(&scalar), Some(&wide)) => {
            let speedup = if scalar > 0.0 {
                wide / scalar
            } else {
                f64::INFINITY
            };
            let ok = speedup >= min_speedup;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.2}  {}",
                "wide/scalar verify speedup (batch 32)",
                scalar,
                wide,
                speedup,
                if ok { "ok" } else { "REGRESSION" }
            );
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "{wide_key}: only {speedup:.2}x the scalar verify path within this run \
                     (floor {min_speedup:.2}x) — the multi-lane kernel has regressed"
                )]
            }
        }
        (None, None) => Vec::new(), // pre-wide-kernel JSON via --check-only
        _ => vec![format!(
            "wide speedup gate needs both {scalar_key} and {wide_key}; only one was measured"
        )],
    }
}

/// The backend-asymmetry acceptance bar, checked within this run like
/// the wide-kernel gate (`verify_kernel_backend` group):
///
/// - verify side: SHA-256 *scalar* batch-32 verify throughput may
///   exceed the memory-hard backend's (measured on its production
///   wide-lane path, where independent walks interleave through the
///   multi-buffer kernel) by at most `max_verify_ratio` — verification
///   must stay cheap on the very backend the router sends floods to;
/// - solve side: SHA-256 per-attempt solve throughput (cursor hoisted,
///   marginal cost per nonce probe) must exceed the memory-hard
///   backend's by at least `min_solve_ratio` — the serialized
///   data-dependent walk is the cost the router imposes on suspicious
///   clients, and a shortcut that skips it collapses this ratio on any
///   host.
fn gate_backend_asymmetry(
    measured: &Results,
    max_verify_ratio: f64,
    min_solve_ratio: f64,
) -> Vec<String> {
    let sha_verify_key = "verify_kernel_backend/verify/sha256/32";
    let mh_verify_key = "verify_kernel_backend/verify/memhard/32";
    let sha_solve_key = "verify_kernel_backend/solve/sha256/64";
    let mh_solve_key = "verify_kernel_backend/solve/memhard/64";
    let mut failures = Vec::new();

    match (measured.get(sha_verify_key), measured.get(mh_verify_key)) {
        (Some(&sha), Some(&mh)) => {
            // Cost ratio: how many times more expensive one memory-hard
            // verification is than one SHA-256 verification.
            let ratio = if mh > 0.0 { sha / mh } else { f64::INFINITY };
            let ok = ratio <= max_verify_ratio;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.2}  {}",
                "memhard/sha256 verify cost (batch 32)",
                sha,
                mh,
                ratio,
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!(
                    "{mh_verify_key}: memory-hard verify costs {ratio:.2}x the SHA-256 \
                     scalar verify within this run (ceiling {max_verify_ratio:.2}x) — \
                     the cheap-verify half of the backend asymmetry has regressed"
                ));
            }
        }
        (None, None) => {} // pre-backend-seam JSON via --check-only
        _ => failures.push(format!(
            "backend verify gate needs both {sha_verify_key} and {mh_verify_key}; \
             only one was measured"
        )),
    }

    match (measured.get(sha_solve_key), measured.get(mh_solve_key)) {
        (Some(&sha), Some(&mh)) => {
            let ratio = if mh > 0.0 { sha / mh } else { f64::INFINITY };
            let ok = ratio >= min_solve_ratio;
            println!(
                "{:<48} {:>14.1} {:>14.1} {:>8.1}  {}",
                "memhard/sha256 solve cost (per attempt)",
                sha,
                mh,
                ratio,
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                failures.push(format!(
                    "{mh_solve_key}: a memory-hard attempt costs only {ratio:.1}x a \
                     SHA-256 attempt within this run (floor {min_solve_ratio:.0}x) — \
                     the expensive-solve half of the backend asymmetry has regressed"
                ));
            }
        }
        (None, None) => {} // pre-backend-seam JSON via --check-only
        _ => failures.push(format!(
            "backend solve gate needs both {sha_solve_key} and {mh_solve_key}; \
             only one was measured"
        )),
    }

    failures
}

/// The machine-independent guard: within *this* run, the bounded
/// eviction path must beat the retired global-scan baseline by at least
/// `min_ratio` on every thread count measured for both. Absolute
/// throughput varies with runner hardware, but this ratio does not — a
/// reintroduced global scan collapses it to ~1 regardless of the host
/// (the recorded gap is 200-340x; the default floor of 10x leaves room
/// for any amount of scheduler noise).
fn gate_migration_ratio(measured: &Results, min_ratio: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &global) in measured {
        let Some(rest) = key.strip_prefix("eviction_flood_global/") else {
            continue;
        };
        let Some(&bounded) = measured.get(&format!("eviction_flood/{rest}")) else {
            continue;
        };
        let ratio = if global > 0.0 {
            bounded / global
        } else {
            f64::INFINITY
        };
        let ok = ratio >= min_ratio;
        println!(
            "{:<48} {:>14.1} {:>14.1} {:>8.1}  {}",
            format!("bounded/global ratio ({rest})"),
            global,
            bounded,
            ratio,
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            failures.push(format!(
                "eviction_flood/{rest}: bounded path only {ratio:.1}x the global-scan \
                 baseline within this run (floor {min_ratio:.0}x) — the bounded \
                 eviction migration has regressed"
            ));
        }
    }
    failures
}

/// Gates `measured` against `baseline`. Returns the failure messages.
fn gate(baseline: &Results, measured: &Results, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    println!(
        "{:<48} {:>14} {:>14} {:>8}  verdict",
        "benchmark", "baseline/s", "measured/s", "ratio"
    );
    for (key, &base) in baseline {
        match measured.get(key) {
            Some(&now) => {
                let ratio = if base > 0.0 { now / base } else { 1.0 };
                let gated = is_gated(key);
                let ok = !gated || ratio >= 1.0 - tolerance;
                println!(
                    "{key:<48} {base:>14.1} {now:>14.1} {ratio:>8.3}  {}",
                    if !gated {
                        "info (not gated)"
                    } else if ok {
                        "ok"
                    } else {
                        "REGRESSION"
                    }
                );
                if !ok {
                    failures.push(format!(
                        "{key}: {now:.1}/s is {:.1}% of baseline {base:.1}/s \
                         (tolerance {:.0}%, pass floor {:.0}%)",
                        ratio * 100.0,
                        tolerance * 100.0,
                        (1.0 - tolerance) * 100.0
                    ));
                }
            }
            None if is_gated(key) => {
                failures.push(format!("{key}: present in baseline but not measured"))
            }
            None => {}
        }
    }
    for key in measured.keys() {
        if !baseline.contains_key(key) {
            println!("{key:<48} {:>14} (new, no baseline — run --update)", "-");
        }
    }
    failures
}

/// Rewrites the committed baselines from `measured`, splitting groups
/// across the `BENCH_*.json` files they belong to.
fn update_baselines(root: &Path, raw_json: &str) {
    let mut per_file: BTreeMap<&'static str, String> = BTreeMap::new();
    let mut seen: BTreeMap<String, String> = BTreeMap::new();
    for line in raw_json.lines() {
        if let Some(group) = json_str_field(line, "group") {
            let id = json_str_field(line, "id").unwrap_or_default();
            // Last write wins per benchmark, preserving one line each.
            seen.insert(format!("{group}/{id}"), format!("{line}\n"));
        }
    }
    for (key, line) in &seen {
        let group = key.split('/').next().unwrap_or_default();
        per_file
            .entry(baseline_file_for(group))
            .or_default()
            .push_str(line);
    }
    for (file, content) in per_file {
        let path = root.join(file);
        std::fs::write(&path, content).expect("write baseline");
        println!("updated {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    let scratch: PathBuf;
    let raw: String;

    if let Some(pos) = args.iter().position(|a| a == "--check-only") {
        scratch = PathBuf::from(
            args.get(pos + 1)
                .expect("--check-only needs a JSON-lines path"),
        );
        raw = std::fs::read_to_string(&scratch).expect("read --check-only file");
    } else {
        scratch = std::env::temp_dir().join("aipow_bench_gate.json");
        run_benches(&scratch);
        raw = std::fs::read_to_string(&scratch).unwrap_or_default();
    }

    let measured = parse_bench_json(&raw);
    assert!(
        !measured.is_empty(),
        "no benchmark results parsed from {}",
        scratch.display()
    );

    if args.iter().any(|a| a == "--update") {
        update_baselines(&root, &raw);
        return;
    }

    let mut baseline = Results::new();
    for file in [
        "BENCH_contended.json",
        "BENCH_flood.json",
        "BENCH_batch.json",
        "BENCH_verify.json",
        "BENCH_net.json",
    ] {
        baseline.extend(read_results(&root.join(file)));
    }
    assert!(
        !baseline.is_empty(),
        "no committed baselines found under {} — run with --update first",
        root.display()
    );

    let tol = tolerance();
    let mut failures = gate(&baseline, &measured, tol);
    failures.extend(gate_migration_ratio(&measured, min_ratio()));
    failures.extend(gate_batch_speedup(&measured, min_batch_speedup()));
    failures.extend(gate_trace_overhead(&measured, max_trace_overhead()));
    failures.extend(gate_wide_speedup(&measured, min_wide_speedup()));
    failures.extend(gate_conn_slowdown(&measured, max_conn_slowdown()));
    failures.extend(gate_backend_asymmetry(
        &measured,
        max_memhard_verify_ratio(),
        min_memhard_solve_ratio(),
    ));
    if failures.is_empty() {
        println!(
            "perf gate: {} benchmarks within {:.0}% of baseline",
            baseline.keys().filter(|k| is_gated(k)).count(),
            tol * 100.0
        );
    } else {
        eprintln!("perf gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
