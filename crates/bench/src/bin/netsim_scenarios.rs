//! The netsim scenario suite, runnable as one CI step.
//!
//! Each scenario family in `aipow-netsim` carries assertions about the
//! system's behavior — Policy 2's escalation shape (`fig2`), sharded
//! admission scaling (`contended`), the online reputation loop
//! (`behavior`), and flat admission cost under an address-cycling flood
//! (`flood`). `cargo test` exercises them at unit scale; this binary
//! runs each suite at scenario scale and asserts its documented
//! invariants, so the claims cannot rot outside the test harness. Any
//! violated invariant panics, failing the CI step.
//!
//! Run with `cargo run --release -p aipow-bench --bin netsim_scenarios`.
//! Pass `--only <scenario>` (repeatable; one of `fig2`, `contended`,
//! `behavior`, `flood`, `burst`, `lanes`, `backends`, `connflood`, `tracefire`) to run a single
//! suite — CI shards and local reproductions can target the suite under
//! investigation without paying for the rest. `--list` prints the suite
//! names and exits; an unknown `--only` name is echoed on stderr with a
//! non-zero exit instead of a panic.

use aipow_netsim::backends::{backends_to_markdown, run_backends, BackendsConfig};
use aipow_netsim::behavior::{run_behavior_shift, run_redemption, BehaviorConfig};
use aipow_netsim::burst::{burst_to_markdown, run_burst, BurstConfig};
use aipow_netsim::connflood::{connflood_to_markdown, run_connflood, ConnfloodConfig};
use aipow_netsim::contended::{run_contended, ContendedConfig};
use aipow_netsim::fig2::{run_paper_policies, Fig2Config};
use aipow_netsim::flood::{flood_to_markdown, run_flood_pair};
use aipow_netsim::lanes::{lanes_to_markdown, run_lanes, LanesConfig};
use aipow_netsim::tracefire::{run_tracefire, tracefire_to_markdown, TracefireConfig};

fn fig2_suite() {
    println!("== fig2: latency vs reputation, Policies 1-3 ==");
    let table = run_paper_policies(&Fig2Config::default());
    for policy in ["policy1", "policy2", "policy3"] {
        assert!(
            table.median_ms(policy, 0).is_some(),
            "{policy}: no row at reputation 0"
        );
    }
    // Policy 2 escalates sharply; Policy 1 stays linear and mild.
    let p2_growth = table.growth_factor("policy2").expect("policy2 rows");
    let p1_growth = table.growth_factor("policy1").expect("policy1 rows");
    assert!(p2_growth > 5.0, "policy2 growth {p2_growth:.1} too flat");
    assert!(
        p2_growth > p1_growth,
        "policy2 ({p2_growth:.1}) must escalate faster than policy1 ({p1_growth:.1})"
    );
    println!("   policy1 growth {p1_growth:.1}x, policy2 growth {p2_growth:.1}x -- ok");
}

fn contended_suite() {
    println!("== contended: sharded admission throughput ==");
    let report = run_contended(&ContendedConfig {
        threads: vec![1, 4],
        ops_per_thread: 20_000,
        ..Default::default()
    });
    assert_eq!(report.rows.len(), 2);
    for row in &report.rows {
        assert!(
            row.ops_per_sec > 0.0,
            "{} threads: no throughput measured",
            row.threads
        );
        println!(
            "   {} threads: {:.0} admissions/s",
            row.threads, row.ops_per_sec
        );
    }
    // No lock convoy: added threads must never *lose* aggregate
    // throughput outright (they scale on multicore hosts and hold flat
    // on single-core builders; a global lock loses ~2x to convoying).
    let t1 = report.rows[0].ops_per_sec;
    let t4 = report.rows[1].ops_per_sec;
    assert!(
        t4 > t1 * 0.5,
        "4-thread throughput {t4:.0} collapsed vs 1-thread {t1:.0}: lock convoy"
    );
    println!("   no convoy (4T/1T = {:.2}) -- ok", t4 / t1);
}

fn behavior_suite() {
    println!("== behavior: online reputation loop ==");
    let config = BehaviorConfig::default();
    let shift = run_behavior_shift(&config);
    assert!(
        shift.peak_bits >= shift.baseline_bits.saturating_add(4),
        "flooder only climbed {} -> {} bits",
        shift.baseline_bits,
        shift.peak_bits
    );
    assert!(
        shift.requests_to_climb_4.is_some(),
        "flooder never climbed 4 bits"
    );
    assert!(
        shift.benign_max_bits <= shift.benign_min_bits.saturating_add(2),
        "benign client's difficulty wandered {} -> {}",
        shift.benign_min_bits,
        shift.benign_max_bits
    );
    println!(
        "   flooder {} -> {} bits in {:?} requests; benign stayed {}-{} -- ok",
        shift.baseline_bits,
        shift.peak_bits,
        shift.requests_to_climb_4,
        shift.benign_min_bits,
        shift.benign_max_bits
    );

    // A long quiet phase (30 half-lives) so the run covers the whole
    // redemption arc: recovery below the bypass threshold, genuine
    // re-bypass, and finally the sketch being pruned (fully forgotten).
    let redemption = run_redemption(&BehaviorConfig {
        phase_s: 10.0,
        second_phase_s: 300.0,
        ..config
    });
    assert!(
        redemption.recovered_after_ms.is_some(),
        "flooder never redeemed below the bypass threshold"
    );
    assert!(
        redemption.bypassed_after_recovery,
        "recovered client was not bypassed again"
    );
    assert!(redemption.pruned, "idle sketch was never pruned");
    println!(
        "   redemption in {:.1} half-lives, re-bypassed, pruned -- ok",
        redemption.recovered_after_half_lives.unwrap_or(f64::NAN)
    );
}

fn flood_suite() {
    println!("== flood: bounded eviction under address cycling ==");
    let pair = run_flood_pair(4_096, 65_536, 20_000);
    for outcome in [&pair.small, &pair.large] {
        assert!(
            outcome.population <= outcome.max_clients,
            "population {} exceeded max_clients {}",
            outcome.population,
            outcome.max_clients
        );
        assert_eq!(
            outcome.global_eviction_folds, 0,
            "max_clients {}: the admission path folded over the whole table",
            outcome.max_clients
        );
        assert!(
            outcome.evictions as usize >= outcome.churn.requests,
            "max_clients {}: the churn phase did not churn",
            outcome.max_clients
        );
    }
    // The flatness claim: growing the table 16x must not grow the
    // per-request cost at capacity. Medians are compared tightly; p99
    // gets headroom for scheduler noise on shared runners.
    let p50_ratio = pair.churn_p50_ratio();
    let p99_ratio = pair.churn_p99_ratio();
    assert!(
        p50_ratio < 3.0,
        "churn p50 grew {p50_ratio:.2}x when capacity grew 16x: eviction cost not flat"
    );
    assert!(
        p99_ratio < 6.0,
        "churn p99 grew {p99_ratio:.2}x when capacity grew 16x: eviction cost not flat"
    );
    println!("{}", flood_to_markdown(&pair));
    println!("   churn p50 ratio {p50_ratio:.2}, p99 ratio {p99_ratio:.2} -- ok");
}

fn burst_suite() {
    println!("== burst: pipelined batch admission vs sequential ==");
    let report = run_burst(&BurstConfig::default());
    assert_eq!(
        report.mismatches, 0,
        "batch decisions diverged from the sequential path"
    );
    assert!(
        report.bypassed > 0,
        "schedule must exercise both decision shapes"
    );
    // The amortization claim, stated conservatively for noisy runners:
    // batching must never make the per-request median *worse* (the
    // measured effect is a speedup; 1.25x headroom absorbs scheduler
    // noise), and the tail must stay within the same regime.
    let p50_ratio = report.batch_p50_ns / report.seq_p50_ns.max(1.0);
    assert!(
        p50_ratio < 1.25,
        "batch p50 {:.0} ns is {p50_ratio:.2}x the sequential p50 {:.0} ns",
        report.batch_p50_ns,
        report.seq_p50_ns
    );
    let p99_ratio = report.batch_p99_ns / report.seq_p99_ns.max(1.0);
    assert!(
        p99_ratio < 2.0,
        "batch p99 {:.0} ns is {p99_ratio:.2}x the sequential p99 {:.0} ns",
        report.batch_p99_ns,
        report.seq_p99_ns
    );
    println!("{}", burst_to_markdown(&report));
    println!(
        "   {} decisions identical, p50 speedup {:.2}x -- ok",
        report.requests,
        report.p50_speedup()
    );
}

fn lanes_suite() {
    println!("== lanes: multi-buffer verify vs scalar ==");
    let report = run_lanes(&LanesConfig::default());
    assert_eq!(
        report.mismatches, 0,
        "wide-lane verdicts diverged from the scalar path"
    );
    assert!(report.accepted > 0, "schedule must exercise accepts");
    assert!(report.rejected > 0, "schedule must exercise rejections");
    assert!(report.wide_lanes > 1, "wide framework must be wide");
    // The throughput claim, stated for the build actually running: the
    // wide path must never make the verify stage *slower* (1.15x
    // headroom absorbs scheduler noise), and when the compiler was
    // allowed a 256-bit vector ISA the kernel must win decisively (the
    // measured end-to-end gap under AVX2 is ~2.5-3x; 1.5x leaves room
    // for noisy runners). Baseline x86-64 (SSE2) caps the kernel near
    // 1.5x, so the strict bound only applies with AVX2 compiled in.
    let speedup = report.verify_speedup();
    assert!(
        speedup > 1.0 / 1.15,
        "wide verify stage is {:.2}x the scalar cost ({:.0} vs {:.0} ns/item)",
        1.0 / speedup,
        report.wide_ns_per_item,
        report.scalar_ns_per_item
    );
    if cfg!(target_feature = "avx2") {
        assert!(
            speedup >= 1.5,
            "AVX2 build: verify speedup {speedup:.2}x under the 1.5x floor"
        );
    }
    println!("{}", lanes_to_markdown(&report));
    println!(
        "   {} verdicts identical, verify speedup {:.2}x -- ok",
        report.submissions, speedup
    );
}

fn backends_suite() {
    println!("== backends: policy-routed memory-hard puzzles ==");
    let report = run_backends(&BackendsConfig::default());
    // The router's contract is exact: every benign challenge on SHA-256,
    // every flooder challenge on memory-hard, nothing misrouted.
    assert_eq!(
        report.routing_violations, 0,
        "the router issued challenges on the wrong backend"
    );
    assert!(
        report.benign_sha_challenges > 0 && report.flooder_memhard_challenges > 0,
        "schedule must exercise both routes: {report:?}"
    );
    // The asymmetry the router exists for: routing the flood to
    // memory-hard must multiply its aggregate solve cost (the memmix
    // arena walk dominates the SHA-256 preimage search)...
    let flood_ratio = report.flood_cost_ratio();
    assert!(
        flood_ratio >= 5.0,
        "flood solve cost only rose {flood_ratio:.1}x under memory-hard routing (need ≥ 5x)"
    );
    // ...while benign clients, still on SHA-256, must not feel it. 2x
    // headroom absorbs scheduler noise in a wall-clock p99 on shared
    // runners; the real effect is ≈ 1x.
    let benign_ratio = report.benign_p99_ratio();
    assert!(
        benign_ratio < 2.0,
        "benign p99 grew {benign_ratio:.2}x under backend routing (must stay flat)"
    );
    // The seam claim: scalar-lane and wide-lane verdicts identical over
    // a mixed SHA/memory-hard schedule with staged corruptions.
    assert_eq!(
        report.verdict_mismatches, 0,
        "scalar and wide lanes diverged through the backend seam"
    );
    assert!(report.accepted > 0, "schedule must exercise accepts");
    assert!(report.rejected > 0, "schedule must exercise rejections");
    println!("{}", backends_to_markdown(&report));
    println!(
        "   routing exact, flood cost {flood_ratio:.1}x, benign p99 {benign_ratio:.2}x, \
         {} verdicts identical -- ok",
        report.verify_submissions
    );
}

fn connflood_suite() {
    println!("== connflood: 50k+ concurrent connections on the reactor core ==");
    let config = ConnfloodConfig {
        idle_connections: 50_000,
        active_connections: 256,
        exchanges_per_phase: 2_000,
        per_ip_cap: 64,
        flood_attempts: 50_000,
        max_connections: 120_000,
        idle_memory_budget_bytes: 64,
    };
    let outcome = run_connflood(&config);
    // The concurrency claim: the whole population held open at once.
    assert!(
        outcome.peak_open_connections >= 50_000,
        "only {} connections concurrently open",
        outcome.peak_open_connections
    );
    // The per-IP cap is exact and charged nothing beyond it.
    assert_eq!(
        outcome.flood_admitted, 64,
        "flooder holds {} connections, cap is 64",
        outcome.flood_admitted
    );
    assert_eq!(
        outcome.flood_rejected,
        (50_000 - 64) as u64,
        "every over-cap attempt must be refused at accept"
    );
    // The flatness claim: a 50k-connection flood hammering the accept
    // gate must not move benign p99 (3x headroom for scheduler noise on
    // shared runners; the measured effect is ~1x).
    let p99_ratio = outcome.benign_p99_ratio();
    assert!(
        p99_ratio < 3.0,
        "benign p99 grew {p99_ratio:.2}x under the connection flood"
    );
    // The memory claim: an idle connection's steady-state heap cost is
    // bounded (shrunk buffers), so 100k idle connections stay a
    // bounded-memory proposition.
    assert!(
        outcome.idle_heap_bytes_per_conn <= config.idle_memory_budget_bytes as f64,
        "idle heap {:.1} B/conn over the {} B budget",
        outcome.idle_heap_bytes_per_conn,
        config.idle_memory_budget_bytes
    );
    println!("{}", connflood_to_markdown(&outcome));
    println!(
        "   {} conns held, flood capped at {}, benign p99 ratio {:.2}, idle {:.1} B/conn -- ok",
        outcome.peak_open_connections,
        outcome.flood_admitted,
        p99_ratio,
        outcome.idle_heap_bytes_per_conn
    );
}

fn tracefire_suite() {
    println!("== tracefire: flight recorder under a rejection flood ==");
    let report = run_tracefire(&TracefireConfig::default());
    assert!(
        report.tripped,
        "the flood never tripped the flight recorder"
    );
    assert_eq!(
        report.reason, "rejection_rate",
        "wrong trigger fired: {report:?}"
    );
    assert!(
        report.complete_flooder_chains >= 1,
        "no complete flooder span chain in the frozen dump: {report:?}"
    );
    assert_eq!(
        report.broken_orderings, 0,
        "a trace's spans left the rings out of stage order: {report:?}"
    );
    println!("{}", tracefire_to_markdown(&report));
    println!(
        "   tripped on `{}`; {} spans frozen, {} complete flooder chains, 0 broken -- ok",
        report.reason, report.dump_spans, report.complete_flooder_chains
    );
}

/// The suite registry: names accepted by `--only`, in run order.
const SUITES: [(&str, fn()); 9] = [
    ("fig2", fig2_suite),
    ("contended", contended_suite),
    ("behavior", behavior_suite),
    ("flood", flood_suite),
    ("burst", burst_suite),
    ("lanes", lanes_suite),
    ("backends", backends_suite),
    ("connflood", connflood_suite),
    ("tracefire", tracefire_suite),
];

fn suite_names() -> String {
    SUITES
        .iter()
        .map(|(known, _)| *known)
        .collect::<Vec<_>>()
        .join(", ")
}

/// A bad invocation: echo the problem on stderr and exit non-zero, so a
/// CI shard that names a suite wrong fails loudly instead of silently
/// running nothing (or panicking with a backtrace).
fn usage_error(message: &str) -> ! {
    eprintln!("netsim_scenarios: {message}");
    eprintln!("usage: netsim_scenarios [--list] [--only <scenario>]...");
    eprintln!("scenarios: {}", suite_names());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--list" {
            for (name, _) in SUITES {
                println!("{name}");
            }
            return;
        }
        match arg.strip_prefix("--only") {
            Some("") => match iter.next() {
                Some(name) => only.push(name.clone()),
                None => usage_error("--only requires a scenario name"),
            },
            Some(rest) => match rest.strip_prefix('=') {
                Some(name) => only.push(name.to_string()),
                None => usage_error(&format!("unknown argument `{arg}`")),
            },
            None => usage_error(&format!(
                "unknown argument `{arg}` (expected --list or --only <scenario>)"
            )),
        }
    }
    for name in &only {
        if !SUITES.iter().any(|(known, _)| known == name) {
            usage_error(&format!("unknown scenario `{name}`"));
        }
    }

    let mut ran = 0;
    for (name, suite) in SUITES {
        if only.is_empty() || only.iter().any(|o| o == name) {
            suite();
            ran += 1;
        }
    }
    println!("netsim scenario suite: all invariants hold ({ran} suites)");
}
