//! Experiment C1: solve time vs difficulty.
//!
//! “It takes 31 ms on average to solve a 1-difficult puzzle, and this time
//! increases with difficulty.” Natively the absolute number is far smaller,
//! but the doubling-per-bit shape is hardware-independent.

use aipow_bench::{bench_client_ip, issued_challenge};
use aipow_pow::solver::{self, SolverOptions};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;

fn solve_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_difficulty");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let ip = bench_client_ip();
    for bits in [1u8, 4, 8, 12, 15, 16, 18] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter_batched(
                || issued_challenge(bits),
                |challenge| {
                    solver::solve(&challenge, ip, &SolverOptions::default())
                        .expect("solvable difficulty")
                },
                BatchSize::SmallInput,
            )
        });
    }

    // The paper's exact puzzle format: strict 32-bit nonce.
    group.bench_function("strict_u32_d12", |b| {
        b.iter_batched(
            || issued_challenge(12),
            |challenge| solver::solve(&challenge, ip, &SolverOptions::strict()).expect("solvable"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, solve_scaling);
criterion_main!(benches);
