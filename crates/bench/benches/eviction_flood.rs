//! The address-cycling insert storm at capacity: the migration toggle.
//!
//! Every benchmark here drives the rate limiter's worst case — a table
//! already at `max_clients` and a fresh source address per request, so
//! every admission pays the eviction protocol. Four groups:
//!
//! - `eviction_flood` — the migrated limiter (bounded per-shard
//!   eviction, one shard lock, victim scan ≤ `DEFAULT_MAX_SCAN`) at 1,
//!   4, and 8 threads;
//! - `eviction_flood_global` — the same bucket semantics through the
//!   retired `ShardedMap::update_or_insert_evicting` global victim scan
//!   (the pre-migration protocol, kept only as this baseline), at 1, 4,
//!   and 8 threads with far fewer ops per iteration (each insert folds
//!   the whole table);
//! - `eviction_flood_capacity` — single-thread per-insert cost of the
//!   migrated limiter as `max_clients` grows 4 Ki → 1 Mi: the flat line
//!   (EXPERIMENTS.md §C9's headline claim);
//! - `eviction_flood_capacity_global` — the same sweep for the global
//!   scan, 4 Ki → 64 Ki: the linear amplifier the migration removed.
//!
//! Throughput is reported per element, so the sharded and global groups
//! are directly comparable despite the different batch sizes. Set
//! `AIPOW_BENCH_JSON=BENCH_flood.json` to append machine-readable
//! results; `bench_gate` compares them against the committed baseline.

use aipow_core::sharded::{ShardedMap, DEFAULT_MAX_SCAN};
use aipow_core::{RateLimiter, TokenBucket};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Burst/refill sized to never deny: the measurement is the eviction
/// protocol, not rejection short-circuits.
const BURST: f64 = 1e12;
const REFILL: f64 = 1e6;

/// Admissions per thread per iteration on the bounded path.
const SHARDED_OPS: usize = 4_096;
/// Admissions per thread per iteration on the global-scan baseline
/// (each one folds the whole table, so iterations must stay small).
const GLOBAL_OPS: usize = 64;
/// Table capacity for the threaded groups.
const CAPACITY: usize = 65_536;

/// Fresh-address source shared by all groups: every admission must be a
/// brand-new key (the insert-at-capacity case), including across
/// criterion's repeated iterations.
static NEXT_ADDR: AtomicU32 = AtomicU32::new(1);

fn fresh_block(n: usize) -> u32 {
    NEXT_ADDR.fetch_add(n as u32, Ordering::Relaxed)
}

fn addr(i: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(i))
}

/// The pre-migration limiter: identical bucket semantics, but the
/// capacity bound enforced by the retired global victim scan
/// (`update_or_insert_evicting`). Exists only so this bench can measure
/// what the migration removed.
struct GlobalScanLimiter {
    buckets: ShardedMap<IpAddr, TokenBucket>,
    max_clients: usize,
}

impl GlobalScanLimiter {
    fn new(max_clients: usize, shard_count: usize) -> Self {
        GlobalScanLimiter {
            buckets: ShardedMap::new(shard_count),
            max_clients,
        }
    }

    fn allow(&self, ip: IpAddr, now_ms: u64) -> bool {
        self.buckets.update_or_insert_evicting(
            ip,
            self.max_clients,
            |b| b.last_refill_ms(),
            || TokenBucket::new(BURST, REFILL),
            |b| b.try_acquire(now_ms),
        )
    }
}

/// Runs a threaded flood group over any `admit` function.
fn flood_group(
    c: &mut Criterion,
    name: &str,
    ops_per_thread: usize,
    admit: &(dyn Fn(IpAddr, u64) + Sync),
) {
    let mut group = c.benchmark_group(name);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * ops_per_thread) as u64));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            scope.spawn(|| {
                                let base = fresh_block(ops_per_thread);
                                for i in 0..ops_per_thread as u32 {
                                    admit(addr(base.wrapping_add(i)), i as u64);
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

fn eviction_flood(c: &mut Criterion) {
    // The migrated limiter, prefilled to capacity so every measured
    // admission is an insert-with-eviction.
    let limiter = RateLimiter::with_layout(BURST, REFILL, CAPACITY, None, DEFAULT_MAX_SCAN);
    let base = fresh_block(CAPACITY);
    for i in 0..CAPACITY as u32 {
        limiter.allow(addr(base.wrapping_add(i)), 0);
    }
    flood_group(c, "eviction_flood", SHARDED_OPS, &|ip, t| {
        limiter.allow(ip, t);
    });
    assert_eq!(
        limiter.global_eviction_folds(),
        0,
        "the migrated limiter used the retired global scan"
    );

    // The pre-migration baseline, same shard count, same prefill.
    let global = GlobalScanLimiter::new(CAPACITY, limiter.shard_count());
    let base = fresh_block(CAPACITY);
    for i in 0..CAPACITY as u32 {
        global.allow(addr(base.wrapping_add(i)), 0);
    }
    flood_group(c, "eviction_flood_global", GLOBAL_OPS, &|ip, t| {
        global.allow(ip, t);
    });
}

/// Per-insert cost as the table grows: flat for the bounded path,
/// linear for the retired global scan.
fn eviction_flood_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_flood_capacity");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &capacity in &[4_096usize, 65_536, 1 << 20] {
        let limiter = RateLimiter::with_layout(BURST, REFILL, capacity, None, DEFAULT_MAX_SCAN);
        let base = fresh_block(capacity);
        for i in 0..capacity as u32 {
            limiter.allow(addr(base.wrapping_add(i)), 0);
        }
        group.throughput(Throughput::Elements(SHARDED_OPS as u64));
        group.bench_with_input(
            BenchmarkId::new("max_clients", capacity),
            &capacity,
            |b, _| {
                b.iter(|| {
                    let base = fresh_block(SHARDED_OPS);
                    for i in 0..SHARDED_OPS as u32 {
                        limiter.allow(addr(base.wrapping_add(i)), i as u64);
                    }
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("eviction_flood_capacity_global");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &capacity in &[4_096usize, 16_384, 65_536] {
        let global = GlobalScanLimiter::new(capacity, 128);
        let base = fresh_block(capacity);
        for i in 0..capacity as u32 {
            global.allow(addr(base.wrapping_add(i)), 0);
        }
        group.throughput(Throughput::Elements(GLOBAL_OPS as u64));
        group.bench_with_input(
            BenchmarkId::new("max_clients", capacity),
            &capacity,
            |b, _| {
                b.iter(|| {
                    let base = fresh_block(GLOBAL_OPS);
                    for i in 0..GLOBAL_OPS as u32 {
                        global.allow(addr(base.wrapping_add(i)), i as u64);
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, eviction_flood, eviction_flood_capacity);
criterion_main!(benches);
