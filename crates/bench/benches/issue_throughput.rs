//! Experiment A4: issuer and pipeline throughput.
//!
//! Under a flood, the server's cheap path is challenge issuance; it must
//! sustain orders of magnitude more issues/sec than the service rate.

use aipow_bench::{bench_client_ip, bench_issuer, BENCH_MASTER_KEY};
use aipow_core::FrameworkBuilder;
use aipow_policy::LinearPolicy;
use aipow_pow::Difficulty;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn issue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("issue");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    let issuer = bench_issuer();
    let ip = bench_client_ip();
    let d = Difficulty::new(10).unwrap();
    group.bench_function("issuer_issue", |b| b.iter(|| issuer.issue(ip, d)));

    let framework = FrameworkBuilder::new()
        .master_key(BENCH_MASTER_KEY)
        .model(FixedScoreModel::new(ReputationScore::new(6.0).unwrap()))
        .policy(LinearPolicy::policy2())
        .build()
        .unwrap();
    let features = FeatureVector::zeros();
    group.bench_function("framework_handle_request", |b| {
        b.iter(|| framework.handle_request(ip, &features))
    });

    // The full AI path: score a real feature vector through DAbR first.
    let (_, test, model) = aipow_bench::fitted_dabr(3);
    let sample = test.samples()[0].features;
    let framework_ai = FrameworkBuilder::new()
        .master_key(BENCH_MASTER_KEY)
        .model(model)
        .policy(LinearPolicy::policy2())
        .build()
        .unwrap();
    group.bench_function("framework_handle_request_dabr", |b| {
        b.iter(|| framework_ai.handle_request(ip, &sample))
    });

    group.finish();
}

criterion_group!(benches, issue_throughput);
criterion_main!(benches);
