//! Experiments C6 and A3: verification is lightweight.
//!
//! §II.5 calls the verifier a “light weight block”. Cost must be flat in
//! difficulty (one HMAC + one SHA-256 regardless of `d`), tampered input
//! must be rejected even cheaper, and the replay guard must not dominate.

use aipow_bench::{bench_client_ip, bench_verifier, issued_challenge};
use aipow_pow::replay::ReplayGuard;
use aipow_pow::solver::{self, SolverOptions};
use aipow_pow::{Challenge, Solution};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;

fn solved(bits: u8) -> Solution {
    let challenge = issued_challenge(bits);
    solver::solve(&challenge, bench_client_ip(), &SolverOptions::default())
        .expect("solvable")
        .solution
}

fn verify_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let ip = bench_client_ip();

    // Flatness across difficulty: the verifier hashes once whatever `d` is.
    for bits in [0u8, 8, 16] {
        let solution = solved(bits);
        let verifier = bench_verifier();
        group.bench_with_input(
            BenchmarkId::new("accept_d", bits),
            &solution,
            |b, solution| {
                b.iter_batched(
                    // Fresh verifier state per batch so the replay guard
                    // accepts (the accept path is the expensive one).
                    bench_verifier,
                    |v| v.verify(solution, ip),
                    BatchSize::SmallInput,
                )
            },
        );
        // Replayed solutions: the common hot rejection under attack.
        verifier.verify(&solution, ip).expect("first redemption");
        group.bench_with_input(
            BenchmarkId::new("reject_replay_d", bits),
            &solution,
            |b, solution| b.iter(|| verifier.verify(solution, ip).unwrap_err()),
        );
    }

    // Tampered MAC: rejected before any puzzle hashing.
    let solution = solved(8);
    let mut tag = *solution.challenge.tag();
    tag[0] ^= 1;
    let c2 = solution.challenge.clone();
    let forged = Solution {
        challenge: Challenge::from_parts(
            c2.version(),
            *c2.seed(),
            c2.issued_at_ms(),
            c2.ttl_ms(),
            c2.difficulty(),
            c2.client_ip(),
            tag,
        ),
        ..solution
    };
    let verifier = bench_verifier();
    group.bench_function("reject_bad_mac", |b| {
        b.iter(|| verifier.verify(&forged, ip).unwrap_err())
    });

    group.finish();

    // Ablation A3: the replay guard alone, including eviction pressure.
    let mut group = c.benchmark_group("replay_guard");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for capacity in [1usize << 10, 1 << 16, 1 << 20] {
        group.bench_with_input(
            BenchmarkId::new("insert_at_capacity", capacity),
            &capacity,
            |b, &capacity| {
                let guard = ReplayGuard::new(capacity);
                // Pre-fill to capacity so every insert evicts.
                for i in 0..capacity as u64 {
                    let mut seed = [0u8; 16];
                    seed[..8].copy_from_slice(&i.to_be_bytes());
                    guard.check_and_insert(&seed, u64::MAX, 0);
                }
                let mut next = capacity as u64;
                b.iter(|| {
                    let mut seed = [0u8; 16];
                    seed[..8].copy_from_slice(&next.to_be_bytes());
                    next += 1;
                    guard.check_and_insert(&seed, u64::MAX, 0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, verify_cost);
criterion_main!(benches);
