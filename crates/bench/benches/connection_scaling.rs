//! Connection-scaling throughput for the event-driven net layer
//! (DESIGN.md §15, EXPERIMENTS.md §C14).
//!
//! Two workloads over the reactor's fd-free core (the same components
//! the event loop serves sockets with — see
//! `aipow_netsim::connflood` for why the scale proof elides `read(2)`:
//! the host caps fds far below the population under test):
//!
//! - `connection_scaling_accept` — full connection lifecycle rate
//!   (accept-gate admission, table insert, deadline-wheel entry, then
//!   close: remove, gate release, wheel drain) with 1k/10k/50k
//!   connections already resident. The accept path must not slow down as
//!   the table fills.
//! - `connection_scaling_request` — request/reply exchange throughput
//!   (wire decode through the frame assembler, batch dispatch through
//!   the real admission pipeline, reply queued on the bounded outbound
//!   queue) on active connections while 1k/10k/50k total connections are
//!   resident. Idle connections must be free: a table slot, not a tax on
//!   every exchange.
//!
//! The acceptance bar (enforced by `bench_gate` within-run, so it is
//! machine-independent): request throughput at 50k resident connections
//! must hold at least `1 / AIPOW_GATE_MAX_CONN_SLOWDOWN` (default 2x) of
//! the 1k-connection throughput. Per-connection state is slab-indexed
//! and per-exchange work never scans the population, so the honest ratio
//! is ~1; a reintroduced O(connections) walk on the hot path collapses
//! it on any host.
//!
//! Set `AIPOW_BENCH_JSON=BENCH_net.json` to append machine-readable
//! results.

use aipow_core::{Framework, FrameworkBuilder, StaticFeatureSource};
use aipow_net::reactor::{
    dispatch_frames, AcceptGate, AdmitDecision, ConnCore, ConnTable, DeadlineWheel,
};
use aipow_policy::LinearPolicy;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

/// Resident connection populations under test.
const POPULATIONS: [usize; 3] = [1_000, 10_000, 50_000];
/// Connections churned (opened + closed) per accept-bench iteration.
const CHURN: usize = 1_000;
/// Exchanges per request-bench iteration.
const EXCHANGES: usize = 2_000;
/// Active connections the exchanges rotate over.
const ACTIVE: usize = 256;
/// Outbound queue bound, as the server default.
const OUTBOUND_LIMIT: usize = 2 * 1024 * 1024;
const IDLE_MS: u64 = 30_000;

fn build_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([0x6Bu8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score in range"),
        ))
        .policy(LinearPolicy::policy2())
        .build()
        .expect("framework builds")
}

fn conn_ip(i: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::from(0x0A00_0000u32 | i))
}

/// A resident population: gate charged, table filled, wheel armed —
/// exactly the state the reactor holds per open connection.
struct Population {
    gate: AcceptGate,
    table: ConnTable<ConnCore>,
    wheel: DeadlineWheel,
    active_keys: Vec<u64>,
}

fn populate(conns: usize) -> Population {
    let gate = AcceptGate::new(conns + CHURN + 1, 0);
    let mut table = ConnTable::new();
    let mut wheel = DeadlineWheel::new(IDLE_MS, 256);
    let mut active_keys = Vec::with_capacity(ACTIVE);
    for i in 0..conns as u32 {
        let ip = conn_ip(i);
        assert_eq!(gate.try_admit(ip), AdmitDecision::Admit);
        let key = table.insert(ConnCore::new(ip, 0, OUTBOUND_LIMIT));
        wheel.schedule(key, IDLE_MS);
        if (i as usize) < ACTIVE {
            active_keys.push(key);
        }
    }
    Population {
        gate,
        table,
        wheel,
        active_keys,
    }
}

fn connection_scaling(c: &mut Criterion) {
    let framework = build_framework();
    let features = StaticFeatureSource::new(FeatureVector::zeros());
    let mut resources = HashMap::new();
    resources.insert("/r".to_string(), b"payload".to_vec());

    let mut group = c.benchmark_group("connection_scaling_accept");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &conns in &POPULATIONS {
        let mut pop = populate(conns);
        // Churned connections use an address range disjoint from the
        // resident population.
        let churn_base = 0x0B00_0000u32;
        group.throughput(Throughput::Elements(CHURN as u64));
        group.bench_with_input(BenchmarkId::new("conns", conns), &conns, |b, _| {
            let mut now = 0u64;
            b.iter(|| {
                // Open CHURN connections against the resident table...
                now += 1;
                let mut keys = Vec::with_capacity(CHURN);
                for i in 0..CHURN as u32 {
                    let ip = conn_ip(churn_base | i);
                    assert_eq!(pop.gate.try_admit(ip), AdmitDecision::Admit);
                    let key = pop.table.insert(ConnCore::new(ip, now, OUTBOUND_LIMIT));
                    pop.wheel.schedule(key, now + 1);
                    keys.push(key);
                }
                // ...then close them (the other half of the lifecycle),
                // and drain their wheel entries so state is iteration-
                // stable. Resident entries revalidate to a later
                // deadline instead of dropping.
                for key in keys {
                    let ip = pop.table.get_mut(key).expect("churned conn live").peer_ip;
                    pop.table.remove(key);
                    pop.gate.release(ip);
                }
                now += pop.wheel.granularity_ms() + 2;
                let table = &mut pop.table;
                pop.wheel
                    .expire(now, |key| table.get_mut(key).map(|_| now + IDLE_MS));
                assert_eq!(pop.table.len(), conns, "population drifted");
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("connection_scaling_request");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &conns in &POPULATIONS {
        let mut pop = populate(conns);
        group.throughput(Throughput::Elements(EXCHANGES as u64));
        group.bench_with_input(BenchmarkId::new("conns", conns), &conns, |b, _| {
            b.iter(|| {
                for n in 0..EXCHANGES {
                    let key = pop.active_keys[n % pop.active_keys.len()];
                    let core = pop.table.get_mut(key).expect("active conn live");
                    let bytes = aipow_wire::encode(&aipow_wire::Message::Ping { token: n as u64 });
                    core.assembler.ingest(&bytes);
                    let mut frames = Vec::new();
                    while let Some(frame) = core.assembler.next_frame().expect("valid stream") {
                        frames.push(frame);
                    }
                    let replies = dispatch_frames(
                        frames,
                        core.peer_ip,
                        &framework,
                        &features,
                        &resources,
                        &None,
                    );
                    for reply in &replies {
                        let encoded = aipow_wire::encode(reply);
                        assert!(matches!(
                            core.outbound.push(&encoded),
                            aipow_net::reactor::QueuePush::Queued
                        ));
                    }
                    let pending = core.outbound.pending_len();
                    core.outbound.consume(pending);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, connection_scaling);
criterion_main!(benches);
