//! Substrate S1 microbenchmarks: the crypto under everything else.
//!
//! The solver's achievable hash rate bounds every latency number in the
//! reproduction; this bench documents it (and `reproduce -- calibration`
//! reports the derived H/s figure).

use aipow_crypto::hmac::HmacSha256;
use aipow_crypto::sha256::Sha256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn hash_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("digest", size), &data, |b, data| {
            b.iter(|| Sha256::digest(data))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solver_inner_loop");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    // The exact per-nonce work: clone midstate, append nonce, finalize.
    let mut midstate = Sha256::new();
    midstate.update(b"challenge-bytes|tag|203.0.113.77");
    group.bench_function("midstate_nonce_hash", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            let mut h = midstate.clone();
            h.update(&nonce.to_be_bytes());
            nonce = nonce.wrapping_add(1);
            h.finalize().leading_zero_bits()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hmac");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let key = [7u8; 32];
    let challenge_sized = vec![0u8; 74]; // authenticated challenge bytes
    group.bench_function("mac_challenge", |b| {
        b.iter(|| HmacSha256::mac(&key, &challenge_sized))
    });
    let tag = HmacSha256::mac(&key, &challenge_sized);
    group.bench_function("verify_challenge", |b| {
        b.iter(|| HmacSha256::verify(&key, &challenge_sized, tag.as_bytes()))
    });
    group.finish();
}

criterion_group!(benches, hash_primitives);
criterion_main!(benches);
