//! Policy-module cost: decisions are per-request, parsing is per-reload.

use aipow_policy::{dsl, ErrorRangePolicy, LinearPolicy, Policy, PolicyContext, StepPolicy};
use aipow_reputation::ReputationScore;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

const DSL_SOURCE: &str = r#"
    policy "bench" {
        when score < 2.0 => difficulty 1;
        when score in [2.0, 7.0) => linear(base = 5);
        otherwise => power(min = 12, max = 18, exponent = 2.0);
    }
"#;

fn policy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decide");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    let ctx = PolicyContext::default();
    let score = ReputationScore::new(6.5).unwrap();

    let policy1 = LinearPolicy::policy1();
    group.bench_function("policy1", |b| {
        b.iter(|| policy1.difficulty_for(score, &ctx))
    });

    let policy3 = ErrorRangePolicy::new(2.0, 1);
    group.bench_function("policy3", |b| {
        b.iter(|| policy3.difficulty_for(score, &ctx))
    });

    let step = StepPolicy::builder("step")
        .band_below(2.0, 1)
        .band_below(7.0, 8)
        .otherwise(16)
        .build()
        .unwrap();
    group.bench_function("step", |b| b.iter(|| step.difficulty_for(score, &ctx)));

    let compiled = dsl::parse(DSL_SOURCE).unwrap();
    group.bench_function("dsl_compiled", |b| {
        b.iter(|| compiled.difficulty_for(score, &ctx))
    });
    group.finish();

    let mut group = c.benchmark_group("policy_parse");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("dsl_parse", |b| b.iter(|| dsl::parse(DSL_SOURCE).unwrap()));
    group.finish();
}

criterion_group!(benches, policy_eval);
criterion_main!(benches);
