//! Experiment C11: the multi-lane SHA-256/HMAC kernel.
//!
//! Three layers of the same question — how much does lane interleaving
//! buy? — measured bottom-up:
//!
//! - `verify_kernel`: raw digest throughput over a batch of equal-length
//!   preimage-sized messages, scalar vs 4-wide vs 8-wide.
//! - `verify_kernel_mac`: batched HMAC under one hoisted key schedule vs
//!   a scalar loop over the same hoisted key.
//! - `verify_kernel_batch`: the full `Verifier::verify_batch` path at
//!   batch sizes 1/8/32/128 with `verify_lanes` pinned to 1 (scalar)
//!   vs 8 (wide). `bench_gate` asserts the wide/scalar ratio at batch
//!   32 (`AIPOW_GATE_MIN_WIDE_SPEEDUP`).
//!
//! The portable kernel only reaches full width when the compiler can
//! vectorize it — `bench_gate` therefore runs this bench with
//! `-C target-cpu=native` (see `AIPOW_BENCH_TARGET_CPU`).

use aipow_bench::{bench_client_ip, BENCH_MASTER_KEY};
use aipow_crypto::hmac::HmacKey;
use aipow_crypto::sha256::Sha256;
use aipow_crypto::sha256_wide::digest_batch;
use aipow_pow::solver::{self, SolverOptions};
use aipow_pow::time::TimeSource;
use aipow_pow::{BackendId, BackendRegistry, Difficulty, Issuer, ManualClock, Solution, Verifier};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::IpAddr;
use std::sync::Arc;
use std::time::Duration;

/// Messages sized like a work-check preimage (challenge prefix + nonce).
const MSG_LEN: usize = 107;
/// Enough items that full 8-lane rounds dominate over tail handling.
const KERNEL_ITEMS: usize = 64;
const BATCHES: [usize; 4] = [1, 8, 32, 128];

fn kernel_messages() -> Vec<Vec<u8>> {
    (0..KERNEL_ITEMS)
        .map(|i| {
            (0..MSG_LEN)
                .map(|j| ((i * 251 + j * 31) % 256) as u8)
                .collect()
        })
        .collect()
}

fn digest_kernel(c: &mut Criterion) {
    let messages = kernel_messages();
    let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("verify_kernel");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Elements(KERNEL_ITEMS as u64));
    group.bench_function("digest/scalar", |b| {
        b.iter(|| {
            refs.iter()
                .map(|m| Sha256::digest(m).as_bytes()[0])
                .fold(0u8, u8::wrapping_add)
        })
    });
    for lanes in [4usize, 8] {
        group.bench_function(BenchmarkId::new("digest/wide", lanes), |b| {
            b.iter(|| {
                digest_batch(&refs, lanes)
                    .iter()
                    .map(|d| d.as_bytes()[0])
                    .fold(0u8, u8::wrapping_add)
            })
        });
    }
    group.finish();

    let key = HmacKey::new(&BENCH_MASTER_KEY);
    let mut group = c.benchmark_group("verify_kernel_mac");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Elements(KERNEL_ITEMS as u64));
    group.bench_function("mac/scalar", |b| {
        b.iter(|| {
            refs.iter()
                .map(|m| key.mac(m).as_bytes()[0])
                .fold(0u8, u8::wrapping_add)
        })
    });
    for lanes in [4usize, 8] {
        group.bench_function(BenchmarkId::new("mac/wide", lanes), |b| {
            b.iter(|| {
                key.mac_batch(&refs, lanes)
                    .iter()
                    .map(|d| d.as_bytes()[0])
                    .fold(0u8, u8::wrapping_add)
            })
        });
    }
    group.finish();
}

/// Pre-solved valid submissions over a pinned clock (so nothing expires
/// however long the harness runs).
fn solved_batch(clock: &Arc<dyn TimeSource>, n: usize) -> Vec<(Solution, IpAddr)> {
    let issuer = Issuer::with_clock(&BENCH_MASTER_KEY, Arc::clone(clock));
    let ip = bench_client_ip();
    let difficulty = Difficulty::new(0).expect("zero difficulty");
    (0..n)
        .map(|_| {
            let challenge = issuer.issue(ip, difficulty);
            let report =
                solver::solve(&challenge, ip, &SolverOptions::default()).expect("d=0 solvable");
            (report.solution, ip)
        })
        .collect()
}

fn verify_batch_kernel(c: &mut Criterion) {
    let clock: Arc<dyn TimeSource> = Arc::new(ManualClock::at(1_000_000));
    let submissions = solved_batch(&clock, *BATCHES.iter().max().unwrap());

    let mut group = c.benchmark_group("verify_kernel_batch");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for (label, lanes) in [("scalar", 1usize), ("wide", 8)] {
        let verifier =
            Verifier::with_clock(&BENCH_MASTER_KEY, Arc::clone(&clock)).with_verify_lanes(lanes);
        for batch in BATCHES {
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(label, batch),
                &submissions[..batch],
                |b, subs| {
                    // After the first redemption every iteration lands on
                    // `Replayed` — but replay is the *last* staged check,
                    // so the MAC and work hashing under measurement is
                    // identical to the accept path.
                    b.iter(|| {
                        verifier
                            .verify_batch(subs)
                            .iter()
                            .filter(|outcome| outcome.is_err())
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The memory-hard arena for the backend-asymmetry measurement: the
/// smallest valid size keeps the bench quick while the solve/verify
/// asymmetry it gates is already orders of magnitude.
const BACKEND_ARENA_MIB: u8 = 1;

/// Pre-solved valid submissions on an explicit backend.
fn solved_backend_batch(
    clock: &Arc<dyn TimeSource>,
    n: usize,
    backend: BackendId,
) -> Vec<(Solution, IpAddr)> {
    let issuer = Issuer::with_clock(&BENCH_MASTER_KEY, Arc::clone(clock))
        .with_backend_param(BackendId::MEMORY_HARD, BACKEND_ARENA_MIB);
    let ip = bench_client_ip();
    let difficulty = Difficulty::new(0).expect("zero difficulty");
    (0..n)
        .map(|_| {
            let challenge = issuer.issue_backend(ip, difficulty, backend);
            let report =
                solver::solve(&challenge, ip, &SolverOptions::default()).expect("d=0 solvable");
            (report.solution, ip)
        })
        .collect()
}

/// Nonce probes per solve-cost iteration: enough that the per-attempt
/// marginal cost dominates the loop scaffolding.
const SOLVE_ATTEMPTS: u64 = 64;

/// Experiment C13: the backend cost asymmetry the router trades on.
///
/// - `verify/<backend>/32`: `Verifier::verify_batch` over 32 same-backend
///   submissions. SHA-256 runs with scalar lanes — the baseline the gate
///   names — while memory-hard runs its production path (8 lanes, so its
///   independent walks interleave through the wide kernel). `bench_gate`
///   asserts memory-hard verify stays within
///   `AIPOW_GATE_MAX_MEMHARD_VERIFY_RATIO` (default 2x) of the SHA-256
///   scalar cost, so routing floods to memory-hard never meaningfully
///   taxes the server.
/// - `solve/<backend>/64`: 64 nonce probes through the backend's
///   [`aipow_pow::SolveCursor`] with the cursor hoisted (as in a real
///   solve run, where its setup amortizes over ~2^d attempts), measuring
///   the marginal per-attempt cost — `bench_gate` asserts a memory-hard
///   attempt costs at least `AIPOW_GATE_MIN_MEMHARD_SOLVE_RATIO`
///   (default 10x) a SHA-256 attempt, the asymmetry that makes routing
///   punitive.
fn backend_kernel(c: &mut Criterion) {
    let clock: Arc<dyn TimeSource> = Arc::new(ManualClock::at(1_000_000));
    let registry = BackendRegistry::standard();
    let issuer = Issuer::with_clock(&BENCH_MASTER_KEY, Arc::clone(&clock))
        .with_backend_param(BackendId::MEMORY_HARD, BACKEND_ARENA_MIB);
    let ip = bench_client_ip();

    let mut group = c.benchmark_group("verify_kernel_backend");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for (label, backend, lanes) in [
        ("sha256", BackendId::SHA256, 1usize),
        ("memhard", BackendId::MEMORY_HARD, 8),
    ] {
        let submissions = solved_backend_batch(&clock, 32, backend);
        let verifier =
            Verifier::with_clock(&BENCH_MASTER_KEY, Arc::clone(&clock)).with_verify_lanes(lanes);
        group.throughput(Throughput::Elements(32));
        group.bench_with_input(
            BenchmarkId::new(format!("verify/{label}"), 32),
            &submissions[..],
            |b, subs| {
                // As in `verify_kernel_batch`: after the first redemption
                // every iteration rejects as `Replayed`, but replay is the
                // last staged check, so the measured work matches the
                // accept path.
                b.iter(|| {
                    verifier
                        .verify_batch(subs)
                        .iter()
                        .filter(|outcome| outcome.is_err())
                        .count()
                })
            },
        );

        let challenge = issuer.issue_backend(ip, Difficulty::new(0).expect("d=0"), backend);
        let prefix = challenge.preimage_prefix(ip);
        let puzzle = registry.get(backend).expect("standard backend");
        group.throughput(Throughput::Elements(SOLVE_ATTEMPTS));
        group.bench_function(
            BenchmarkId::new(format!("solve/{label}"), SOLVE_ATTEMPTS),
            |b| {
                let mut cursor = puzzle.solve_cursor(challenge.backend_param(), &prefix);
                b.iter(|| {
                    (0..SOLVE_ATTEMPTS).fold(0u8, |acc, nonce| {
                        acc ^ cursor.attempt(&nonce.to_be_bytes()).as_bytes()[0]
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, digest_kernel, verify_batch_kernel, backend_kernel);
criterion_main!(benches);
