//! Batched vs sequential admission throughput: the amortization proof
//! for the stage-pipeline batch entry points (DESIGN.md §10,
//! EXPERIMENTS.md §C10).
//!
//! Two workloads over one shared `Framework`:
//!
//! - `admission_batch_seq` — N threads each driving `handle_request`
//!   one request at a time (the sequential pipeline: every request pays
//!   the clock reading, the policy read-lock, the seed-DRBG lock, the
//!   audit shard lock, and the per-stage timers itself);
//! - `admission_batch` — the same request stream pushed through
//!   `handle_request_batch` in groups of 1/8/32/128, which pays each of
//!   those fixed costs once per group;
//! - `admission_batch_traced` — batch=32 again, but with an
//!   `aipow-trace` tracer attached at the default 1-in-64 sampling: the
//!   cost of the per-context sampled-check branch plus the occasional
//!   span ring append. Each traced cell is preceded by a
//!   `batch32_untraced` twin on the plain framework; the trace gate
//!   ratios those adjacent cells so host drift over the run cancels.
//!
//! The acceptance bars (enforced by `bench_gate` within-run, so they are
//! machine-independent): batch=32 at 4 threads ≥ 1.5× the sequential
//! path at 4 threads, and the traced batch=32 at 4 threads within
//! `AIPOW_GATE_MAX_TRACE_OVERHEAD` (default 5 %) of the untraced run.
//! `batch1` rides along as the degenerate case — it measures the batch
//! plumbing's overhead at group size one.
//!
//! Set `AIPOW_BENCH_JSON=BENCH_batch.json` to append machine-readable
//! results.

use aipow_core::{Framework, FrameworkBuilder};
use aipow_policy::LinearPolicy;
use aipow_reputation::model::FixedScoreModel;
use aipow_reputation::{FeatureVector, ReputationScore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

/// Admissions per thread per measured iteration.
const OPS_PER_THREAD: usize = 2_000;
/// Distinct client IPs per thread (cycled).
const IPS_PER_THREAD: usize = 1_024;
const THREADS: [usize; 3] = [1, 4, 8];
const BATCHES: [usize; 4] = [1, 8, 32, 128];

fn build_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([0x5Au8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score in range"),
        ))
        .policy(LinearPolicy::policy2())
        .max_batch(*BATCHES.iter().max().expect("nonempty"))
        .build()
        .expect("framework builds")
}

/// The traced twin: identical configuration plus a tracer at the
/// production default (1-in-64 sampling, default ring capacity).
fn build_traced_framework() -> Framework {
    FrameworkBuilder::new()
        .master_key([0x5Au8; 32])
        .model(FixedScoreModel::new(
            ReputationScore::new(5.0).expect("score in range"),
        ))
        .policy(LinearPolicy::policy2())
        .max_batch(*BATCHES.iter().max().expect("nonempty"))
        .tracer(std::sync::Arc::new(aipow_trace::Tracer::new(
            aipow_trace::TraceConfig::default(),
        )))
        .build()
        .expect("framework builds")
}

fn thread_ip(thread_id: usize, i: usize) -> IpAddr {
    // 10.T.x.y — thread-private /16, cycled, as in contended_admission.
    let low = (i % IPS_PER_THREAD) as u32;
    IpAddr::V4(Ipv4Addr::from(
        (10u32 << 24) | ((thread_id as u32) << 16) | low,
    ))
}

/// One thread's sequential run.
fn drive_sequential(fw: &Framework, thread_id: usize, features: &FeatureVector) {
    for i in 0..OPS_PER_THREAD {
        let _ = fw.handle_request(thread_ip(thread_id, i), features);
    }
}

/// One thread's batched run: the same stream, `batch`-sized groups.
fn drive_batched(fw: &Framework, thread_id: usize, features: &FeatureVector, batch: usize) {
    let mut i = 0;
    while i < OPS_PER_THREAD {
        let group = batch.min(OPS_PER_THREAD - i);
        let requests: Vec<(IpAddr, &FeatureVector)> = (0..group)
            .map(|j| (thread_ip(thread_id, i + j), features))
            .collect();
        let _ = fw.handle_request_batch(&requests);
        i += group;
    }
}

fn admission_batch(c: &mut Criterion) {
    let fw = build_framework();
    let features = FeatureVector::zeros();

    let mut group = c.benchmark_group("admission_batch_seq");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &threads in &THREADS {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &n| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for t in 0..n {
                        let (fw, features) = (&fw, &features);
                        scope.spawn(move || drive_sequential(fw, t, features));
                    }
                });
            });
        });
    }
    group.finish();

    // These two groups feed bench_gate's tightest within-run ratio (the
    // 5 % trace-overhead floor), so they get double the measurement
    // budget of the other groups: a single noisy 1 s window on a busy
    // host is enough to push the ratio through the floor.
    let mut group = c.benchmark_group("admission_batch");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &batch in &BATCHES {
        for &threads in &THREADS {
            group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("batch{batch}/threads"), threads),
                &threads,
                |b, &n| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for t in 0..n {
                                let (fw, features) = (&fw, &features);
                                scope.spawn(move || drive_batched(fw, t, features, batch));
                            }
                        });
                    });
                },
            );
        }
    }
    group.finish();

    // The traced twin of admission_batch/batch32: same stream, tracer
    // attached at default sampling. Gated against the untraced run by
    // bench_gate's AIPOW_GATE_MAX_TRACE_OVERHEAD (default 5 %). Each
    // traced cell is paired with a freshly measured *untraced* twin
    // immediately before it — the gate ratios adjacent cells, so slow
    // clock/thermal drift across a long bench run (the gate runs four
    // bench binaries back to back) cancels out instead of masquerading
    // as tracing overhead.
    let traced = build_traced_framework();
    let mut group = c.benchmark_group("admission_batch_traced");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for &threads in &THREADS {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("batch32_untraced/threads", threads),
            &threads,
            |b, &n| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..n {
                            let (fw, features) = (&fw, &features);
                            scope.spawn(move || drive_batched(fw, t, features, 32));
                        }
                    });
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch32/threads", threads),
            &threads,
            |b, &n| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..n {
                            let (fw, features) = (&traced, &features);
                            scope.spawn(move || drive_batched(fw, t, features, 32));
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, admission_batch);
criterion_main!(benches);
