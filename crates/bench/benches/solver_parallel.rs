//! Ablation A1: parallel solver scaling.
//!
//! A client with `k` cores can cut its latency ~k-fold, which shifts where
//! a policy's latency targets land for well-resourced (benign or hostile)
//! clients.

use aipow_bench::{bench_client_ip, issued_challenge};
use aipow_pow::solver::{self, SolverOptions};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;

fn solver_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_parallel_d16");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let ip = bench_client_ip();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || issued_challenge(16),
                    |challenge| {
                        solver::solve_parallel(&challenge, ip, threads, &SolverOptions::default())
                            .expect("solvable")
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, solver_parallel);
criterion_main!(benches);
