//! Experiment C5 companion: the DDoS simulation itself.
//!
//! Benchmarks the simulator's run time (it must stay cheap enough for
//! parameter sweeps) across defended/undefended and both attack
//! strategies; the *results* of the scenarios are produced by
//! `reproduce -- ddos`.

use aipow_netsim::scenario::{self, AttackStrategy, DdosConfig};
use aipow_policy::LinearPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn ddos_throttle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddos_sim_20s");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let policy = LinearPolicy::policy2();
    let base = DdosConfig {
        duration_s: 20.0,
        ..Default::default()
    };

    let variants = [
        (
            "undefended",
            DdosConfig {
                pow_enabled: false,
                ..base
            },
        ),
        ("defended_solve", base),
        (
            "defended_flood",
            DdosConfig {
                strategy: AttackStrategy::Flood,
                ..base
            },
        ),
    ];

    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| scenario::run(&policy, config))
        });
    }
    group.finish();
}

criterion_group!(benches, ddos_throttle);
criterion_main!(benches);
