//! Experiment C2 companions: AI-model cost.
//!
//! The paper's pipeline scores every incoming request, so model inference
//! sits on the hot path; training happens out of band.

use aipow_bench::fitted_dabr;
use aipow_reputation::baseline::{BlocklistHeuristic, KnnScorer};
use aipow_reputation::dabr::{DabrConfig, DabrModel};
use aipow_reputation::{synth::DatasetSpec, ReputationModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn reputation(c: &mut Criterion) {
    let (train, test, dabr) = fitted_dabr(42);
    let sample = test.samples()[0].features;

    let mut group = c.benchmark_group("reputation_score");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));

    group.bench_function("dabr", |b| b.iter(|| dabr.score(&sample)));

    let knn = KnnScorer::fit(&train, 5);
    group.bench_function("knn_k5", |b| b.iter(|| knn.score(&sample)));

    let heuristic = BlocklistHeuristic;
    group.bench_function("heuristic", |b| b.iter(|| heuristic.score(&sample)));
    group.finish();

    let mut group = c.benchmark_group("reputation_fit");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("dabr_fit_4k", |b| {
        b.iter(|| DabrModel::fit(&train, &DabrConfig::default()))
    });
    group.bench_function("dataset_generate_5k", |b| {
        b.iter(|| DatasetSpec::default().with_seed(7).generate())
    });
    group.finish();
}

criterion_group!(benches, reputation);
criterion_main!(benches);
