//! Contended-admission throughput: N worker threads push distinct-IP
//! admissions through one shared `Framework` (the sharded-state scaling
//! proof; see DESIGN.md §7 and EXPERIMENTS.md §C7).
//!
//! Before the per-client structures were sharded, every admission
//! serialized on a global audit-log/replay/ledger lock, so added threads
//! bought nothing. This bench reports aggregate elements/sec at 1, 4,
//! and 8 threads; on a multi-core host the sharded path scales with the
//! thread count until the physical cores run out. The workload is
//! `aipow_netsim::contended`'s — the same driver the §C7 scenario
//! reports on — so the two measurements cannot drift apart.

use aipow_netsim::contended::{contended_path, drive};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

/// Admissions per thread per measured iteration.
const OPS_PER_THREAD: usize = 2_000;
/// Distinct client IPs per thread (cycled).
const IPS_PER_THREAD: usize = 1_024;

fn contended_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_admission");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    let path = contended_path(None);
    for &threads in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let path = &path;
                            scope.spawn(move || {
                                drive(path, t, OPS_PER_THREAD, IPS_PER_THREAD)
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, contended_admission);
criterion_main!(benches);
