//! Contended-admission throughput: N worker threads push distinct-IP
//! admissions through one shared `Framework` (the sharded-state scaling
//! proof; see DESIGN.md §7 and EXPERIMENTS.md §C7).
//!
//! Before the per-client structures were sharded, every admission
//! serialized on a global audit-log/replay/ledger lock, so added threads
//! bought nothing. This bench reports aggregate elements/sec at 1, 4,
//! and 8 threads; on a multi-core host the sharded path scales with the
//! thread count until the physical cores run out. The workload is
//! `aipow_netsim::contended`'s — the same driver the §C7 scenario
//! reports on — so the two measurements cannot drift apart.
//!
//! Two groups run: the PR 2 baseline (`contended_admission`) and the
//! same workload with the `aipow-online` behavior recorder tapping every
//! admission and features served from the blending behavioral source
//! (`contended_admission_online`). The acceptance bar for the online
//! loop is that the second group stays within ~10 % of the first — the
//! recorder adds per-shard work, never a global lock.
//!
//! Set `AIPOW_BENCH_JSON=BENCH_contended.json` to append machine-readable
//! results (see EXPERIMENTS.md §C8).

use aipow_netsim::contended::{contended_path_with, drive, AdmissionPath};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

/// Admissions per thread per measured iteration.
const OPS_PER_THREAD: usize = 2_000;
/// Distinct client IPs per thread (cycled).
const IPS_PER_THREAD: usize = 1_024;

fn run_group(c: &mut Criterion, name: &str, path: &AdmissionPath) {
    let mut group = c.benchmark_group(name);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    for &threads in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            scope.spawn(move || drive(path, t, OPS_PER_THREAD, IPS_PER_THREAD));
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

fn contended_admission(c: &mut Criterion) {
    let baseline = contended_path_with(None, false);
    run_group(c, "contended_admission", &baseline);

    let online = contended_path_with(None, true);
    run_group(c, "contended_admission_online", &online);
}

criterion_group!(benches, contended_admission);
criterion_main!(benches);
